// Ablation: maximum performance under a conditional-register budget — the
// design-exploration use the paper's conclusion proposes ("find the maximum
// performance when the number of conditional registers are limited").
// For each benchmark and each register budget, the best achievable
// iteration period over unfolding factors 1..4 and both transformation
// orders, with the CSR code size of the winning point.
//
// The per-benchmark exploration (the expensive part) runs on the driver's
// thread pool; the table prints in benchmark order.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codesize/tradeoff.hpp"
#include "dfg/iteration_bound.hpp"
#include "driver/thread_pool.hpp"
#include "table_util.hpp"

int main() {
  using namespace csr;
  TradeoffOptions options;
  options.max_factor = 4;

  const auto infos = benchmarks::table_benchmarks();
  const auto rows = driver::parallel_map(
      infos, driver::default_thread_count(), [&](const auto& info) {
        const DataFlowGraph g = info.factory();
        const auto points = explore_tradeoffs(g, options);
        std::vector<std::string> row{info.name, iteration_bound(g)->to_string()};
        for (std::int64_t budget = 1; budget <= 4; ++budget) {
          const auto best = best_under_budget(points, budget, /*size_budget=*/100000);
          if (best) {
            row.push_back(best->iteration_period.to_string() + " @ " +
                          std::to_string(best->size_csr));
          } else {
            row.push_back("-");
          }
        }
        return row;
      });

  std::cout << "Ablation: best iteration period under a conditional-register"
            << " budget\n(sweep over f = 1..4, both orders; '-' = infeasible;"
            << " cell = period @ CSR size)\n\n";
  bench::TablePrinter table({24, 8, 14, 14, 14, 14});
  table.row({"Benchmark", "bound", "1 reg", "2 regs", "3 regs", "4 regs"});
  table.rule();
  for (const auto& row : rows) table.row(row);
  table.rule();
  std::cout << "\nWith one register only pure unfolding qualifies (no pipelining);"
               "\neach extra register unlocks deeper pipelining until the"
               " iteration bound binds.\n";
  return 0;
}
