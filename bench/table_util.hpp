#pragma once

/// Shared helpers for the table-reproduction benches: fixed-width text
/// tables matching the paper's layout, plus the standard "retime to the
/// minimum period, depth-minimally" pipeline step every table starts from.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "support/text.hpp"

namespace csr::bench {

/// Prints a fixed-width table: `widths[i]` column characters, first column
/// left-aligned, the rest right-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::size_t> widths) : widths_(std::move(widths)) {}

  void row(const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t k = 0; k < cells.size() && k < widths_.size(); ++k) {
      if (k == 0) {
        line += pad_right(cells[k], widths_[k]);
      } else {
        line += "  " + pad_left(cells[k], widths_[k]);
      }
    }
    std::cout << line << '\n';
  }

  void rule() const {
    std::size_t total = 0;
    for (const std::size_t w : widths_) total += w + 2;
    std::cout << std::string(total, '-') << '\n';
  }

 private:
  std::vector<std::size_t> widths_;
};

inline std::string pct(std::int64_t before, std::int64_t after) {
  // A degenerate baseline (empty graph, zero-size row) has nothing to
  // reduce; report 0.0% instead of dividing by zero and printing nan/inf.
  const double reduction = before == 0 ? 0.0
                                       : 100.0 * static_cast<double>(before - after) /
                                             static_cast<double>(before);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", reduction);
  return buf;
}

}  // namespace csr::bench
