// Reproduces Table 4: code size of the 4-stage lattice filter at a fixed
// performance point, for unfolding factors 2..4 — unfold-then-retime versus
// retime-then-unfold versus retime-unfold with conditional registers.
//
// The reconstructed lattice has iteration bound 8/3, so the paper's "cycle
// period fixed to 8" performance point is the rate-optimal one at f = 3
// (cycle period 8 per 3 iterations). At every factor this harness fixes the
// performance to the per-factor optimum: the unfolded graph is retimed to
// its minimum cycle period and the Theorem 4.5 fold gives the
// retime-then-unfold program at the same period.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded_retimed.hpp"
#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "retiming/opt.hpp"
#include "table_util.hpp"
#include "unfolding/unfold.hpp"
#include "vm/equivalence.hpp"

int main() {
  using namespace csr;
  const DataFlowGraph g = benchmarks::lattice_filter();
  const std::int64_t n = 120;
  std::cout << "Table 4: code size for the 4-stage lattice filter at fixed"
            << " performance, n = " << n << "\n(iteration bound "
            << iteration_bound(g)->to_string()
            << "; at uf=3 the minimum cycle period is 8 — the paper's"
            << " performance point)\n\n";

  bench::TablePrinter table({22, 10, 10, 10});
  table.row({"Approach", "uf=2", "uf=3", "uf=4"});
  table.rule();

  std::vector<std::string> row_fr{"unfold-retime"};
  std::vector<std::string> row_rf{"retime-unfold"};
  std::vector<std::string> row_cr{"retime-unfold-CR"};
  std::vector<std::string> row_cp{"cycle period"};
  std::vector<std::string> row_rg{"CR registers"};

  for (const int f : {2, 3, 4}) {
    const Unfolding u(g, f);
    const OptimalRetiming uopt = minimum_period_retiming(u.graph());
    const Retiming folded = u.fold_retiming(uopt.retiming).normalized();
    const int rf_period = cycle_period(unfold(apply_retiming(g, folded), f));
    if (rf_period > uopt.period) {
      std::cerr << "retime-unfold lost performance at f=" << f << '\n';
      return 1;
    }

    const LoopProgram reference = original_program(g, n);
    const LoopProgram fr = unfolded_retimed_program(u, uopt.retiming, n);
    const LoopProgram rf = retimed_unfolded_program(g, folded, f, n);
    const LoopProgram cr = retimed_unfolded_csr_program(g, folded, f, n);
    for (const LoopProgram* p : {&fr, &rf, &cr}) {
      const auto diffs = compare_programs(reference, *p, array_names(g));
      if (!diffs.empty()) {
        std::cerr << "divergence at f=" << f << ": " << diffs.front() << '\n';
        return 1;
      }
    }

    row_fr.push_back(std::to_string(fr.code_size()));
    row_rf.push_back(std::to_string(rf.code_size()));
    row_cr.push_back(std::to_string(cr.code_size()));
    row_cp.push_back(std::to_string(uopt.period));
    row_rg.push_back(std::to_string(cr.conditional_registers().size()));
  }

  table.row(row_fr);
  table.row(row_rf);
  table.row(row_cr);
  table.rule();
  table.row(row_cp);
  table.row(row_rg);
  std::cout << "\npaper's Table 4:    unfold-retime 156/312/416, retime-unfold"
               " 130/156/182,\n                    retime-unfold-CR 61/90/119\n";
  return 0;
}
