// Ablation: software-pipelining engines compared. The paper pipelines with
// retiming (its keyword list names rotation scheduling); production VLIW
// compilers use modulo scheduling [Rau, ref 8]. All three engines emit a
// retiming that the CSR framework consumes, so they are directly comparable
// on achieved period, pipeline depth, register count and CSR code size —
// under both ample and tight resource models.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codesize/model.hpp"
#include "retiming/opt.hpp"
#include "schedule/modulo.hpp"
#include "schedule/rotation.hpp"
#include "table_util.hpp"

int main() {
  using namespace csr;
  struct ModelSpec {
    const char* name;
    int adders, multipliers;
  };
  const ModelSpec models[] = {{"2 add + 2 mul", 2, 2}, {"1 add + 1 mul", 1, 1}};

  for (const ModelSpec& spec : models) {
    const ResourceModel machine =
        ResourceModel::adders_and_multipliers(spec.adders, spec.multipliers);
    std::cout << "\n=== resource model: " << spec.name << " ===\n";
    bench::TablePrinter table({24, 14, 9, 6, 6, 8});
    table.row({"Benchmark", "engine", "period", "M_r", "Rgs", "CSR"});
    table.rule();
    for (const auto& info : benchmarks::table_benchmarks()) {
      const DataFlowGraph g = info.factory();

      // Engine 1: OPT retiming (resource-oblivious optimum).
      const OptimalRetiming opt = minimum_period_retiming(g);
      table.row({info.name, "OPT retiming", std::to_string(opt.period),
                 std::to_string(opt.retiming.max_value()),
                 std::to_string(registers_required(opt.retiming)),
                 std::to_string(predicted_retimed_csr_size(g, opt.retiming))});

      // Engine 2: rotation scheduling under the resource model.
      const RotationResult rot = rotation_schedule(g, machine);
      table.row({"", "rotation", std::to_string(rot.period),
                 std::to_string(rot.retiming.max_value()),
                 std::to_string(registers_required(rot.retiming)),
                 std::to_string(predicted_retimed_csr_size(g, rot.retiming))});

      // Engine 3: iterative modulo scheduling under the resource model.
      const auto ms = modulo_schedule(g, machine);
      if (ms) {
        const Retiming r = retiming_from_modulo(g, *ms);
        table.row({"", "modulo (IMS)", std::to_string(ms->initiation_interval),
                   std::to_string(r.max_value()),
                   std::to_string(registers_required(r)),
                   std::to_string(predicted_retimed_csr_size(g, r))});
      }
    }
  }
  std::cout << "\nperiod = cycle period / initiation interval under the engine's"
               " constraints;\nall engines feed the same CSR code generator"
               " (sizes are L + 2·|N_r|).\n";
  return 0;
}
