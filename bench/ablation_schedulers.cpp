// Ablation: software-pipelining engines compared. The paper pipelines with
// retiming (its keyword list names rotation scheduling); production VLIW
// compilers use modulo scheduling [Rau, ref 8]. All three engines emit a
// retiming that the CSR framework consumes, so they are directly comparable
// on achieved period, pipeline depth, register count and CSR code size —
// under both ample and tight resource models.
//
// This is exactly the sweep driver's engine axis: one grid with
// transforms = {retimed_csr} and all three engines, evaluated per resource
// model on the thread pool.

#include <iostream>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "driver/config.hpp"
#include "table_util.hpp"

int main() {
  using namespace csr;
  struct ModelSpec {
    const char* name;
    int adders, multipliers;
  };
  const ModelSpec models[] = {{"2 add + 2 mul", 2, 2}, {"1 add + 1 mul", 1, 1}};

  const auto engine_label = [](driver::Engine engine) -> std::string {
    switch (engine) {
      case driver::Engine::kOptRetiming:
        return "OPT retiming";
      case driver::Engine::kRotation:
        return "rotation";
      case driver::Engine::kModulo:
        return "modulo (IMS)";
      case driver::Engine::kOptExact:
        return "exact (B&B)";
    }
    return "?";
  };

  std::vector<std::string> names;
  for (const auto& info : benchmarks::table_benchmarks()) {
    names.push_back(info.name);
  }
  const driver::SweepConfig base =
      driver::SweepConfig()
          .benchmarks(names)
          .engines({driver::Engine::kOptRetiming, driver::Engine::kRotation,
                    driver::Engine::kModulo, driver::Engine::kOptExact})
          .transforms({driver::Transform::kRetimedCsr})
          .factors({})
          .threads(0)  // one worker per hardware thread
          .verify(false);

  for (const ModelSpec& spec : models) {
    const auto results =
        driver::run_sweep(driver::SweepConfig(base).machine(
                              ResourceModel::adders_and_multipliers(
                                  spec.adders, spec.multipliers)))
            .results;

    std::cout << "\n=== resource model: " << spec.name << " ===\n";
    bench::TablePrinter table({24, 14, 9, 6, 6, 8});
    table.row({"Benchmark", "engine", "period", "M_r", "Rgs", "CSR"});
    table.rule();
    std::string current;
    for (const driver::SweepResult& res : results) {
      if (!res.feasible) continue;  // e.g. modulo scheduling found no schedule
      const bool first = res.cell.benchmark != current;
      current = res.cell.benchmark;
      table.row({first ? res.cell.benchmark : "", engine_label(res.cell.engine),
                 res.period.to_string(), std::to_string(res.depth),
                 std::to_string(res.registers), std::to_string(res.predicted_size)});
    }
  }
  std::cout << "\nperiod = cycle period / initiation interval under the engine's"
               " constraints;\nall engines feed the same CSR code generator"
               " (sizes are L + 2·|N_r|).\n";
  return 0;
}
