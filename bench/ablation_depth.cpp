// Ablation: code size versus pipelining depth. For every benchmark, sweep
// the achievable cycle periods (the W/D candidate set) from slowest to
// rate-optimal; at each period take the depth-minimal retiming and report
// the expanded versus CSR code size. Shows the paper's core claim as a
// curve: expanded code grows with |V|·M_r while the CSR form stays at
// L + 2·|N_r| regardless of how deep the pipeline gets.
//
// Per-benchmark sweeps are independent, so they run on the driver's thread
// pool; rows are printed in benchmark order afterwards.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codesize/model.hpp"
#include "codesize/storage.hpp"
#include "driver/thread_pool.hpp"
#include "retiming/opt.hpp"
#include "retiming/wd.hpp"
#include "table_util.hpp"

int main() {
  using namespace csr;

  struct Section {
    std::string name;
    std::int64_t l = 0;
    std::vector<std::vector<std::string>> rows;
  };

  const auto infos = benchmarks::table_benchmarks();
  const auto sections = driver::parallel_map(
      infos, driver::default_thread_count(), [](const auto& info) {
        const DataFlowGraph g = info.factory();
        Section section{info.name, original_size(g), {}};
        const WDMatrices wd(g);
        const auto candidates = wd.candidate_periods();
        std::int64_t previous_depth = -1;
        for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
          const auto r = min_depth_retiming(g, wd, *it);
          if (!r) break;  // below the minimum achievable period
          const bool rate_optimal =
              std::next(it) == candidates.rend() ||
              !min_depth_retiming(g, wd, *std::next(it)).has_value();
          // Show one row per distinct depth plus the rate-optimal endpoint.
          if (previous_depth == r->max_value() && !rate_optimal) continue;
          previous_depth = r->max_value();
          section.rows.push_back({std::to_string(*it), std::to_string(r->max_value()),
                                  std::to_string(predicted_retimed_size(g, *r)),
                                  std::to_string(predicted_retimed_csr_size(g, *r)),
                                  std::to_string(registers_required(*r)),
                                  std::to_string(delay_register_delta(g, *r))});
        }
        return section;
      });

  std::cout << "Ablation: code size vs software-pipelining depth\n"
            << "(per achievable cycle period: depth-minimal retiming,"
            << " expanded vs CSR size)\n";
  for (const Section& section : sections) {
    std::cout << '\n' << section.name << " (L = " << section.l << ")\n";
    bench::TablePrinter table({8, 7, 10, 8, 6, 8});
    table.row({"period", "M_r", "expanded", "CSR", "Rgs", "Δdelay"});
    table.rule();
    for (const auto& row : section.rows) table.row(row);
  }
  std::cout << "\nΔdelay = change in inter-iteration storage registers caused by"
               " the retiming\n(deep pipelines can trade code size for data"
               " storage).\n";
  return 0;
}
