// Reproduces Figures 4–5: the 3-statement loop, unfolded by 3 with the
// remainder iterations outside the loop (5a), and the corrected CSR form
// removing the remainder with one conditional register (5b). The paper's
// printed 5(b) decrements the register once per trip by f, which is wrong
// for n mod f = 2; the per-copy decrement here handles every remainder and
// is what the paper's own Table 2 arithmetic assumes.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "loopir/printer.hpp"
#include "vm/equivalence.hpp"

int main() {
  using namespace csr;
  const DataFlowGraph g = benchmarks::figure4_example();
  const int f = 3;

  std::cout << "Figure 4/5 reproduction — the A,B,C loop unfolded by " << f << "\n\n";
  std::cout << "--- Figure 4: original loop ---\n"
            << to_source(original_program(g, 11)) << '\n';

  for (const std::int64_t n : {11, 12, 13}) {  // n mod 3 = 2, 0, 1
    const LoopProgram expanded = unfolded_program(g, f, n);
    const LoopProgram reduced = unfolded_csr_program(g, f, n);
    const auto diffs =
        compare_programs(original_program(g, n), reduced, array_names(g));
    if (!diffs.empty()) {
      std::cerr << "CSR program diverges at n=" << n << ": " << diffs.front() << '\n';
      return 1;
    }
    std::cout << "n = " << n << " (n mod " << f << " = " << n % f
              << "): expanded size " << expanded.code_size() << ", CSR size "
              << reduced.code_size() << ", instructions removed "
              << expanded.code_size() - reduced.code_size() << '\n';
  }

  std::cout << "\n--- Figure 5(a): expanded unfolded code, n = 11 ---\n"
            << to_source(unfolded_program(g, f, 11)) << '\n';
  std::cout << "--- Figure 5(b), corrected: CSR unfolded code, n = 11 ---\n"
            << to_source(unfolded_csr_program(g, f, 11));
  return 0;
}
