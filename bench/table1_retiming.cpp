// Reproduces Table 1: code size of each benchmark before and after
// software pipelining (retiming to the minimum cycle period), the code size
// after conditional-register code size reduction, the number of registers
// needed (Theorem 4.3), and the percentage reduction.
//
// Code sizes are measured on actually generated programs (and the CSR
// programs are additionally executed against the original loop in the VM to
// confirm equivalence before being reported).

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/statements.hpp"
#include "codesize/model.hpp"
#include "retiming/opt.hpp"
#include "table_util.hpp"
#include "vm/equivalence.hpp"

namespace {

struct PaperRow {
  std::int64_t orig, ret, cr, rgs;
};

// The values printed in the paper's Table 1, for side-by-side comparison.
const PaperRow kPaper[] = {
    {8, 16, 12, 2}, {11, 33, 17, 3}, {15, 60, 23, 4},
    {34, 68, 40, 3}, {26, 78, 32, 3}, {27, 54, 31, 2},
};

}  // namespace

int main() {
  using namespace csr;
  std::cout << "Table 1: code size after retiming and registers needed\n"
            << "(measured on generated programs; paper values in parentheses)\n\n";
  bench::TablePrinter table({24, 6, 10, 10, 8, 7});
  table.row({"Benchmark", "Orig", "Ret.", "CR", "Rgs", "%Red."});
  table.rule();

  const std::int64_t n = 101;
  std::size_t row_index = 0;
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming opt = minimum_period_retiming(g);
    const LoopProgram original = original_program(g, n);
    const LoopProgram retimed = retimed_program(g, opt.retiming, n);
    const LoopProgram reduced = retimed_csr_program(g, opt.retiming, n);

    const auto diffs = compare_programs(original, reduced, array_names(g));
    if (!diffs.empty()) {
      std::cerr << "CSR program diverges for " << info.name << ": " << diffs.front()
                << '\n';
      return 1;
    }

    const PaperRow& paper = kPaper[row_index++];
    table.row({info.name, std::to_string(original.code_size()),
               std::to_string(retimed.code_size()) + " (" + std::to_string(paper.ret) + ")",
               std::to_string(reduced.code_size()) + " (" + std::to_string(paper.cr) + ")",
               std::to_string(registers_required(opt.retiming)) + " (" +
                   std::to_string(paper.rgs) + ")",
               bench::pct(retimed.code_size(), reduced.code_size())});
  }
  table.rule();
  std::cout << "\nRet. = retimed to the rate-optimal cycle period (depth-minimal"
               " retiming);\nCR = conditional-register code size reduction applied;"
               " Rgs = |N_r| (Theorem 4.3).\n";
  return 0;
}
