// Baseline comparison: conditional-register CSR versus TI-style
// prologue/epilogue collapsing (the paper's ref [4]). Collapsing merges
// pipeline stages into speculative kernel trips and is limited by how many
// stages are safe to over-execute; CSR removes everything unconditionally.
// The table sweeps the number of safe stages per side from 0 to M_r.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codesize/baselines.hpp"
#include "codesize/model.hpp"
#include "retiming/opt.hpp"
#include "table_util.hpp"

int main() {
  using namespace csr;
  std::cout << "Baseline: code collapsing [ref 4] vs conditional registers\n"
            << "(collapse(k) = k safe speculative stages on each side)\n\n";
  bench::TablePrinter table({24, 5, 10, 12, 12, 12, 8});
  table.row({"Benchmark", "M_r", "expanded", "collapse(1)", "collapse(M-1)", "collapse(M)",
             "CSR"});
  table.rule();
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const int depth = r.max_value();
    auto collapse = [&](int k) {
      return std::to_string(collapsed_size(g, r, std::min(k, depth), std::min(k, depth)));
    };
    table.row({info.name, std::to_string(depth),
               std::to_string(predicted_retimed_size(g, r)), collapse(1),
               collapse(depth - 1 < 0 ? 0 : depth - 1), collapse(depth),
               std::to_string(predicted_retimed_csr_size(g, r))});
  }
  table.rule();
  std::cout << "\ncollapse(M) — every stage speculation-safe — reaches the bare"
               " body L but is\nrarely legal (faulting loads, side effects);"
               " CSR reaches L + 2|N_r| always.\n";
  return 0;
}
