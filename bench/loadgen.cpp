// loadgen — closed-loop load generator for csr_serve (BENCH_serve.json).
//
// N client threads each own one keep-alive connection and issue the same
// /v1/sweep query back-to-back: send, read the full response, record the
// latency, repeat. Closed-loop means offered load adapts to service rate —
// the report is the server's sustained throughput at saturation, not a
// drop rate. After --seconds of measurement it writes aggregate throughput
// and latency percentiles (p50/p90/p99/max) as JSON.
//
// Usage:
//   loadgen --port P [--host H] [--threads N] [--seconds S]
//           [--body JSON | --body-file F] [--output BENCH_serve.json]
//           [--expect-cache hit|partial|miss]
//
// The default body is a single-cell cached-friendly query, so a warm run
// measures the cache + HTTP path (the ROADMAP's >=5k req/s acceptance
// gate); point --body-file at a larger grid to measure compute instead.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

constexpr const char* kDefaultBody =
    R"({"benchmarks":["IIR Filter"],"transforms":["retimed_csr"]})";

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  unsigned threads = 4;
  double seconds = 5.0;
  std::string body = kDefaultBody;
  std::string output = "BENCH_serve.json";
  std::string expect_cache;  ///< empty = don't check
};

struct ThreadStats {
  std::vector<double> latencies_ms;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  bool cache_mismatch = false;
};

int dial(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly one HTTP/1.1 response off `fd` using `buffer` as carry-over
/// between calls (keep-alive). Returns the status code, or -1 on a broken
/// connection / unparseable response. Requires Content-Length (csr_serve
/// always sends it). `headers_out` gets the raw header block.
int read_response(int fd, std::string& buffer, std::string* headers_out) {
  char chunk[64 * 1024];
  std::size_t header_end = std::string::npos;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return -1;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  const std::string headers = buffer.substr(0, header_end);
  if (headers_out != nullptr) *headers_out = headers;

  int status = -1;
  if (headers.size() > 12 && headers.compare(0, 5, "HTTP/") == 0) {
    status = std::atoi(headers.c_str() + 9);
  }
  std::size_t content_length = 0;
  {
    // Case-insensitive scan for the Content-Length header.
    std::string lower = headers;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    const std::size_t pos = lower.find("content-length:");
    if (pos == std::string::npos) return -1;
    content_length = static_cast<std::size_t>(
        std::strtoull(headers.c_str() + pos + 15, nullptr, 10));
  }

  const std::size_t total = header_end + 4 + content_length;
  while (buffer.size() < total) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return -1;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  buffer.erase(0, total);  // leave any pipelined surplus for the next call
  return status;
}

void client_loop(const Options& options, const std::string& request,
                 std::chrono::steady_clock::time_point deadline,
                 ThreadStats& stats) {
  int fd = dial(options.host, options.port);
  std::string buffer;
  while (fd >= 0 && std::chrono::steady_clock::now() < deadline) {
    const auto start = std::chrono::steady_clock::now();
    std::string headers;
    if (!send_all(fd, request) || read_response(fd, buffer, &headers) != 200) {
      ++stats.errors;
      ::close(fd);
      buffer.clear();
      fd = dial(options.host, options.port);  // reconnect and keep going
      continue;
    }
    const auto end = std::chrono::steady_clock::now();
    ++stats.requests;
    stats.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    if (!options.expect_cache.empty() &&
        headers.find("X-Csr-Cache: " + options.expect_cache) == std::string::npos) {
      stats.cache_mismatch = true;
    }
  }
  if (fd >= 0) ::close(fd);
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "loadgen: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = value();
    } else if (arg == "--port") {
      options.port = std::atoi(value());
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::atoi(value()));
    } else if (arg == "--seconds") {
      options.seconds = std::atof(value());
    } else if (arg == "--body") {
      options.body = value();
    } else if (arg == "--body-file") {
      std::ifstream in(value());
      std::stringstream ss;
      ss << in.rdbuf();
      options.body = ss.str();
    } else if (arg == "--output") {
      options.output = value();
    } else if (arg == "--expect-cache") {
      options.expect_cache = value();
    } else {
      std::cerr << "loadgen: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (options.port <= 0 || options.threads == 0 || options.seconds <= 0) {
    std::cerr << "loadgen: --port is required (and threads/seconds positive)\n";
    return 2;
  }

  std::string request = "POST /v1/sweep HTTP/1.1\r\n";
  request += "Host: " + options.host + "\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(options.body.size()) + "\r\n";
  request += "Connection: keep-alive\r\n\r\n";
  request += options.body;

  // One priming request warms the cache (and fails fast on a dead server).
  {
    const int fd = dial(options.host, options.port);
    if (fd < 0) {
      std::cerr << "loadgen: cannot connect to " << options.host << ":"
                << options.port << "\n";
      return 1;
    }
    std::string buffer;
    const int status = send_all(fd, request) ? read_response(fd, buffer, nullptr) : -1;
    ::close(fd);
    if (status != 200) {
      std::cerr << "loadgen: priming request failed (status " << status << ")\n";
      return 1;
    }
  }

  std::vector<ThreadStats> stats(options.threads);
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(options.seconds));
  std::vector<std::thread> clients;
  clients.reserve(options.threads);
  for (unsigned t = 0; t < options.threads; ++t) {
    clients.emplace_back(client_loop, std::cref(options), std::cref(request),
                         deadline, std::ref(stats[t]));
  }
  for (std::thread& c : clients) c.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<double> latencies;
  std::uint64_t requests = 0, errors = 0;
  bool cache_mismatch = false;
  for (ThreadStats& s : stats) {
    requests += s.requests;
    errors += s.errors;
    cache_mismatch = cache_mismatch || s.cache_mismatch;
    latencies.insert(latencies.end(), s.latencies_ms.begin(), s.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double rps = elapsed > 0 ? static_cast<double>(requests) / elapsed : 0;

  std::ostringstream json;
  json.precision(6);
  json << std::fixed;
  json << "{\n  \"serve\": {\n"
       << "    \"threads\": " << options.threads << ",\n"
       << "    \"seconds\": " << elapsed << ",\n"
       << "    \"requests\": " << requests << ",\n"
       << "    \"errors\": " << errors << ",\n"
       << "    \"throughput_rps\": " << rps << ",\n"
       << "    \"latency_ms\": {\n"
       << "      \"p50\": " << percentile(latencies, 50) << ",\n"
       << "      \"p90\": " << percentile(latencies, 90) << ",\n"
       << "      \"p99\": " << percentile(latencies, 99) << ",\n"
       << "      \"max\": " << (latencies.empty() ? 0.0 : latencies.back()) << "\n"
       << "    }\n  }\n}\n";

  std::ofstream out(options.output, std::ios::trunc);
  out << json.str();
  std::cout << json.str();
  std::cerr << "loadgen: " << requests << " requests in " << elapsed << "s ("
            << static_cast<std::uint64_t>(rps) << " req/s), errors=" << errors
            << (cache_mismatch ? ", CACHE EXPECTATION VIOLATED" : "") << "\n";
  return cache_mismatch ? 3 : (errors > requests / 100 ? 4 : 0);
}
