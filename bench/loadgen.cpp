// loadgen — load generator for csr_serve (BENCH_serve.json).
//
// N client threads each own one keep-alive connection and drive it in one
// of two modes:
//
//   * **Closed loop** (default): keep --pipeline requests outstanding;
//     every response completion refills the window. Offered load adapts to
//     service rate, so the report is the server's sustained throughput at
//     saturation, not a drop rate. Latency is measured from send.
//   * **Open loop** (--rate R): requests *arrive* on a fixed schedule — R
//     per second spread across the threads — regardless of how fast the
//     server answers (bounded only by the pipeline window). Latency is
//     measured from the scheduled arrival, so server-side queueing under
//     overload shows up in the percentiles instead of silently throttling
//     the generator.
//
// The first --warmup seconds of each run (plus the priming request) warm
// caches and branch predictors; their completions are counted separately
// and excluded from the throughput and latency report. Errors are split by
// kind — connect failures, response timeouts, and protocol errors (broken
// connection, non-200) — so a flaky network is distinguishable from a
// misbehaving server.
//
// Usage:
//   loadgen --port P [--host H] [--threads N] [--seconds S] [--warmup S]
//           [--pipeline D] [--rate R] [--timeout-ms MS]
//           [--body JSON | --body-file F] [--output BENCH_serve.json]
//           [--expect-cache hit|partial|miss]
//
// The default body is a single-cell cache-friendly query, so a warm run
// measures the serving path itself (the ROADMAP's >=100k req/s acceptance
// gate rides on --pipeline); point --body-file at a larger grid to measure
// compute instead.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kDefaultBody =
    R"({"benchmarks":["IIR Filter"],"transforms":["retimed_csr"]})";

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  unsigned threads = 4;
  double seconds = 5.0;
  double warmup = 0.5;
  std::size_t pipeline = 1;
  double rate = 0.0;  ///< total req/s across threads; 0 = closed loop
  int timeout_ms = 5000;
  std::string body = kDefaultBody;
  std::string output = "BENCH_serve.json";
  std::string expect_cache;  ///< empty = don't check
};

struct ThreadStats {
  std::vector<double> latencies_ms;  ///< post-warmup completions only
  std::uint64_t requests = 0;        ///< post-warmup completions
  std::uint64_t warmup_requests = 0;
  std::uint64_t errors = 0;  ///< protocol: broken conn, bad parse, non-200
  std::uint64_t connect_errors = 0;
  std::uint64_t timeout_errors = 0;
  bool cache_mismatch = false;
};

int dial(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Appends whatever the socket has to `buffer`, waiting at most `timeout_ms`.
/// Returns 1 on data, 0 on timeout, -1 on error or orderly close.
int recv_into(int fd, std::string& buffer, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r == 0) return 0;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return -1;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    return 1;
  }
}

/// Reads exactly one HTTP/1.1 response off `fd` using `buffer` as carry-over
/// between calls (keep-alive + pipelining: surplus bytes stay buffered for
/// the next call, and a fully buffered response costs no syscall). Returns
/// the status code, -1 on a broken connection / unparseable response, or -2
/// on timeout. Requires Content-Length (csr_serve always sends it).
int read_response(int fd, std::string& buffer, int timeout_ms,
                  std::string* headers_out) {
  std::size_t header_end = std::string::npos;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const int r = recv_into(fd, buffer, timeout_ms);
    if (r <= 0) return r == 0 ? -2 : -1;
  }
  const std::string headers = buffer.substr(0, header_end);
  if (headers_out != nullptr) *headers_out = headers;

  int status = -1;
  if (headers.size() > 12 && headers.compare(0, 5, "HTTP/") == 0) {
    status = std::atoi(headers.c_str() + 9);
  }
  std::size_t content_length = 0;
  {
    // Case-insensitive scan for the Content-Length header.
    std::string lower = headers;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    const std::size_t pos = lower.find("content-length:");
    if (pos == std::string::npos) return -1;
    content_length = static_cast<std::size_t>(
        std::strtoull(headers.c_str() + pos + 15, nullptr, 10));
  }

  const std::size_t total = header_end + 4 + content_length;
  while (buffer.size() < total) {
    const int r = recv_into(fd, buffer, timeout_ms);
    if (r <= 0) return r == 0 ? -2 : -1;
  }
  buffer.erase(0, total);  // leave any pipelined surplus for the next call
  return status;
}

void client_loop(const Options& options, const std::string& request,
                 Clock::time_point warmup_end, Clock::time_point deadline,
                 double thread_interval_s, ThreadStats& stats) {
  int fd = dial(options.host, options.port);
  if (fd < 0) ++stats.connect_errors;
  std::string buffer;
  // Send timestamps (closed loop) or scheduled arrival times (open loop) of
  // the outstanding pipelined requests, oldest first.
  std::deque<Clock::time_point> outstanding;

  const bool open_loop = thread_interval_s > 0;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(open_loop ? thread_interval_s : 0));
  Clock::time_point next_arrival = Clock::now();

  const auto reconnect = [&]() {
    ::close(fd);
    buffer.clear();
    outstanding.clear();
    fd = dial(options.host, options.port);
    if (fd < 0) {
      ++stats.connect_errors;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };

  for (;;) {
    const auto now = Clock::now();
    if (fd < 0) {
      if (now >= deadline) break;
      reconnect();
      continue;
    }

    // Top off the pipeline window. Closed loop refills whenever at least
    // half the window is free (so sends batch into ~pipeline/2 requests per
    // syscall); open loop sends exactly the arrivals that are due, catching
    // up in a burst when the server lagged — that burst is the point.
    std::size_t due = 0;
    if (now < deadline) {
      if (open_loop) {
        while (next_arrival <= now && outstanding.size() + due < options.pipeline) {
          ++due;
          next_arrival += interval;
        }
      } else if (outstanding.empty() ||
                 outstanding.size() <= options.pipeline / 2) {
        due = options.pipeline - outstanding.size();
      }
    }
    if (due > 0) {
      std::string block;
      block.reserve(due * request.size());
      for (std::size_t k = 0; k < due; ++k) block += request;
      if (!send_all(fd, block)) {
        ++stats.errors;
        reconnect();
        continue;
      }
      for (std::size_t k = 0; k < due; ++k) {
        // Open loop: latency is measured from the scheduled arrival, so
        // catch-up bursts charge the server for the queueing they caused.
        outstanding.push_back(
            open_loop
                ? Clock::time_point(next_arrival -
                                    interval * static_cast<long long>(due - k))
                : now);
      }
    }

    if (outstanding.empty()) {
      if (now >= deadline) break;
      if (open_loop && next_arrival > now) {
        std::this_thread::sleep_until(std::min(next_arrival, deadline));
      }
      continue;
    }

    std::string headers;
    const int status =
        read_response(fd, buffer, options.timeout_ms, &headers);
    if (status != 200) {
      if (status == -2) {
        ++stats.timeout_errors;
      } else {
        ++stats.errors;
      }
      if (Clock::now() >= deadline) break;
      reconnect();
      continue;
    }
    const auto end = Clock::now();
    const auto sent = outstanding.front();
    outstanding.pop_front();
    if (end < warmup_end) {
      ++stats.warmup_requests;
    } else {
      ++stats.requests;
      stats.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(end - sent).count());
    }
    if (!options.expect_cache.empty() &&
        headers.find("X-Csr-Cache: " + options.expect_cache) == std::string::npos) {
      stats.cache_mismatch = true;
    }
  }
  if (fd >= 0) ::close(fd);
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "loadgen: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = value();
    } else if (arg == "--port") {
      options.port = std::atoi(value());
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::atoi(value()));
    } else if (arg == "--seconds") {
      options.seconds = std::atof(value());
    } else if (arg == "--warmup") {
      options.warmup = std::atof(value());
    } else if (arg == "--pipeline") {
      options.pipeline = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--rate") {
      options.rate = std::atof(value());
    } else if (arg == "--timeout-ms") {
      options.timeout_ms = std::atoi(value());
    } else if (arg == "--body") {
      options.body = value();
    } else if (arg == "--body-file") {
      std::ifstream in(value());
      std::stringstream ss;
      ss << in.rdbuf();
      options.body = ss.str();
    } else if (arg == "--output") {
      options.output = value();
    } else if (arg == "--expect-cache") {
      options.expect_cache = value();
    } else {
      std::cerr << "loadgen: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (options.port <= 0 || options.threads == 0 || options.seconds <= 0 ||
      options.pipeline == 0 || options.warmup < 0 || options.rate < 0 ||
      options.timeout_ms <= 0) {
    std::cerr << "loadgen: --port is required (and threads/seconds/pipeline "
                 "positive, warmup/rate non-negative)\n";
    return 2;
  }

  std::string request = "POST /v1/sweep HTTP/1.1\r\n";
  request += "Host: " + options.host + "\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(options.body.size()) + "\r\n";
  request += "Connection: keep-alive\r\n\r\n";
  request += options.body;

  // One priming request warms the cache (and fails fast on a dead server).
  {
    const int fd = dial(options.host, options.port);
    if (fd < 0) {
      std::cerr << "loadgen: cannot connect to " << options.host << ":"
                << options.port << "\n";
      return 1;
    }
    std::string buffer;
    const int status = send_all(fd, request)
                           ? read_response(fd, buffer, options.timeout_ms, nullptr)
                           : -1;
    ::close(fd);
    if (status != 200) {
      std::cerr << "loadgen: priming request failed (status " << status << ")\n";
      return 1;
    }
  }

  const double per_thread_interval =
      options.rate > 0 ? static_cast<double>(options.threads) / options.rate
                       : 0.0;

  std::vector<ThreadStats> stats(options.threads);
  const auto t0 = Clock::now();
  const auto warmup_end =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(options.warmup));
  const auto deadline =
      warmup_end + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(options.seconds));
  std::vector<std::thread> clients;
  clients.reserve(options.threads);
  for (unsigned t = 0; t < options.threads; ++t) {
    clients.emplace_back(client_loop, std::cref(options), std::cref(request),
                         warmup_end, deadline, per_thread_interval,
                         std::ref(stats[t]));
  }
  for (std::thread& c : clients) c.join();
  // Throughput over the measurement window only — warmup completions are
  // reported separately and never enter the percentiles.
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - warmup_end).count();

  std::vector<double> latencies;
  std::uint64_t requests = 0, warmup_requests = 0;
  std::uint64_t errors = 0, connect_errors = 0, timeout_errors = 0;
  bool cache_mismatch = false;
  for (ThreadStats& s : stats) {
    requests += s.requests;
    warmup_requests += s.warmup_requests;
    errors += s.errors;
    connect_errors += s.connect_errors;
    timeout_errors += s.timeout_errors;
    cache_mismatch = cache_mismatch || s.cache_mismatch;
    latencies.insert(latencies.end(), s.latencies_ms.begin(), s.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double rps = elapsed > 0 ? static_cast<double>(requests) / elapsed : 0;

  std::ostringstream json;
  json.precision(6);
  json << std::fixed;
  json << "{\n  \"serve\": {\n"
       << "    \"threads\": " << options.threads << ",\n"
       << "    \"pipeline\": " << options.pipeline << ",\n"
       << "    \"rate_rps\": " << options.rate << ",\n"
       << "    \"warmup_seconds\": " << options.warmup << ",\n"
       << "    \"warmup_requests\": " << warmup_requests << ",\n"
       << "    \"seconds\": " << elapsed << ",\n"
       << "    \"requests\": " << requests << ",\n"
       << "    \"errors\": " << errors << ",\n"
       << "    \"connect_errors\": " << connect_errors << ",\n"
       << "    \"timeout_errors\": " << timeout_errors << ",\n"
       << "    \"throughput_rps\": " << rps << ",\n"
       << "    \"latency_ms\": {\n"
       << "      \"p50\": " << percentile(latencies, 50) << ",\n"
       << "      \"p90\": " << percentile(latencies, 90) << ",\n"
       << "      \"p99\": " << percentile(latencies, 99) << ",\n"
       << "      \"max\": " << (latencies.empty() ? 0.0 : latencies.back()) << "\n"
       << "    }\n  }\n}\n";

  std::ofstream out(options.output, std::ios::trunc);
  out << json.str();
  std::cout << json.str();
  const std::uint64_t total_errors = errors + connect_errors + timeout_errors;
  std::cerr << "loadgen: " << requests << " requests in " << elapsed << "s ("
            << static_cast<std::uint64_t>(rps) << " req/s), errors=" << errors
            << " connect=" << connect_errors << " timeout=" << timeout_errors
            << (cache_mismatch ? ", CACHE EXPECTATION VIOLATED" : "") << "\n";
  return cache_mismatch ? 3 : (total_errors > requests / 100 ? 4 : 0);
}
