// Ablation: does code size reduction cost performance? The paper claims
// "in most cases, code size reduction does not hurt the performance of an
// optimized loop" (Section 3.2) — the CSR loop executes n + M_r kernel
// trips instead of n − M_r plus explicit fill/drain code. This bench counts
// VLIW instruction words issued by both forms under a 2-adder/2-multiplier
// machine across trip counts.
//
// All (n, benchmark) cells are independent; they are evaluated on the
// driver's thread pool and printed in sweep order.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/vliw.hpp"
#include "driver/thread_pool.hpp"
#include "retiming/opt.hpp"
#include "table_util.hpp"

int main() {
  using namespace csr;
  const ResourceModel machine = ResourceModel::adders_and_multipliers(2, 2);
  const std::vector<std::int64_t> trip_counts = {20, 101, 1000};
  const auto infos = benchmarks::table_benchmarks();

  struct Cell {
    std::int64_t n;
    std::size_t benchmark;
  };
  std::vector<Cell> cells;
  for (const std::int64_t n : trip_counts) {
    for (std::size_t b = 0; b < infos.size(); ++b) cells.push_back({n, b});
  }

  const auto rows = driver::parallel_map(
      cells, driver::default_thread_count(), [&](const Cell& cell) {
        const auto& info = infos[cell.benchmark];
        const DataFlowGraph g = info.factory();
        const Retiming r = minimum_period_retiming(g).retiming;
        const VliwCycleAccounting acct = vliw_cycle_accounting(g, r, cell.n, machine);
        char pct[16];
        std::snprintf(pct, sizeof pct, "%+.2f%%", acct.overhead * 100.0);
        return std::vector<std::string>{
            info.name, std::to_string(acct.kernel_words),
            std::to_string(acct.expanded_cycles), std::to_string(acct.csr_cycles),
            pct};
      });

  std::cout << "Ablation: cycle cost of CSR vs expanded pipelined code\n"
            << "(VLIW instruction words issued; 2 adders + 2 multipliers)\n\n";
  std::size_t k = 0;
  for (const std::int64_t n : trip_counts) {
    std::cout << "n = " << n << '\n';
    bench::TablePrinter table({24, 8, 10, 10, 10});
    table.row({"Benchmark", "kernel", "expanded", "CSR", "overhead"});
    table.rule();
    for (std::size_t b = 0; b < infos.size(); ++b) table.row(rows[k++]);
    std::cout << '\n';
  }
  std::cout << "overhead = CSR cycles / expanded cycles − 1. The CSR form's\n"
               "extra 2·M_r kernel trips are offset by the expanded form's\n"
               "sparsely-filled prologue/epilogue words; both shrink toward 0\n"
               "as n grows.\n";
  return 0;
}
