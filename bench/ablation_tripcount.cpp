// Ablation: how the CSR benefit depends on the trip count's remainder
// class. For the lattice benchmark at f = 3, sweep n across remainder
// classes and report the expanded size, the CSR size, and the CSR size
// after the guard optimizer exploited the compile-time-known n — isolating
// how much of the conditional-register overhead pays for arbitrary-n
// generality.
//
// Each n is an independent codegen + optimize + VM-equivalence job; the
// driver's thread pool evaluates them concurrently.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "driver/thread_pool.hpp"
#include "loopir/optimizer.hpp"
#include "retiming/opt.hpp"
#include "table_util.hpp"
#include "vm/equivalence.hpp"

int main() {
  using namespace csr;
  const DataFlowGraph g = benchmarks::lattice_filter();
  const int f = 3;
  const Retiming r = minimum_period_retiming(g).retiming;

  struct Row {
    std::string error;
    std::vector<std::string> cells;
  };

  const std::vector<std::int64_t> retimed_ns = {99, 100, 101, 102, 103, 104};
  const auto retimed_rows = driver::parallel_map(
      retimed_ns, driver::default_thread_count(), [&](std::int64_t n) {
        Row row;
        const LoopProgram expanded = retimed_unfolded_program(g, r, f, n);
        const LoopProgram reduced = retimed_unfolded_csr_program(g, r, f, n);
        const OptimizationReport opt = optimize_program(reduced);
        const auto diffs =
            compare_programs(original_program(g, n), opt.program, array_names(g));
        if (!diffs.empty()) {
          row.error = "optimized program diverges at n=" + std::to_string(n) + ": " +
                      diffs.front();
          return row;
        }
        row.cells = {std::to_string(n), std::to_string(n % f),
                     std::to_string(expanded.code_size()),
                     std::to_string(reduced.code_size()),
                     std::to_string(opt.program.code_size()),
                     std::to_string(opt.guards_dropped)};
        return row;
      });

  std::cout << "Ablation: trip-count remainder vs CSR benefit — lattice filter,"
            << " f = " << f << "\n\n";
  bench::TablePrinter table({6, 8, 10, 8, 12, 14});
  table.row({"n", "n mod f", "expanded", "CSR", "CSR+opt", "guards dropped"});
  table.rule();
  for (const Row& row : retimed_rows) {
    if (!row.error.empty()) {
      std::cerr << row.error << '\n';
      return 1;
    }
    table.row(row.cells);
  }

  const std::vector<std::int64_t> pure_ns = {99, 100, 101};
  const auto pure_rows = driver::parallel_map(
      pure_ns, driver::default_thread_count(), [&](std::int64_t n) {
        const LoopProgram expanded = unfolded_program(g, f, n);
        const LoopProgram reduced = unfolded_csr_program(g, f, n);
        const OptimizationReport opt = optimize_program(reduced);
        return std::vector<std::string>{std::to_string(n), std::to_string(n % f),
                                        std::to_string(expanded.code_size()),
                                        std::to_string(reduced.code_size()),
                                        std::to_string(opt.program.code_size())};
      });

  std::cout << "\npure unfolding (no retiming), same sweep:\n";
  bench::TablePrinter pure({6, 8, 10, 8, 12});
  pure.row({"n", "n mod f", "expanded", "CSR", "CSR+opt"});
  pure.rule();
  for (const auto& row : pure_rows) pure.row(row);
  std::cout << "\nWhen f divides n the optimizer retires the remainder guards"
               " entirely;\notherwise the CSR overhead is the price of the"
               " conditional tail.\n";
  return 0;
}
