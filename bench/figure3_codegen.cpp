// Reproduces Figure 3: the software-pipelined code of the 5-node example
// loop, (a) with explicit prologue/epilogue, (b) after conditional-register
// code size reduction, and (c) the execution evidence — per-register guard
// windows and the exactly-n execution count of every node.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/statements.hpp"
#include "loopir/printer.hpp"
#include "retiming/opt.hpp"
#include "vm/equivalence.hpp"

int main() {
  using namespace csr;
  const DataFlowGraph g = benchmarks::figure3_example();
  const std::int64_t n = 12;
  const OptimalRetiming opt = minimum_period_retiming(g);

  std::cout << "Figure 3 reproduction — the A..E loop, retiming r = (";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::cout << g.node(v).name << ":" << opt.retiming[v]
              << (v + 1 < g.node_count() ? ", " : ")");
  }
  std::cout << ", cycle period " << opt.period << "\n\n";

  std::cout << "--- original loop ---\n" << to_source(original_program(g, n)) << '\n';
  std::cout << "--- (a) software-pipelined, expanded ---\n"
            << to_source(retimed_program(g, opt.retiming, n)) << '\n';
  const LoopProgram csr = retimed_csr_program(g, opt.retiming, n);
  std::cout << "--- (b) prologue/epilogue removed with conditional registers ---\n"
            << to_source(csr) << '\n';

  const Machine reference = run_program(original_program(g, n));
  const Machine machine = run_program(csr);
  const auto diffs = diff_observable_state(reference, machine, array_names(g), n);
  if (!diffs.empty()) {
    std::cerr << "CSR program diverges: " << diffs.front() << '\n';
    return 1;
  }
  std::cout << "--- (c) execution ---\n";
  for (const std::string& array : array_names(g)) {
    std::cout << array << " executed " << machine.total_writes(array) << " times\n";
  }
  std::cout << "guarded statements disabled (hidden prologue/epilogue slots): "
            << machine.disabled_statements() << '\n'
            << "observable state identical to the original loop for n = " << n << '\n';
  return 0;
}
