// Measures the cost of the observability layer, and in particular its
// headline contract: with tracing disabled (the default), the spans and
// metrics wired through the sweep pipeline cost under 1% on the VM sweep
// path. BM_Sweep* run the same single-benchmark VM sweep with the tracer
// off and on; the micro benches price one disabled span (a relaxed atomic
// load), one enabled span, and one counter/histogram update — the unit
// costs the <1% macro number decomposes into.
//
// Run:  perf_observe --benchmark_filter=BM_Sweep
// The null-sink regression check in CI compares BM_SweepTracingOff against
// the pre-observability baseline recorded in docs/OBSERVABILITY.md.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "api/csr.hpp"

namespace {

using namespace csr;

driver::SweepConfig vm_sweep_config() {
  return driver::SweepConfig()
      .benchmarks({"IIR Filter"})
      .trip_counts({101})
      .threads(1);  // serial: measure instrumentation, not scheduling noise
}

void BM_SweepTracingOff(benchmark::State& state) {
  observe::Tracer::global().set_enabled(false);
  const driver::SweepConfig config = vm_sweep_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver::run_sweep(config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.cells().size()));
}
BENCHMARK(BM_SweepTracingOff)->Unit(benchmark::kMillisecond);

void BM_SweepTracingOn(benchmark::State& state) {
  auto& tracer = observe::Tracer::global();
  tracer.set_enabled(true);
  const driver::SweepConfig config = vm_sweep_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver::run_sweep(config));
    // Keep the buffer bounded so memory growth does not skew later
    // iterations; clearing is outside the span hot path being measured.
    tracer.clear();
  }
  tracer.set_enabled(false);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.cells().size()));
}
BENCHMARK(BM_SweepTracingOn)->Unit(benchmark::kMillisecond);

void BM_DisabledSpan(benchmark::State& state) {
  observe::Tracer::global().set_enabled(false);
  for (auto _ : state) {
    observe::Span span("bench", "disabled");
    span.arg("k", 1);  // dropped without touching the clock or allocating
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_DisabledSpan);

void BM_EnabledSpan(benchmark::State& state) {
  auto& tracer = observe::Tracer::global();
  tracer.set_enabled(true);
  std::size_t n = 0;
  for (auto _ : state) {
    {
      observe::Span span("bench", "enabled");
      span.arg("k", 1);
    }
    if (++n == 4096) {  // bound the buffer without clearing every iteration
      state.PauseTiming();
      tracer.clear();
      n = 0;
      state.ResumeTiming();
    }
  }
  tracer.set_enabled(false);
  tracer.clear();
}
BENCHMARK(BM_EnabledSpan);

void BM_CounterIncrement(benchmark::State& state) {
  observe::Counter& counter =
      observe::MetricsRegistry::global().counter("bench_perf_observe_total");
  for (auto _ : state) {
    counter.increment();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  observe::Histogram& histogram = observe::MetricsRegistry::global().histogram(
      "bench_perf_observe_seconds", observe::latency_seconds_bounds());
  for (auto _ : state) {
    histogram.observe(1e-4);
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramObserve);

}  // namespace

BENCHMARK_MAIN();
