// Reproduces Figures 6–7: the A,B,C loop retimed (depth 1) and unfolded by
// 3, then reduced to a single conditional loop with two registers; prints
// the Figure 7(c)-style execution trace for n = 9 showing the prologue and
// epilogue hidden inside the first and last conditional trips.
//
// The paper's printed retiming r(B)=1 with r(A)=0 is illegal under its own
// d_r(e) = d(e) + r(u) − r(v) convention (the zero-delay edge A→B would go
// negative); the legal variant r(A)=r(B)=1, r(C)=0 used here produces the
// same register structure (two registers, initial values differing by 1).

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "loopir/printer.hpp"
#include "vm/equivalence.hpp"

int main() {
  using namespace csr;
  const DataFlowGraph g = benchmarks::figure4_example();
  const int f = 3;
  const std::int64_t n = 9;
  Retiming r(g.node_count());
  r.set(*g.find_node("A"), 1);
  r.set(*g.find_node("B"), 1);

  std::cout << "Figure 6/7 reproduction — retime (r(A)=r(B)=1, r(C)=0) then"
            << " unfold by " << f << ", n = " << n << "\n\n";
  const LoopProgram expanded = retimed_unfolded_program(g, r, f, n);
  const LoopProgram reduced = retimed_unfolded_csr_program(g, r, f, n);
  std::cout << "--- Figure 6(b): expanded retimed+unfolded code (size "
            << expanded.code_size() << ") ---\n"
            << to_source(expanded) << '\n';
  std::cout << "--- Figure 7(b): CSR code (size " << reduced.code_size() << ", "
            << reduced.conditional_registers().size() << " registers) ---\n"
            << to_source(reduced) << '\n';

  const auto diffs = compare_programs(original_program(g, n), reduced, array_names(g));
  if (!diffs.empty()) {
    std::cerr << "CSR program diverges: " << diffs.front() << '\n';
    return 1;
  }

  // Figure 7(c): which statement copies execute in each conditional trip.
  std::cout << "--- Figure 7(c): execution sequence ---\n";
  const LoopSegment& loop = reduced.segments.back();
  const Machine full = run_program(reduced);
  for (std::int64_t i = loop.begin; i <= loop.end; i += loop.step) {
    std::cout << "trip i=" << i << ":";
    for (const Instruction& instr : loop.instructions) {
      if (instr.kind != InstrKind::kStatement) continue;
      const std::int64_t target = i + instr.stmt.offset;
      if (target >= 1 && target <= n) {
        std::cout << ' ' << instr.stmt.array << '[' << target << ']';
      }
    }
    std::cout << '\n';
  }
  std::cout << "every node executed exactly " << full.total_writes("A")
            << " times; state matches the original loop\n";
  return 0;
}
