// Ablation: the retiming objective — pipeline depth (code size) versus
// delay registers (data storage). Both solvers hit the same rate-optimal
// cycle period; they differ in which secondary cost they spend. CSR code
// size depends on the depth-side quantities (M_r, |N_r|), storage on
// Σ d_r(e) — the axis the paper's memory-constrained follow-ups [3,10]
// optimize.
//
// The two solver runs per benchmark execute on the driver's thread pool.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codesize/model.hpp"
#include "driver/thread_pool.hpp"
#include "retiming/min_storage.hpp"
#include "retiming/opt.hpp"
#include "table_util.hpp"

int main() {
  using namespace csr;

  struct Section {
    bool ok = false;
    std::string name;
    std::vector<std::vector<std::string>> rows;
    std::int64_t total_delay = 0;
  };

  const auto infos = benchmarks::table_benchmarks();
  const auto sections = driver::parallel_map(
      infos, driver::default_thread_count(), [](const auto& info) {
        const DataFlowGraph g = info.factory();
        Section section;
        section.name = info.name;
        section.total_delay = g.total_delay();
        const OptimalRetiming depth_opt = minimum_period_retiming(g);
        const auto storage_opt = min_storage_retiming(g, depth_opt.period);
        if (!storage_opt) return section;
        section.ok = true;
        const auto row = [&](const char* objective, const Retiming& r) {
          return std::vector<std::string>{
              objective == std::string("min depth") ? info.name : "",
              std::to_string(depth_opt.period), objective,
              std::to_string(r.max_value()), std::to_string(registers_required(r)),
              std::to_string(predicted_retimed_csr_size(g, r)),
              std::to_string(total_delays_after(g, r))};
        };
        section.rows.push_back(row("min depth", depth_opt.retiming));
        section.rows.push_back(row("min storage", *storage_opt));
        return section;
      });

  std::cout << "Ablation: depth-minimal vs storage-minimal retiming at the"
            << " rate-optimal cycle period\n\n";
  bench::TablePrinter table({24, 8, 14, 10, 10, 10, 10});
  table.row({"Benchmark", "period", "objective", "M_r", "Rgs", "CSR", "delays"});
  table.rule();
  for (const Section& section : sections) {
    if (!section.ok) {
      std::cerr << "storage solver failed for " << section.name << '\n';
      return 1;
    }
    for (const auto& row : section.rows) table.row(row);
  }
  table.rule();
  std::cout << "\ndelays = Σ d_r(e), the inter-iteration values the retimed loop"
               " keeps live\n(original counts: the un-retimed graphs hold ";
  bool first = true;
  for (const Section& section : sections) {
    std::cout << (first ? "" : "/") << section.total_delay;
    first = false;
  }
  std::cout << ").\n";
  return 0;
}
