// Ablation: the retiming objective — pipeline depth (code size) versus
// delay registers (data storage). Both solvers hit the same rate-optimal
// cycle period; they differ in which secondary cost they spend. CSR code
// size depends on the depth-side quantities (M_r, |N_r|), storage on
// Σ d_r(e) — the axis the paper's memory-constrained follow-ups [3,10]
// optimize.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codesize/model.hpp"
#include "retiming/min_storage.hpp"
#include "retiming/opt.hpp"
#include "table_util.hpp"

int main() {
  using namespace csr;
  std::cout << "Ablation: depth-minimal vs storage-minimal retiming at the"
            << " rate-optimal cycle period\n\n";
  bench::TablePrinter table({24, 8, 14, 10, 10, 10, 10});
  table.row({"Benchmark", "period", "objective", "M_r", "Rgs", "CSR", "delays"});
  table.rule();
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming depth_opt = minimum_period_retiming(g);
    const auto storage_opt = min_storage_retiming(g, depth_opt.period);
    if (!storage_opt) {
      std::cerr << "storage solver failed for " << info.name << '\n';
      return 1;
    }
    auto row = [&](const char* objective, const Retiming& r) {
      table.row({objective == std::string("min depth") ? info.name : "",
                 std::to_string(depth_opt.period), objective,
                 std::to_string(r.max_value()),
                 std::to_string(registers_required(r)),
                 std::to_string(predicted_retimed_csr_size(g, r)),
                 std::to_string(total_delays_after(g, r))});
    };
    row("min depth", depth_opt.retiming);
    row("min storage", *storage_opt);
  }
  table.rule();
  std::cout << "\ndelays = Σ d_r(e), the inter-iteration values the retimed loop"
               " keeps live\n(original counts: the un-retimed graphs hold ";
  bool first = true;
  for (const auto& info : benchmarks::table_benchmarks()) {
    std::cout << (first ? "" : "/") << info.factory().total_delay();
    first = false;
  }
  std::cout << ").\n";
  return 0;
}
