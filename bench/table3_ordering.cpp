// Reproduces Table 3: code size and iteration period of the Figure 8
// example (a non-unit-time DFG with fractional iteration bound 27/2) under
// the two transformation orders, for unfolding factors 2..4.
//
// For each factor f the unfolded graph is retimed to its minimum cycle
// period (depth-minimal); that retiming is folded back onto the original
// graph per Theorem 4.5 (r_f(u) = Σ_i r(u_i)), giving the retime-then-unfold
// program at the same performance point. The CSR row applies conditional
// registers to the retime-unfold form (Theorem 4.7).

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded_retimed.hpp"
#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "retiming/opt.hpp"
#include "table_util.hpp"
#include "unfolding/unfold.hpp"
#include "vm/equivalence.hpp"

int main() {
  using namespace csr;
  const DataFlowGraph g = benchmarks::chao_sha_example();
  const std::int64_t n = 120;
  const auto bound = iteration_bound(g);
  std::cout << "Table 3: code size and iteration period, Figure 8 example\n"
            << "(reconstructed non-unit-time DFG, iteration bound "
            << bound->to_string() << ", n = " << n << ")\n"
            << "paper row shapes: unfold-retime >= retime-unfold >= CSR\n\n";

  bench::TablePrinter table({22, 10, 10, 10});
  table.row({"Approach", "uf=2", "uf=3", "uf=4"});
  table.rule();

  std::vector<std::string> row_fr{"unfold-retime"};
  std::vector<std::string> row_rf{"retime-unfold"};
  std::vector<std::string> row_cr{"retime-unfold-CR"};
  std::vector<std::string> row_ip{"iteration period"};
  std::vector<std::string> row_rg{"CR registers"};

  for (const int f : {2, 3, 4}) {
    const Unfolding u(g, f);
    const OptimalRetiming uopt = minimum_period_retiming(u.graph());
    const Retiming folded = u.fold_retiming(uopt.retiming).normalized();

    // Verify the Theorem 4.5 equivalence: retime-then-unfold at r_f reaches
    // the same cycle period.
    const int rf_period = cycle_period(unfold(apply_retiming(g, folded), f));
    if (rf_period > uopt.period) {
      std::cerr << "retime-unfold lost performance at f=" << f << ": " << rf_period
                << " vs " << uopt.period << '\n';
      return 1;
    }

    const LoopProgram reference = original_program(g, n);
    const LoopProgram fr = unfolded_retimed_program(u, uopt.retiming, n);
    const LoopProgram rf = retimed_unfolded_program(g, folded, f, n);
    const LoopProgram cr = retimed_unfolded_csr_program(g, folded, f, n);
    for (const LoopProgram* p : {&fr, &rf, &cr}) {
      const auto diffs = compare_programs(reference, *p, array_names(g));
      if (!diffs.empty()) {
        std::cerr << "divergence at f=" << f << ": " << diffs.front() << '\n';
        return 1;
      }
    }

    row_fr.push_back(std::to_string(fr.code_size()));
    row_rf.push_back(std::to_string(rf.code_size()));
    row_cr.push_back(std::to_string(cr.code_size()));
    row_ip.push_back(Rational(uopt.period, f).to_string());
    row_rg.push_back(std::to_string(cr.conditional_registers().size()));
  }

  table.row(row_fr);
  table.row(row_rf);
  table.row(row_cr);
  table.rule();
  table.row(row_ip);
  table.row(row_rg);
  std::cout << "\npaper's Table 3:    unfold-retime 20/30/40, retime-unfold 20/30/30,"
               "\n                    retime-unfold-CR 14/19/24, periods 20/19/13.5\n";
  return 0;
}
