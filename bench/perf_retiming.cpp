// Performance microbenchmarks for the analysis/optimization kernels:
// iteration bound, W/D matrices, feasibility checks and the full
// minimum-period retiming on each benchmark graph.

#include <benchmark/benchmark.h>

#include "benchmarks/benchmarks.hpp"
#include "dfg/iteration_bound.hpp"
#include "retiming/min_storage.hpp"
#include "retiming/opt.hpp"
#include "retiming/wd.hpp"
#include "schedule/modulo.hpp"

namespace {

using namespace csr;

const DataFlowGraph& graph_for(int index) {
  static const std::vector<DataFlowGraph> graphs = [] {
    std::vector<DataFlowGraph> out;
    for (const auto& info : benchmarks::table_benchmarks()) {
      out.push_back(info.factory());
    }
    return out;
  }();
  return graphs[static_cast<std::size_t>(index)];
}

void BM_IterationBound(benchmark::State& state) {
  const DataFlowGraph& g = graph_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(iteration_bound(g));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_IterationBound)->DenseRange(0, 5);

void BM_WDMatrices(benchmark::State& state) {
  const DataFlowGraph& g = graph_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(WDMatrices(g));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_WDMatrices)->DenseRange(0, 5);

void BM_FeasibleRetiming(benchmark::State& state) {
  const DataFlowGraph& g = graph_for(static_cast<int>(state.range(0)));
  const WDMatrices wd(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(feasible_retiming(g, wd, 3));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_FeasibleRetiming)->DenseRange(0, 5);

void BM_MinimumPeriodRetiming(benchmark::State& state) {
  const DataFlowGraph& g = graph_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimum_period_retiming(g));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_MinimumPeriodRetiming)->DenseRange(0, 5);

void BM_MinStorageRetiming(benchmark::State& state) {
  const DataFlowGraph& g = graph_for(static_cast<int>(state.range(0)));
  const std::int64_t period = minimum_period_retiming(g).period;
  const WDMatrices wd(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_storage_retiming(g, wd, period));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_MinStorageRetiming)->DenseRange(0, 5);

void BM_ModuloSchedule(benchmark::State& state) {
  const DataFlowGraph& g = graph_for(static_cast<int>(state.range(0)));
  const ResourceModel model = ResourceModel::adders_and_multipliers(2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(modulo_schedule(g, model));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_ModuloSchedule)->DenseRange(0, 5);

}  // namespace

BENCHMARK_MAIN();
