// Reproduces Table 2: code size after retiming and unfolding (f = 3, loop
// counter n = 101) with and without conditional-register reduction. The
// measured "R-U" column counts the real remainder of the generated program,
// (n − M_r) mod f iterations; the paper's formula uses n mod f — both are
// printed. CSR programs are verified in the VM before being reported.

#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codesize/model.hpp"
#include "retiming/opt.hpp"
#include "table_util.hpp"
#include "vm/equivalence.hpp"

namespace {

struct PaperRow {
  std::int64_t ru, cr, rgs;
};

const PaperRow kPaper[] = {
    {48, 32, 2}, {77, 45, 3}, {120, 61, 4}, {238, 114, 3}, {182, 90, 3}, {168, 89, 2},
};

}  // namespace

int main() {
  using namespace csr;
  constexpr int kFactor = 3;
  constexpr std::int64_t kN = 101;
  std::cout << "Table 2: code size after retiming and unfolding, f = " << kFactor
            << ", n = " << kN << "\n(measured; paper values in parentheses)\n\n";
  bench::TablePrinter table({24, 12, 12, 10, 8, 7});
  table.row({"Benchmark", "R-U", "paper-f.", "CR", "Rgs", "%Red."});
  table.rule();

  std::size_t row_index = 0;
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming opt = minimum_period_retiming(g);
    const LoopProgram original = original_program(g, kN);
    const LoopProgram expanded = retimed_unfolded_program(g, opt.retiming, kFactor, kN);
    const LoopProgram reduced = retimed_unfolded_csr_program(g, opt.retiming, kFactor, kN);

    for (const LoopProgram* p : {&expanded, &reduced}) {
      const auto diffs = compare_programs(original, *p, array_names(g));
      if (!diffs.empty()) {
        std::cerr << "program diverges for " << info.name << ": " << diffs.front() << '\n';
        return 1;
      }
    }

    const std::int64_t paper_formula = paper_retimed_unfolded_size(
        original_size(g), opt.retiming.max_value(), kFactor, kN);
    const PaperRow& paper = kPaper[row_index++];
    table.row({info.name,
               std::to_string(expanded.code_size()) + " (" + std::to_string(paper.ru) + ")",
               std::to_string(paper_formula),
               std::to_string(reduced.code_size()) + " (" + std::to_string(paper.cr) + ")",
               std::to_string(reduced.conditional_registers().size()) + " (" +
                   std::to_string(paper.rgs) + ")",
               bench::pct(expanded.code_size(), reduced.code_size())});
  }
  table.rule();
  std::cout << "\nR-U = retimed then unfolded (expanded: prologue + unfolded body +"
               " remainder/epilogue);\npaper-f. = the Theorem 4.5 formula"
               " (M_r + f + n mod f)·L;\nCR = conditional-register reduction"
               " (f·L + |N_r|·f + |N_r|, Theorem 4.7).\n";
  return 0;
}
