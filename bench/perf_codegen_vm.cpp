// Performance microbenchmarks for code generation, unfolding, scheduling,
// VM execution throughput and the compiled-kernel native engine.

#include <benchmark/benchmark.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/unfolded.hpp"
#include "driver/config.hpp"
#include "loopir/pipeline.hpp"
#include "native/compile.hpp"
#include "native/engine.hpp"
#include "retiming/opt.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/rotation.hpp"
#include "unfolding/unfold.hpp"
#include "vm/machine.hpp"

namespace {

using namespace csr;

void BM_Unfold(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::elliptic_filter();
  const int f = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(unfold(g, f));
  }
}
BENCHMARK(BM_Unfold)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_GenerateRetimedCsr(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::elliptic_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  for (auto _ : state) {
    benchmark::DoNotOptimize(retimed_csr_program(g, r, 1000));
  }
}
BENCHMARK(BM_GenerateRetimedCsr);

void BM_GenerateRetimedUnfoldedCsr(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::elliptic_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const int f = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(retimed_unfolded_csr_program(g, r, f, 1000));
  }
}
BENCHMARK(BM_GenerateRetimedUnfoldedCsr)->Arg(2)->Arg(4)->Arg(8);

void BM_VmExecuteOriginal(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const std::int64_t n = state.range(0);
  const LoopProgram p = original_program(g, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_program(p));
  }
  state.SetItemsProcessed(state.iterations() * n * static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_VmExecuteOriginal)->Arg(100)->Arg(1000);

void BM_VmExecuteCsr(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::int64_t n = state.range(0);
  const LoopProgram p = retimed_csr_program(g, r, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_program(p));
  }
  state.SetItemsProcessed(state.iterations() * n * static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_VmExecuteCsr)->Arg(100)->Arg(1000);

// Before/after pair for the VM fast path: the same CSR program interpreted
// by the old map-backed reference engine and by the interned flat-storage
// engine. The items/s ratio is the fast path's speedup.
void BM_VmExecuteCsrReference(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::int64_t n = state.range(0);
  const LoopProgram p = retimed_csr_program(g, r, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_program(p, ExecMode::kReference));
  }
  state.SetItemsProcessed(state.iterations() * n * static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_VmExecuteCsrReference)->Arg(1000)->Arg(10000);

void BM_VmExecuteCsrFast(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::int64_t n = state.range(0);
  const LoopProgram p = retimed_csr_program(g, r, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_program(p, ExecMode::kFast));
  }
  state.SetItemsProcessed(state.iterations() * n * static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_VmExecuteCsrFast)->Arg(1000)->Arg(10000);

// Native-engine counterpart of BM_VmExecuteCsrFast: the same CSR program
// compiled to a shared object and run in-process. The compile is warmed
// (and content-cached) before the timing loop, so the steady-state ratio
// against BM_VmExecuteCsrFast is the native engine's execution speedup.
void BM_NativeExecuteCsr(benchmark::State& state) {
  if (!native::native_available()) {
    state.SkipWithError("no host C compiler available");
    return;
  }
  const DataFlowGraph g = benchmarks::lattice_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::int64_t n = state.range(0);
  const LoopProgram p = retimed_csr_program(g, r, n);
  if (!native::run_native(p).ok()) {  // warm the compile cache
    state.SkipWithError("native compile failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(native::run_native(p));
  }
  state.SetItemsProcessed(state.iterations() * n * static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_NativeExecuteCsr)->Arg(1000)->Arg(10000);

// Steady-state cost of a cache-hit compile: hash the emitted source, find
// the shared object on disk, dlopen-or-reuse. This is the per-cell overhead
// a warm native sweep pays on top of kernel execution.
void BM_NativeCompileCached(benchmark::State& state) {
  if (!native::native_available()) {
    state.SkipWithError("no host C compiler available");
    return;
  }
  const DataFlowGraph g = benchmarks::lattice_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const LoopProgram p = retimed_csr_program(g, r, 100);
  CEmitterOptions emit;
  emit.function_name = "csr_kernel";
  emit.semantics = CEmitterOptions::Semantics::kExact;
  const std::string source = to_c_source(p, emit);
  if (!native::compile_shared_object(source).ok) {  // warm the cache
    state.SkipWithError("native compile failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(native::compile_shared_object(source));
  }
}
BENCHMARK(BM_NativeCompileCached);

// Cost of the fixpoint peephole pipeline itself, on the program shape where
// every pass fires (guard drops, decrement coalescing, dce). This is the
// per-cell overhead every sweep evaluation now pays.
void BM_OptimizePipeline(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const int f = static_cast<int>(state.range(0));
  const LoopProgram p = unfolded_csr_program(g, f, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_pipeline(p));
  }
}
BENCHMARK(BM_OptimizePipeline)->Arg(2)->Arg(3)->Arg(4);

// Before/after pair for the optimizer's throughput claim: the same
// unfolded-CSR loop interpreted by the VM as generated and after the
// pipeline stripped its redundant guards. The items/s ratio is the measured
// execution payoff of the size reduction.
void BM_VmExecuteUnfoldedCsrUnoptimized(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const std::int64_t n = state.range(0);
  const LoopProgram p = unfolded_csr_program(g, 3, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_program(p));
  }
  state.SetItemsProcessed(state.iterations() * n * static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_VmExecuteUnfoldedCsrUnoptimized)->Arg(1000)->Arg(10000);

void BM_VmExecuteUnfoldedCsrOptimized(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const std::int64_t n = state.range(0);
  const LoopProgram p = optimize_pipeline(unfolded_csr_program(g, 3, n)).program;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_program(p));
  }
  state.SetItemsProcessed(state.iterations() * n * static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_VmExecuteUnfoldedCsrOptimized)->Arg(1000)->Arg(10000);

// Native counterpart: the optimized program compiled through the C emitter,
// so the smaller kernel's throughput is measured on real hardware too.
void BM_NativeExecuteUnfoldedCsrOptimized(benchmark::State& state) {
  if (!native::native_available()) {
    state.SkipWithError("no host C compiler available");
    return;
  }
  const DataFlowGraph g = benchmarks::lattice_filter();
  const std::int64_t n = state.range(0);
  const LoopProgram p = optimize_pipeline(unfolded_csr_program(g, 3, n)).program;
  if (!native::run_native(p).ok()) {  // warm the compile cache
    state.SkipWithError("native compile failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(native::run_native(p));
  }
  state.SetItemsProcessed(state.iterations() * n * static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_NativeExecuteUnfoldedCsrOptimized)->Arg(1000)->Arg(10000);

// Thread scaling of the sweep driver over the full six-benchmark grid
// (verification on — the dominant cost is VM execution per cell).
void BM_Sweep(benchmark::State& state) {
  std::vector<std::string> names;
  for (const auto& info : benchmarks::table_benchmarks()) {
    names.push_back(info.name);
  }
  const driver::SweepConfig config = driver::SweepConfig()
                                         .benchmarks(names)
                                         .threads(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver::run_sweep(config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.cells().size()));
}
BENCHMARK(BM_Sweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_ListSchedule(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::elliptic_filter();
  const ResourceModel model = ResourceModel::adders_and_multipliers(2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule(g, model));
  }
}
BENCHMARK(BM_ListSchedule);

void BM_RotationSchedule(benchmark::State& state) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const ResourceModel model = ResourceModel::adders_and_multipliers(2, 2);
  const int rotations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rotation_schedule(g, model, rotations));
  }
}
BENCHMARK(BM_RotationSchedule)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
