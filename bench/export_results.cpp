// Machine-readable export of the headline experiments, now driven by the
// fault-tolerant sweep engine: evaluates the full (benchmark × transform ×
// factor) grid on the work-stealing scheduler and writes csr_results.csv
// plus BENCH_sweep.json. Exports are aggregated in grid order, so the files
// are byte-identical for any thread count, steal order or journal warmth.
//
// The JSON additionally carries a VM-vs-native throughput section: the six
// table benchmarks at n = 10000 executed on both the VM fast path and the
// compiled-kernel native engine (docs/ENGINES.md), with per-cell wall time
// and scheduler/cache metrics (include_timing — these rows are measurements,
// not golden data). On hosts without a working C compiler the native rows
// fall back to VM verification with the toolchain diagnostic preserved.
//
// Usage: export_results [csv_path] [json_path] [threads] [journal_path]
//   csv_path      default csr_results.csv
//   json_path     default BENCH_sweep.json
//   threads       worker threads; 0 = one per hardware thread (default 0)
//   journal_path  persistent result cache; re-runs replay completed cells
//                 and execute only the delta (default: no journal)

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "driver/export.hpp"
#include "driver/sweep.hpp"

namespace {

void print_stats(const char* label, const csr::driver::SweepStats& stats) {
  std::cout << label << ": " << stats.total_cells << " cells, "
            << stats.executed << " executed, " << stats.cache_hits
            << " journal hits, " << stats.fallbacks << " VM fallbacks, "
            << stats.retries << " retries, " << stats.steal_ops << " steals";
  if (stats.journal_dropped > 0) {
    std::cout << ", " << stats.journal_dropped << " corrupt records dropped";
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csr;
  const std::string csv_path = argc > 1 ? argv[1] : "csr_results.csv";
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_sweep.json";

  driver::SweepGrid grid;
  for (const auto& info : benchmarks::table_benchmarks()) {
    grid.benchmarks.push_back(info.name);
  }
  driver::SweepOptions options;
  options.threads = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 0;
  if (argc > 4) options.journal_path = argv[4];

  driver::SweepStats stats;
  const std::vector<driver::SweepResult> results =
      driver::run_sweep(grid, options, &stats);
  print_stats("sweep", stats);

  // VM-vs-native throughput grid: same benchmarks, large trip count, the
  // boundary transforms of the code-size story (original and retimed CSR).
  // Deliberately unjournaled — these rows are wall-clock measurements.
  driver::SweepGrid perf_grid = grid;
  perf_grid.trip_counts = {10000};
  perf_grid.exec_engines = {driver::ExecEngine::kVm, driver::ExecEngine::kNative};
  perf_grid.transforms = {driver::Transform::kOriginal,
                          driver::Transform::kRetimedCsr};
  perf_grid.factors = {};
  driver::SweepOptions perf_options = options;
  perf_options.journal_path.clear();
  driver::SweepStats perf_stats;
  const std::vector<driver::SweepResult> perf =
      driver::run_sweep(perf_grid, perf_options, &perf_stats);
  print_stats("throughput", perf_stats);

  std::ofstream csv(csv_path);
  if (!csv) {
    std::cerr << "cannot open " << csv_path << '\n';
    return 1;
  }
  csv << driver::to_csv(results);

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "cannot open " << json_path << '\n';
    return 1;
  }
  json << "{\n\"sweep\": " << driver::to_json(results)
       << ",\n\"engine_throughput\": "
       << driver::to_json(perf, driver::JsonOptions{/*include_timing=*/true})
       << "}\n";

  std::cout << "wrote " << csv_path << " and " << json_path << '\n';
  return 0;
}
