// Machine-readable export of the headline experiments: writes
// csr_results.csv (current directory, or argv[1]) with one row per
// (benchmark, transformation, factor) containing every measured quantity —
// for plotting and regression-tracking pipelines.

#include <fstream>
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded_retimed.hpp"
#include "codesize/model.hpp"
#include "codesize/storage.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "retiming/opt.hpp"
#include "unfolding/unfold.hpp"
#include "vm/equivalence.hpp"

int main(int argc, char** argv) {
  using namespace csr;
  const std::string path = argc > 1 ? argv[1] : "csr_results.csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  const std::int64_t n = 101;
  out << "benchmark,transform,factor,n,iteration_bound,period,depth,registers,"
         "size,verified\n";

  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const auto bound = iteration_bound(g);
    const OptimalRetiming opt = minimum_period_retiming(g);
    const LoopProgram reference = original_program(g, n);
    const auto arrays = array_names(g);

    auto verified = [&](const LoopProgram& p) {
      return compare_programs(reference, p, arrays).empty() ? "yes" : "NO";
    };
    auto emit = [&](const std::string& transform, int factor, const Rational& period,
                    int depth, std::int64_t regs, const LoopProgram& p) {
      out << info.name << ',' << transform << ',' << factor << ',' << n << ','
          << bound->to_string() << ',' << period.to_string() << ',' << depth << ','
          << regs << ',' << p.code_size() << ',' << verified(p) << '\n';
    };

    emit("original", 1, Rational(cycle_period(g)), 0, 0, reference);
    emit("retimed", 1, Rational(opt.period), opt.retiming.max_value(),
         registers_required(opt.retiming), retimed_program(g, opt.retiming, n));
    emit("retimed_csr", 1, Rational(opt.period), opt.retiming.max_value(),
         registers_required(opt.retiming), retimed_csr_program(g, opt.retiming, n));
    for (const int f : {2, 3, 4}) {
      const DataFlowGraph retimed = apply_retiming(g, opt.retiming);
      const Rational period(cycle_period(unfold(retimed, f)), f);
      emit("retimed_unfolded", f, period, opt.retiming.max_value(),
           registers_required(opt.retiming),
           retimed_unfolded_program(g, opt.retiming, f, n));
      emit("retimed_unfolded_csr", f, period, opt.retiming.max_value(),
           registers_required(opt.retiming),
           retimed_unfolded_csr_program(g, opt.retiming, f, n));
      const Unfolding u(g, f);
      const OptimalRetiming uopt = minimum_period_retiming(u.graph());
      if (n / f > uopt.retiming.max_value()) {
        const Rational uperiod(uopt.period, f);
        emit("unfolded_retimed", f, uperiod, uopt.retiming.max_value(),
             registers_required_unfolded(u, uopt.retiming),
             unfolded_retimed_program(u, uopt.retiming, n));
        emit("unfolded_retimed_csr", f, uperiod, uopt.retiming.max_value(),
             registers_required_unfolded(u, uopt.retiming),
             unfolded_retimed_csr_program(u, uopt.retiming, n));
      }
    }
  }
  out.close();
  std::cout << "wrote " << path << '\n';
  return 0;
}
