// Machine-readable export of the headline experiments, now driven by the
// fault-tolerant sweep engine: evaluates the full (benchmark × transform ×
// factor) grid on the work-stealing scheduler and writes csr_results.csv
// plus BENCH_sweep.json. Exports are aggregated in grid order, so the files
// are byte-identical for any thread count, steal order or journal warmth —
// and for tracing on or off.
//
// The JSON additionally carries a VM-vs-native throughput section: the six
// table benchmarks at n = 10000 executed on both the VM fast path and the
// compiled-kernel native engine (docs/ENGINES.md), with per-cell wall time
// and scheduler/cache metrics (include_timing — these rows are measurements,
// not golden data). On hosts without a working C compiler the native rows
// fall back to VM verification with the toolchain diagnostic preserved.
//
// Usage: export_results [csv_path] [json_path] [threads] [journal_path]
//                       [--trace-out trace.json] [--metrics-out metrics.txt]
//   csv_path       default csr_results.csv
//   json_path      default BENCH_sweep.json
//   threads        worker threads; 0 = one per hardware thread (default 0)
//   journal_path   persistent result cache; re-runs replay completed cells
//                  and execute only the delta (default: no journal)
//   --trace-out    enable span tracing, write Chrome trace_event JSON there
//                  (open in chrome://tracing or https://ui.perfetto.dev)
//   --metrics-out  write the metric registry there after the run; the
//                  extension picks the format: .json → JSON, anything
//                  else → Prometheus text exposition
//
// docs/OBSERVABILITY.md documents the span taxonomy and metric catalogue.

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/csr.hpp"
#include "codegen/retimed.hpp"
#include "native/batch.hpp"
#include "native/engine.hpp"
#include "retiming/opt.hpp"

namespace {

/// Batched-vs-single native throughput over the six table benchmarks:
/// `width` ragged lanes of each benchmark's retimed-CSR form, executed once
/// per lane through run_native and once as a single run_native_batch call.
/// Cells/sec is end-to-end (emit + compile + run) against a cold compile
/// cache — exactly the cost the sweep driver pays per cell — which is what
/// batching amortizes W:1. Returns the JSON section; rows are wall-clock
/// measurements, not golden data.
std::string measure_batch_throughput(std::size_t width, std::int64_t base_n) {
  using clock = std::chrono::steady_clock;
  const std::filesystem::path cache =
      std::filesystem::temp_directory_path() /
      ("csr-bench-batch-cache-" + std::to_string(::getpid()));
  std::filesystem::create_directories(cache);
  csr::native::CompileOptions compile;
  compile.cache_dir = cache.string();

  std::ostringstream json;
  json << "{\n  \"batch_width\": " << width << ",\n  \"trip_count_base\": "
       << base_n << ",\n  \"benchmarks\": [";
  double log_speedup_sum = 0;
  std::size_t measured = 0;
  bool first = true;
  for (const auto& info : csr::benchmarks::table_benchmarks()) {
    const csr::DataFlowGraph g = info.factory();
    const csr::Retiming r = csr::minimum_period_retiming(g).retiming;
    std::vector<csr::LoopProgram> lanes;
    for (std::size_t i = 0; i < width; ++i) {
      // Ragged trip counts, each distinct, so every single-cell kernel is
      // its own compile — as in a real sweep over a trip-count axis.
      lanes.push_back(csr::retimed_csr_program(
          g, r, base_n + static_cast<std::int64_t>(i) * 37));
    }

    const auto single_start = clock::now();
    bool ok = true;
    for (const csr::LoopProgram& p : lanes) {
      ok = ok && csr::native::run_native(p, compile).ok();
    }
    const double single_seconds =
        std::chrono::duration<double>(clock::now() - single_start).count();

    const auto batch_start = clock::now();
    ok = ok && csr::native::run_native_batch(lanes, compile).ok();
    const double batch_seconds =
        std::chrono::duration<double>(clock::now() - batch_start).count();

    if (!ok || single_seconds <= 0 || batch_seconds <= 0) continue;
    const double cells = static_cast<double>(width);
    const double speedup = single_seconds / batch_seconds;
    log_speedup_sum += std::log(speedup);
    ++measured;
    json << (first ? "" : ",") << "\n    {\"benchmark\": \"" << info.name
         << "\", \"single_cells_per_sec\": " << cells / single_seconds
         << ", \"batch_cells_per_sec\": " << cells / batch_seconds
         << ", \"speedup\": " << speedup << "}";
    first = false;
  }
  json << "\n  ],\n  \"geomean_speedup\": "
       << (measured > 0 ? std::exp(log_speedup_sum / static_cast<double>(measured))
                        : 0.0)
       << "\n}";
  std::filesystem::remove_all(cache);
  return json.str();
}

void print_stats(const char* label, const csr::driver::SweepStats& stats) {
  std::cout << label << ": " << stats.total_cells << " cells, "
            << stats.executed << " executed, " << stats.cache_hits
            << " journal hits, " << stats.fallbacks << " VM fallbacks, "
            << stats.retries << " retries, " << stats.steal_ops << " steals";
  if (stats.journal_dropped > 0) {
    std::cout << ", " << stats.journal_dropped << " corrupt records dropped";
  }
  std::cout << '\n';
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return false;
  }
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csr;

  std::string trace_path;
  std::string metrics_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace-out" || arg == "--metrics-out") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a path\n";
        return 2;
      }
      (arg == "--trace-out" ? trace_path : metrics_path) = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  const std::string csv_path = !positional.empty() ? positional[0] : "csr_results.csv";
  const std::string json_path = positional.size() > 1 ? positional[1] : "BENCH_sweep.json";

  if (!trace_path.empty()) observe::Tracer::global().set_enabled(true);

  std::vector<std::string> names;
  for (const auto& info : benchmarks::table_benchmarks()) names.push_back(info.name);
  // The nested (2-D) family rides the same grid; these names sweep the
  // shapes axis instead of trip_counts (docs/DRIVER.md).
  for (const auto& info : mdfg::md_benchmarks()) names.push_back(info.name);

  driver::SweepConfig config = driver::SweepConfig().benchmarks(names).threads(
      positional.size() > 2
          ? static_cast<unsigned>(std::atoi(positional[2].c_str()))
          : 0);
  if (positional.size() > 3) config.journal(positional[3]);

  const driver::SweepRun sweep = driver::run_sweep(config);
  print_stats("sweep", sweep.stats);

  // VM-vs-native throughput grid: same benchmarks, large trip count, the
  // boundary transforms of the code-size story (original and retimed CSR).
  // Deliberately unjournaled — these rows are wall-clock measurements.
  const driver::SweepRun perf = driver::run_sweep(
      driver::SweepConfig(config)
          .journal("")
          .trip_counts({10000})
          .shapes({driver::LoopShape{100, 100}})
          .exec_engines({driver::ExecEngine::kVm, driver::ExecEngine::kNative})
          .transforms({driver::Transform::kOriginal, driver::Transform::kRetimedCsr})
          .factors({}));
  print_stats("throughput", perf.stats);

  if (!write_file(csv_path, driver::to_csv(sweep.results))) return 1;

  // Batched native execution: lanes/sec through one SoA kernel vs one
  // kernel per cell (docs/ENGINES.md, batch execution model). Skipped —
  // empty section — when no host compiler works.
  const std::string batch_throughput =
      native::native_available()
          ? measure_batch_throughput(/*width=*/16, /*base_n=*/10000)
          : "{}";

  driver::ExportOptions timing;
  timing.include_timing = true;
  const std::string json = "{\n\"sweep\": " + driver::to_json(sweep.results) +
                           ",\n\"engine_throughput\": " +
                           driver::to_json(perf.results, timing) +
                           ",\n\"batch_throughput\": " + batch_throughput + "}\n";
  if (!write_file(json_path, json)) return 1;
  std::cout << "wrote " << csv_path << " and " << json_path << '\n';

  if (!trace_path.empty()) {
    if (!write_file(trace_path, observe::Tracer::global().to_chrome_json())) return 1;
    std::cout << "wrote " << trace_path << " ("
              << observe::Tracer::global().event_count() << " spans)\n";
  }
  if (!metrics_path.empty()) {
    auto& registry = observe::MetricsRegistry::global();
    const std::string text =
        ends_with(metrics_path, ".json") ? registry.to_json() : registry.to_prometheus();
    if (!write_file(metrics_path, text)) return 1;
    std::cout << "wrote " << metrics_path << " (" << registry.size()
              << " instruments)\n";
  }
  return 0;
}
