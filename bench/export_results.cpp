// Machine-readable export of the headline experiments, now driven by the
// parallel sweep engine: evaluates the full (benchmark × transform × factor)
// grid on a thread pool and writes csr_results.csv plus BENCH_sweep.json.
// Exports are aggregated in grid order, so the files are byte-identical for
// any thread count.
//
// The JSON additionally carries a VM-vs-native throughput section: the six
// table benchmarks at n = 10000 executed on both the VM fast path and the
// compiled-kernel native engine (docs/ENGINES.md), with per-cell wall time
// (include_timing — these rows are measurements, not golden data). On hosts
// without a working C compiler the native rows export as skipped cells.
//
// Usage: export_results [csv_path] [json_path] [threads]
//   csv_path   default csr_results.csv
//   json_path  default BENCH_sweep.json
//   threads    worker threads; 0 = one per hardware thread (default 0)

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "driver/export.hpp"
#include "driver/sweep.hpp"

int main(int argc, char** argv) {
  using namespace csr;
  const std::string csv_path = argc > 1 ? argv[1] : "csr_results.csv";
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_sweep.json";

  driver::SweepGrid grid;
  for (const auto& info : benchmarks::table_benchmarks()) {
    grid.benchmarks.push_back(info.name);
  }
  driver::SweepOptions options;
  options.threads = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 0;

  const std::vector<driver::SweepResult> results = driver::run_sweep(grid, options);

  // VM-vs-native throughput grid: same benchmarks, large trip count, the
  // boundary transforms of the code-size story (original and retimed CSR).
  driver::SweepGrid perf_grid = grid;
  perf_grid.trip_counts = {10000};
  perf_grid.exec_engines = {driver::ExecEngine::kVm, driver::ExecEngine::kNative};
  perf_grid.transforms = {driver::Transform::kOriginal,
                          driver::Transform::kRetimedCsr};
  perf_grid.factors = {};
  const std::vector<driver::SweepResult> perf =
      driver::run_sweep(perf_grid, options);

  std::ofstream csv(csv_path);
  if (!csv) {
    std::cerr << "cannot open " << csv_path << '\n';
    return 1;
  }
  csv << driver::to_csv(results);

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "cannot open " << json_path << '\n';
    return 1;
  }
  json << "{\n\"sweep\": " << driver::to_json(results)
       << ",\n\"engine_throughput\": "
       << driver::to_json(perf, driver::JsonOptions{/*include_timing=*/true})
       << "}\n";

  std::cout << "wrote " << csv_path << " and " << json_path << '\n';
  return 0;
}
