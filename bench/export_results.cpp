// Machine-readable export of the headline experiments, now driven by the
// parallel sweep engine: evaluates the full (benchmark × transform × factor)
// grid on a thread pool and writes csr_results.csv plus BENCH_sweep.json.
// Exports are aggregated in grid order, so the files are byte-identical for
// any thread count.
//
// Usage: export_results [csv_path] [json_path] [threads]
//   csv_path   default csr_results.csv
//   json_path  default BENCH_sweep.json
//   threads    worker threads; 0 = one per hardware thread (default 0)

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "driver/export.hpp"
#include "driver/sweep.hpp"

int main(int argc, char** argv) {
  using namespace csr;
  const std::string csv_path = argc > 1 ? argv[1] : "csr_results.csv";
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_sweep.json";

  driver::SweepGrid grid;
  for (const auto& info : benchmarks::table_benchmarks()) {
    grid.benchmarks.push_back(info.name);
  }
  driver::SweepOptions options;
  options.threads = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 0;

  const std::vector<driver::SweepResult> results = driver::run_sweep(grid, options);

  std::ofstream csv(csv_path);
  if (!csv) {
    std::cerr << "cannot open " << csv_path << '\n';
    return 1;
  }
  csv << driver::to_csv(results);

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "cannot open " << json_path << '\n';
    return 1;
  }
  json << driver::to_json(results);

  std::cout << "wrote " << csv_path << " and " << json_path << '\n';
  return 0;
}
