// Resource-constrained software pipelining on a VLIW-style machine: list
// scheduling under typed functional units, rotation scheduling (Chao–Sha) to
// pipeline the loop, and CSR code generation from the rotation's retiming —
// the end-to-end flow a DSP compiler would run on a TMS320C6000-class
// target.
//
// Usage: vliw_pipeline [adders] [multipliers]   (defaults: 2 1)

#include <cstdlib>
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/vliw.hpp"
#include "codegen/statements.hpp"
#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "loopir/printer.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/rotation.hpp"
#include "vm/equivalence.hpp"

int main(int argc, char** argv) {
  using namespace csr;
  const int adders = argc > 1 ? std::atoi(argv[1]) : 2;
  const int multipliers = argc > 2 ? std::atoi(argv[2]) : 1;

  const DataFlowGraph g = benchmarks::differential_equation_solver();
  const ResourceModel machine = ResourceModel::adders_and_multipliers(adders, multipliers);
  std::cout << "differential-equation solver on a VLIW machine with " << adders
            << " adder(s) and " << multipliers << " multiplier(s)\n"
            << "iteration bound (resource-free): "
            << iteration_bound(g)->to_string() << "\n\n";

  const StaticSchedule before = list_schedule(g, machine);
  std::cout << "--- list schedule, no pipelining (length " << before.length(g)
            << ") ---\n"
            << format_schedule(g, before) << '\n';

  const RotationResult rotated = rotation_schedule(g, machine);
  std::cout << "--- after rotation scheduling (" << rotated.rotations
            << " rotations, length " << rotated.period << ") ---\n"
            << format_schedule(rotated.retimed_graph, rotated.schedule) << '\n';

  std::cout << "accumulated retiming:";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (rotated.retiming[v] != 0) {
      std::cout << ' ' << g.node(v).name << ":" << rotated.retiming[v];
    }
  }
  std::cout << "\n\n";

  // The rotation's retiming is the software pipeline; generate loop code
  // and remove the prologue/epilogue it would cost.
  const std::int64_t n = 100;
  const LoopProgram expanded = retimed_program(g, rotated.retiming, n);
  const LoopProgram reduced = retimed_csr_program(g, rotated.retiming, n);
  std::cout << "code size: expanded " << expanded.code_size() << ", with CSR "
            << reduced.code_size() << " (" << registers_required(rotated.retiming)
            << " conditional registers)\n";

  const auto diffs =
      compare_programs(original_program(g, n), reduced, array_names(g));
  if (!diffs.empty()) {
    std::cerr << "mismatch: " << diffs.front() << '\n';
    return 1;
  }
  std::cout << "VM check: pipelined CSR loop matches the original semantics\n\n";
  std::cout << "--- final loop code ---\n" << to_source(reduced) << '\n';

  // Pack the kernel into long instruction words: statements by control
  // step, decrements into free scalar slots.
  const VliwKernel kernel = pack_vliw_kernel(g, rotated.retiming, n, machine);
  std::cout << "--- VLIW kernel (" << kernel.words_per_trip << " words/trip, "
            << static_cast<int>(kernel.utilization * 100) << "% slot utilization) ---\n";
  for (std::size_t w = 0; w < kernel.words.size(); ++w) {
    std::cout << "word " << w << ":";
    for (const Instruction& instr : kernel.words[w].statements) {
      std::cout << "  [" << format_instruction(instr, 0, false) << ']';
    }
    for (const Instruction& instr : kernel.words[w].register_ops) {
      std::cout << "  [" << format_instruction(instr, 0, false) << ']';
    }
    std::cout << '\n';
  }
  return 0;
}
