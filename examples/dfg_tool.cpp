// A small command-line tool over the textual DFG format: inspect a graph,
// analyse it, or emit Graphviz DOT. Demonstrates the serialization layer and
// makes the library's analyses usable from shell scripts.
//
// Usage:
//   dfg_tool demo                 # print a sample .dfg file to adapt
//   dfg_tool analyze <file.dfg>   # bound, cycle period, optimal retiming
//   dfg_tool dot <file.dfg>       # Graphviz on stdout
//   dfg_tool csr <file.dfg> <n>   # print the pipelined CSR loop code
//   dfg_tool trace <file.dfg> <n> # per-trip execution table of the CSR loop
//   dfg_tool unfold <file.dfg> <f># print the unfolded graph
//   dfg_tool tradeoff <file.dfg>  # performance / code-size sweep
//
// With --mdfg anywhere on the command line, demo/analyze/dot operate on the
// 2-D vector-delay format instead (data/*.mdfg, docs/THEORY.md §7):
//   dfg_tool --mdfg demo            # print a sample .mdfg file
//   dfg_tool --mdfg analyze <file>  # legality, MD retiming, min_cols, sizes
//   dfg_tool --mdfg dot <file>      # Graphviz with (row,col) delay labels

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "codegen/original.hpp"
#include "codesize/tradeoff.hpp"
#include "codegen/retimed.hpp"
#include "codegen/statements.hpp"
#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/dot.hpp"
#include "dfg/io.hpp"
#include "dfg/iteration_bound.hpp"
#include "codesize/md_model.hpp"
#include "loopir/printer.hpp"
#include "mdfg/dot.hpp"
#include "mdfg/graph.hpp"
#include "mdfg/io.hpp"
#include "retiming/md_retiming.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"
#include "support/text.hpp"
#include "unfolding/unfold.hpp"
#include "vm/equivalence.hpp"
#include "vm/trace.hpp"

namespace {

using namespace csr;

constexpr const char* kDemo =
    "# second-order IIR section\n"
    "dfg demo\n"
    "node Mul1 1\n"
    "node Add1 1\n"
    "node Mul2 1\n"
    "node Add2 1\n"
    "edge Mul1 Add1 0\n"
    "edge Add1 Mul2 0\n"
    "edge Mul2 Add2 0\n"
    "edge Add2 Mul1 2\n";

DataFlowGraph load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("cannot open '" + path + "'");
  }
  return read_text(in);
}

int analyze(const DataFlowGraph& g) {
  std::cout << "graph '" << g.name() << "': " << g.node_count() << " nodes, "
            << g.edge_count() << " edges, " << g.total_delay() << " delays\n";
  const auto problems = g.validate();
  for (const auto& p : problems) std::cout << "problem: " << p << '\n';
  if (!problems.empty()) return 1;
  if (const auto bound = iteration_bound(g)) {
    std::cout << "iteration bound: " << bound->to_string() << '\n';
  } else {
    std::cout << "iteration bound: none (acyclic)\n";
  }
  std::cout << "cycle period (unretimed): " << cycle_period(g) << '\n';
  const OptimalRetiming opt = minimum_period_retiming(g);
  std::cout << "minimum cycle period by retiming: " << opt.period
            << " (depth " << opt.retiming.max_value() << ", registers for CSR "
            << registers_required(opt.retiming) << ")\n";
  std::cout << "retiming:";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::cout << ' ' << g.node(v).name << ":" << opt.retiming[v];
  }
  std::cout << '\n';
  return 0;
}

int csr_code(const DataFlowGraph& g, std::int64_t n) {
  const OptimalRetiming opt = minimum_period_retiming(g);
  if (n <= opt.retiming.max_value()) {
    std::cerr << "n must exceed the pipeline depth " << opt.retiming.max_value()
              << '\n';
    return 1;
  }
  const LoopProgram reduced = retimed_csr_program(g, opt.retiming, n);
  const auto diffs =
      compare_programs(original_program(g, n), reduced, array_names(g));
  if (!diffs.empty()) {
    std::cerr << "internal error: CSR code diverges: " << diffs.front() << '\n';
    return 1;
  }
  std::cout << to_source(reduced);
  return 0;
}

int trace_csr(const DataFlowGraph& g, std::int64_t n) {
  const OptimalRetiming opt = minimum_period_retiming(g);
  if (n <= opt.retiming.max_value()) {
    std::cerr << "n must exceed the pipeline depth " << opt.retiming.max_value()
              << '\n';
    return 1;
  }
  const LoopProgram reduced = retimed_csr_program(g, opt.retiming, n);
  std::cout << format_trace(trace_program(reduced));
  return 0;
}

int unfold_graph(const DataFlowGraph& g, int factor) {
  if (factor < 1) {
    std::cerr << "factor must be >= 1\n";
    return 1;
  }
  write_text(std::cout, unfold(g, factor));
  return 0;
}

constexpr const char* kMdDemo =
    "# 2-node wavefront: the column edge pipelines, the row edge carries\n"
    "mdfg demo2d\n"
    "node A 1\n"
    "node B 1\n"
    "edge A B 0 1\n"
    "edge B A 1 -1\n";

MdDataFlowGraph load_mdfg(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("cannot open '" + path + "'");
  }
  return read_md_text(in);
}

int analyze_mdfg(const MdDataFlowGraph& g) {
  std::cout << "mdfg '" << g.name() << "': " << g.node_count() << " nodes, "
            << g.edge_count() << " edges\n";
  const auto problems = g.validate();
  for (const auto& p : problems) std::cout << "problem: " << p << '\n';
  if (!problems.empty()) return 1;
  std::cout << "fully parallel as written: "
            << (fully_parallel(g) ? "yes" : "no") << '\n';
  std::cout << "full parallelism achievable by column retiming: "
            << (full_parallelism_achievable(g) ? "yes" : "no") << '\n';
  const MdOptimalRetiming opt = md_exact_optimal_retiming(g);
  std::cout << "minimum inner-loop period by MD retiming: " << opt.period
            << " (projection factor " << opt.projection << ", min_cols "
            << opt.min_cols << ")\n";
  std::cout << "retiming:";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::cout << ' ' << g.node(v).name << ":(" << opt.retiming[v].row << ","
              << opt.retiming[v].col << ")";
  }
  std::cout << '\n';
  std::cout << "code size: original " << md_original_size(g) << ", retimed "
            << predicted_md_retimed_size(g, opt.retiming) << ", CSR "
            << predicted_md_retimed_csr_size(g, opt.retiming) << " ("
            << md_registers_required(opt.retiming) << " registers)\n";
  return 0;
}

int tradeoff(const DataFlowGraph& g) {
  TradeoffOptions options;
  options.max_factor = 4;
  std::cout << pad_right("order", 15) << pad_left("f", 3) << pad_left("period", 9)
            << pad_left("regs", 6) << pad_left("CSR size", 10) << '\n';
  for (const auto& point : explore_tradeoffs(g, options)) {
    std::cout << pad_right(std::string(to_string(point.order)), 15)
              << pad_left(std::to_string(point.factor), 3)
              << pad_left(point.iteration_period.to_string(), 9)
              << pad_left(std::to_string(point.registers), 6)
              << pad_left(std::to_string(point.size_csr), 10) << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  bool mdfg_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--mdfg") {
      mdfg_mode = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  const std::string command = !args.empty() ? args[0] : "";
  if (mdfg_mode) {
    try {
      if (command == "demo") {
        std::cout << kMdDemo;
        return 0;
      }
      if (command == "analyze" && args.size() > 1) {
        return analyze_mdfg(load_mdfg(args[1]));
      }
      if (command == "dot" && args.size() > 1) {
        write_dot(std::cout, load_mdfg(args[1]));
        return 0;
      }
    } catch (const Error& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 1;
    }
    std::cerr << "usage: dfg_tool --mdfg demo | analyze <file> | dot <file>\n";
    return 2;
  }
  try {
    if (command == "demo") {
      std::cout << kDemo;
      return 0;
    }
    if (command == "analyze" && argc > 2) return analyze(load(argv[2]));
    if (command == "dot" && argc > 2) {
      write_dot(std::cout, load(argv[2]));
      return 0;
    }
    if (command == "csr" && argc > 3) return csr_code(load(argv[2]), std::atoll(argv[3]));
    if (command == "trace" && argc > 3) return trace_csr(load(argv[2]), std::atoll(argv[3]));
    if (command == "unfold" && argc > 3) return unfold_graph(load(argv[2]), std::atoi(argv[3]));
    if (command == "tradeoff" && argc > 2) return tradeoff(load(argv[2]));
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  std::cerr << "usage: dfg_tool demo | analyze <file> | dot <file> | csr <file> <n>\n"
               "       | trace <file> <n> | unfold <file> <f> | tradeoff <file>\n";
  return 2;
}
