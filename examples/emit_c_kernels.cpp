// Emits compilable C for a benchmark's loop in every form — original,
// software-pipelined + CSR, unfolded + CSR, and retimed+unfolded + CSR —
// into a directory, ready to drop into a DSP project or inspect side by
// side.
//
// Two emission modes (see docs/ENGINES.md):
//   numeric  double-typed arithmetic kernels for human use (default)
//   exact    the native engine's bit-exact hash semantics, with the
//            csr_* readback ABI — what src/native/ compiles and dlopens
//
// Usage: emit_c_kernels [benchmark] [n] [output_dir] [mode]
//        (defaults: iir 100 ./kernels numeric)

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>

#include "benchmarks/benchmarks.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/unfolded.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"

int main(int argc, char** argv) {
  using namespace csr;
  const std::map<std::string, DataFlowGraph (*)()> registry = {
      {"iir", benchmarks::iir_filter},
      {"diffeq", benchmarks::differential_equation_solver},
      {"allpole", benchmarks::allpole_filter},
      {"elliptic", benchmarks::elliptic_filter},
      {"lattice", benchmarks::lattice_filter},
      {"volterra", benchmarks::volterra_filter},
  };
  const std::string which = argc > 1 ? argv[1] : "iir";
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 100;
  const std::filesystem::path dir = argc > 3 ? argv[3] : "kernels";
  const std::string mode = argc > 4 ? argv[4] : "numeric";
  const auto it = registry.find(which);
  if (it == registry.end()) {
    std::cerr << "unknown benchmark '" << which << "'\n";
    return 2;
  }
  if (mode != "numeric" && mode != "exact") {
    std::cerr << "unknown mode '" << mode << "' (numeric|exact)\n";
    return 2;
  }

  try {
    const DataFlowGraph g = it->second();
    const OptimalRetiming opt = minimum_period_retiming(g);
    std::filesystem::create_directories(dir);

    const std::map<std::string, LoopProgram> kernels = {
        {"original", original_program(g, n)},
        {"pipelined", retimed_program(g, opt.retiming, n)},
        {"pipelined_csr", retimed_csr_program(g, opt.retiming, n)},
        {"unfolded", unfolded_program(g, 3, n)},
        {"unfolded_csr", unfolded_csr_program(g, 3, n)},
        {"pipelined_unfolded_csr", retimed_unfolded_csr_program(g, opt.retiming, 3, n)},
    };
    for (const auto& [name, program] : kernels) {
      CEmitterOptions options;
      options.function_name = which + "_" + name;
      if (mode == "exact") {
        options.semantics = CEmitterOptions::Semantics::kExact;
      }
      const std::filesystem::path path = dir / (which + "_" + name + ".c");
      std::ofstream(path) << to_c_source(program, options);
      std::cout << "wrote " << path.string() << "  (code size " << program.code_size()
                << ")\n";
    }
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
