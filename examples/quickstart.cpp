// Quickstart: the complete CSR workflow on a small loop.
//
//   1. Describe the loop as a data-flow graph.
//   2. Compute its iteration bound and retime it to the minimum cycle period
//      (software pipelining).
//   3. Generate the expanded pipelined code and the conditional-register
//      (CSR) code, compare their sizes.
//   4. Execute both in the VM and confirm they compute the same thing as the
//      original loop.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/statements.hpp"
#include "dfg/graph.hpp"
#include "dfg/iteration_bound.hpp"
#include "loopir/printer.hpp"
#include "retiming/opt.hpp"
#include "vm/equivalence.hpp"

int main() {
  using namespace csr;

  // The loop
  //   for i = 1 to n:
  //     A[i] = E[i-4] + 9
  //     B[i] = A[i] * 5
  //     C[i] = A[i] + B[i-2]
  //     D[i] = A[i] * C[i]
  //     E[i] = D[i] + 30
  // as a DFG: one node per statement, one edge per data dependence, edge
  // delay = dependence distance in iterations.
  DataFlowGraph g("quickstart");
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  const NodeId d = g.add_node("D");
  const NodeId e = g.add_node("E");
  g.add_edge(e, a, 4);
  g.add_edge(a, b, 0);
  g.add_edge(a, c, 0);
  g.add_edge(b, c, 2);
  g.add_edge(a, d, 0);
  g.add_edge(c, d, 0);
  g.add_edge(d, e, 0);

  // Analysis: how fast can this loop possibly run?
  const auto bound = iteration_bound(g);
  std::cout << "iteration bound: " << bound->to_string()
            << " time units per iteration\n";

  // Software pipelining: retime to the minimum achievable cycle period with
  // the shallowest pipeline (smallest prologue/epilogue).
  const OptimalRetiming opt = minimum_period_retiming(g);
  std::cout << "minimum cycle period after retiming: " << opt.period
            << " (pipeline depth M_r = " << opt.retiming.max_value() << ")\n\n";

  const std::int64_t n = 10;
  const LoopProgram original = original_program(g, n);
  const LoopProgram expanded = retimed_program(g, opt.retiming, n);
  const LoopProgram reduced = retimed_csr_program(g, opt.retiming, n);

  std::cout << "code sizes: original " << original.code_size() << ", pipelined "
            << expanded.code_size() << ", pipelined+CSR " << reduced.code_size()
            << " (" << reduced.conditional_registers().size()
            << " conditional registers)\n\n";

  std::cout << "--- pipelined code with prologue/epilogue ---\n"
            << to_source(expanded) << '\n';
  std::cout << "--- same loop after code size reduction ---\n"
            << to_source(reduced) << '\n';

  // Verification: run all three in the VM and diff the observable state.
  for (const auto* program : {&expanded, &reduced}) {
    const auto diffs = compare_programs(original, *program, array_names(g));
    if (!diffs.empty()) {
      std::cerr << "mismatch: " << diffs.front() << '\n';
      return 1;
    }
  }
  std::cout << "VM check: all three programs leave identical arrays for n = " << n
            << '\n';
  return 0;
}
