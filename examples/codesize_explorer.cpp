// Design-space exploration: performance versus code size under register and
// memory budgets — the use the paper's conclusion proposes for the CSR
// framework.
//
// Usage:  codesize_explorer [benchmark] [max_factor] [register_budget]
//                           [size_budget]
//   benchmark       one of: iir, diffeq, allpole, elliptic, lattice,
//                   volterra (default: lattice)
//   max_factor      unfolding factors to sweep (default 4)
//   register_budget conditional registers available (default 4)
//   size_budget     instruction budget for the loop code (default 150)

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "benchmarks/benchmarks.hpp"
#include "codesize/model.hpp"
#include "codesize/tradeoff.hpp"
#include "dfg/iteration_bound.hpp"
#include "retiming/opt.hpp"
#include "support/text.hpp"

namespace {

using namespace csr;

const std::map<std::string, DataFlowGraph (*)()>& registry() {
  static const std::map<std::string, DataFlowGraph (*)()> map = {
      {"iir", benchmarks::iir_filter},
      {"diffeq", benchmarks::differential_equation_solver},
      {"allpole", benchmarks::allpole_filter},
      {"elliptic", benchmarks::elliptic_filter},
      {"lattice", benchmarks::lattice_filter},
      {"volterra", benchmarks::volterra_filter},
  };
  return map;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "lattice";
  const auto it = registry().find(which);
  if (it == registry().end()) {
    std::cerr << "unknown benchmark '" << which << "'; choose one of:";
    for (const auto& [name, factory] : registry()) std::cerr << ' ' << name;
    std::cerr << '\n';
    return 2;
  }
  TradeoffOptions options;
  options.max_factor = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::int64_t register_budget = argc > 3 ? std::atoll(argv[3]) : 4;
  const std::int64_t size_budget = argc > 4 ? std::atoll(argv[4]) : 150;

  const DataFlowGraph g = it->second();
  const auto bound = iteration_bound(g);
  std::cout << "benchmark " << which << ": " << g.node_count()
            << " nodes, iteration bound " << bound->to_string() << "\n\n";

  const auto points = explore_tradeoffs(g, options);
  std::cout << pad_right("order", 15) << pad_left("f", 4) << pad_left("M_r", 5)
            << pad_left("period", 9) << pad_left("regs", 6) << pad_left("expanded", 10)
            << pad_left("CSR", 7) << '\n'
            << std::string(56, '-') << '\n';
  for (const auto& p : points) {
    std::cout << pad_right(std::string(to_string(p.order)), 15)
              << pad_left(std::to_string(p.factor), 4)
              << pad_left(std::to_string(p.depth), 5)
              << pad_left(p.iteration_period.to_string(), 9)
              << pad_left(std::to_string(p.registers), 6)
              << pad_left(std::to_string(p.size_expanded), 10)
              << pad_left(std::to_string(p.size_csr), 7) << '\n';
  }

  std::cout << "\nPareto frontier (iteration period vs CSR code size):\n";
  for (const auto& p : pareto_frontier(points)) {
    std::cout << "  period " << p.iteration_period.to_string() << "  size "
              << p.size_csr << "  (" << to_string(p.order) << ", f=" << p.factor
              << ")\n";
  }

  std::cout << "\nbudgets: " << register_budget << " conditional registers, "
            << size_budget << " instructions\n";
  if (const auto best = best_under_budget(points, register_budget, size_budget)) {
    std::cout << "best feasible point: iteration period "
              << best->iteration_period.to_string() << " at f=" << best->factor << " ("
              << to_string(best->order) << ", " << best->registers << " registers, "
              << best->size_csr << " instructions)\n";
    std::cout << "budget headroom: max unfolding factor by Section 4's formula = "
              << max_unfolding_factor(size_budget, original_size(g), best->depth)
              << '\n';
  } else {
    std::cout << "no explored configuration fits the budgets\n";
  }
  return 0;
}
