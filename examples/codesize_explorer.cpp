// Design-space exploration: performance versus code size under register and
// memory budgets — the use the paper's conclusion proposes for the CSR
// framework.
//
// The explored configurations are cells of the sweep driver's grid: every
// (order, f) point maps to an expanded + CSR transform pair, evaluated (and
// VM-verified) concurrently by run_sweep() — the work-stealing, journaled,
// retry-hardened execution path of docs/DRIVER.md — then folded back into
// tradeoff points for the Pareto/budget analysis.
//
// Usage:  codesize_explorer [benchmark] [max_factor] [register_budget]
//                           [size_budget] [engine] [journal]
//   benchmark       one of: iir, diffeq, allpole, elliptic, lattice,
//                   volterra (default: lattice)
//   max_factor      unfolding factors to sweep (default 4)
//   register_budget conditional registers available (default 4)
//   size_budget     instruction budget for the loop code (default 150)
//   engine          execution engine that verifies each point: vm, map or
//                   native (default vm; see docs/ENGINES.md). Points whose
//                   native toolchain fails fall back to VM verification with
//                   the toolchain diagnostic reported.
//   journal         optional persistent result cache; re-running the same
//                   exploration replays completed points instead of
//                   re-evaluating them.

#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "codesize/model.hpp"
#include "codesize/tradeoff.hpp"
#include "dfg/iteration_bound.hpp"
#include "driver/config.hpp"
#include "support/text.hpp"

namespace {

using namespace csr;

struct NamedBenchmark {
  const char* table_name;  // name registered in benchmarks::all_graphs()
  DataFlowGraph (*factory)();
};

const std::map<std::string, NamedBenchmark>& registry() {
  static const std::map<std::string, NamedBenchmark> map = {
      {"iir", {"IIR Filter", benchmarks::iir_filter}},
      {"diffeq", {"Differential Equation", benchmarks::differential_equation_solver}},
      {"allpole", {"All-pole Filter", benchmarks::allpole_filter}},
      {"elliptic", {"Elliptical Filter", benchmarks::elliptic_filter}},
      {"lattice", {"4-stage Lattice Filter", benchmarks::lattice_filter}},
      {"volterra", {"Volterra Filter", benchmarks::volterra_filter}},
  };
  return map;
}

struct OrderSpec {
  TransformOrder order;
  driver::Transform expanded;
  driver::Transform csr;
};

constexpr OrderSpec kOrders[] = {
    {TransformOrder::kUnfoldOnly, driver::Transform::kUnfolded,
     driver::Transform::kUnfoldedCsr},
    {TransformOrder::kRetimeUnfold, driver::Transform::kRetimedUnfolded,
     driver::Transform::kRetimedUnfoldedCsr},
    {TransformOrder::kUnfoldRetime, driver::Transform::kUnfoldedRetimed,
     driver::Transform::kUnfoldedRetimedCsr},
};

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "lattice";
  const auto it = registry().find(which);
  if (it == registry().end()) {
    std::cerr << "unknown benchmark '" << which << "'; choose one of:";
    for (const auto& [name, entry] : registry()) std::cerr << ' ' << name;
    std::cerr << '\n';
    return 2;
  }
  const int max_factor = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::int64_t register_budget = argc > 3 ? std::atoll(argv[3]) : 4;
  const std::int64_t size_budget = argc > 4 ? std::atoll(argv[4]) : 150;
  const std::string engine_name = argc > 5 ? argv[5] : "vm";
  const std::optional<driver::ExecEngine> parsed = driver::parse_exec_engine(engine_name);
  if (!parsed) {
    std::cerr << "unknown engine '" << engine_name << "' (vm|map|native)\n";
    return 2;
  }
  const driver::ExecEngine exec = *parsed;
  const std::int64_t n = TradeoffOptions{}.n;

  const DataFlowGraph g = it->second.factory();
  const auto bound = iteration_bound(g);
  std::cout << "benchmark " << which << ": " << g.node_count()
            << " nodes, iteration bound " << bound->to_string() << "\n\n";

  // One sweep cell per (order, f, expanded|csr); evaluated concurrently.
  std::vector<driver::SweepCell> cells;
  for (const OrderSpec& spec : kOrders) {
    for (int f = 1; f <= max_factor; ++f) {
      for (const driver::Transform t : {spec.expanded, spec.csr}) {
        driver::SweepCell cell;
        cell.benchmark = it->second.table_name;
        cell.exec = exec;
        cell.transform = t;
        cell.factor = f;
        cell.n = n;
        cells.push_back(cell);
      }
    }
  }
  driver::SweepConfig config = driver::SweepConfig().cells(cells).threads(0);
  if (argc > 6) config.journal(argv[6]);
  const driver::SweepRun run = driver::run_sweep(config);
  const driver::SweepStats& stats = run.stats;
  const std::vector<driver::SweepResult>& results = run.results;
  if (stats.cache_hits > 0 || stats.retries > 0) {
    std::cout << stats.cache_hits << '/' << stats.total_cells
              << " points replayed from the journal, " << stats.retries
              << " native retries\n\n";
  }

  // Fold expanded/CSR cell pairs back into tradeoff points.
  std::vector<TradeoffPoint> points;
  std::size_t unverified = 0;
  std::size_t skipped = 0;
  std::size_t fallbacks = 0;
  std::string skip_reason;
  std::string fallback_reason;
  for (std::size_t k = 0; k + 1 < results.size(); k += 2) {
    const driver::SweepResult& expanded = results[k];
    const driver::SweepResult& csr = results[k + 1];
    if (!expanded.feasible || !csr.feasible) continue;
    for (const driver::SweepResult* r : {&expanded, &csr}) {
      if (r->engine_fallback) {
        ++fallbacks;
        fallback_reason = r->fallback_reason;
      }
      if (r->skipped) {
        ++skipped;
        skip_reason = r->skip_reason;
      } else if (!r->verified) {
        ++unverified;
      }
    }
    TradeoffPoint p;
    p.factor = csr.cell.factor;
    p.depth = csr.depth;
    p.iteration_period = csr.period;
    p.registers = csr.registers;
    p.size_expanded = expanded.code_size;
    p.size_csr = csr.code_size;
    p.order = kOrders[k / (2 * static_cast<std::size_t>(max_factor))].order;
    points.push_back(p);
  }

  std::cout << pad_right("order", 15) << pad_left("f", 4) << pad_left("M_r", 5)
            << pad_left("period", 9) << pad_left("regs", 6) << pad_left("expanded", 10)
            << pad_left("CSR", 7) << '\n'
            << std::string(56, '-') << '\n';
  for (const auto& p : points) {
    std::cout << pad_right(std::string(to_string(p.order)), 15)
              << pad_left(std::to_string(p.factor), 4)
              << pad_left(std::to_string(p.depth), 5)
              << pad_left(p.iteration_period.to_string(), 9)
              << pad_left(std::to_string(p.registers), 6)
              << pad_left(std::to_string(p.size_expanded), 10)
              << pad_left(std::to_string(p.size_csr), 7) << '\n';
  }
  if (fallbacks > 0) {
    std::cout << '\n' << fallbacks << " point(s) fell back to VM verification — "
              << fallback_reason << '\n';
  }
  if (skipped > 0) {
    std::cout << '\n' << skipped << " point(s) skipped — " << engine_name
              << " engine unavailable: " << skip_reason << '\n';
  }
  if (unverified > 0) {
    std::cout << "\nWARNING: some points failed " << engine_name
              << " verification\n";
  } else {
    std::cout << "\nall " << (skipped > 0 ? "executed " : "") << "points "
              << engine_name << "-verified against the original loop\n";
  }

  std::cout << "\nPareto frontier (iteration period vs CSR code size):\n";
  for (const auto& p : pareto_frontier(points)) {
    std::cout << "  period " << p.iteration_period.to_string() << "  size "
              << p.size_csr << "  (" << to_string(p.order) << ", f=" << p.factor
              << ")\n";
  }

  std::cout << "\nbudgets: " << register_budget << " conditional registers, "
            << size_budget << " instructions\n";
  if (const auto best = best_under_budget(points, register_budget, size_budget)) {
    std::cout << "best feasible point: iteration period "
              << best->iteration_period.to_string() << " at f=" << best->factor << " ("
              << to_string(best->order) << ", " << best->registers << " registers, "
              << best->size_csr << " instructions)\n";
    std::cout << "budget headroom: max unfolding factor by Section 4's formula = "
              << max_unfolding_factor(size_budget, original_size(g), best->depth)
              << '\n';
  } else {
    std::cout << "no explored configuration fits the budgets\n";
  }
  return 0;
}
