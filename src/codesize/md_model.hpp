#pragma once

/// \file md_model.hpp
/// Closed-form code-size accounting for the 2-D (nested) family, extending
/// model.hpp. The row-major lowering (codegen/nested.hpp) runs the nest as
/// one continuous pipeline over rows·cols flat iterations with a *single*
/// global prologue/epilogue — not one per row — so the closed forms are the
/// 1-D formulas evaluated on the column components of the vector retiming,
/// and notably *independent of rows and cols*:
///
///   retimed:      L + Σ_v r_col(v) + Σ_v (M_r − r_col(v))   (M_r = max r_col)
///   retimed CSR:  L + 2·|N_r|                               (distinct r_col)
///
/// Tests assert predicted == generated.code_size() for every nested cell,
/// and that these formulas coincide with the 1-D predictions on the
/// linearized graph.

#include <cstdint>

#include "mdfg/graph.hpp"
#include "retiming/md_retiming.hpp"

namespace csr {

/// L_orig of the nest: one statement per node (the nested original program
/// is the 1-D original program of the linearized graph).
[[nodiscard]] std::int64_t md_original_size(const MdDataFlowGraph& g);

/// Conditional registers of the nested CSR form: |N_r|, the number of
/// distinct column retiming values. Requires a pure-column retiming.
[[nodiscard]] std::int64_t md_registers_required(const MdRetiming& r);

/// Prologue / epilogue statement copies of the lowered nest (normalized
/// internally): Σ r_col(v) and Σ (M_r − r_col(v)). Requires pure-column.
[[nodiscard]] std::int64_t md_prologue_statements(const MdRetiming& r);
[[nodiscard]] std::int64_t md_epilogue_statements(const MdRetiming& r);

/// Exact size of nested_retimed_program(g, r, rows, cols) for any legal
/// rows/cols: L + prologue + epilogue.
[[nodiscard]] std::int64_t predicted_md_retimed_size(const MdDataFlowGraph& g,
                                                     const MdRetiming& r);

/// Exact size of nested_retimed_csr_program: L + 2·|N_r|.
[[nodiscard]] std::int64_t predicted_md_retimed_csr_size(const MdDataFlowGraph& g,
                                                         const MdRetiming& r);

}  // namespace csr
