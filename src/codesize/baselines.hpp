#pragma once

/// \file baselines.hpp
/// The ad-hoc code-size reduction baseline the paper positions itself
/// against: prologue/epilogue *collapsing* as shipped for the TMS320C6000
/// [Granston et al., ref 4]. Collapsing merges a pipeline stage into the
/// kernel by speculatively executing the kernel one extra trip — legal only
/// when every statement of that stage is safe to over-execute (no
/// irreversible side effects, loads cannot fault). How many stages are safe
/// is program-dependent, which is exactly the paper's criticism: "the
/// quality of their techniques could not be guaranteed". The CSR framework
/// removes *all* stages unconditionally with guards instead.
///
/// This module models collapsing's code size so benches can compare the
/// three techniques (none / collapsing / CSR) on equal footing.

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"
#include "retiming/retiming.hpp"

namespace csr {

/// Per-stage statement counts of the software-pipeline fill and drain.
/// prologue[k] is the number of statements the (k+1)-th prologue stage
/// executes (virtual index i = 1 − M_r + k); epilogue[k] likewise for the
/// drain (i = n − M_r + 1 + k). Sums equal pipeline_expansion(g, r).
struct StageSizes {
  std::vector<std::int64_t> prologue;
  std::vector<std::int64_t> epilogue;
};

[[nodiscard]] StageSizes stage_sizes(const DataFlowGraph& g, const Retiming& r);

/// Code size after collapsing the given number of prologue/epilogue stages
/// into speculative kernel trips. Collapsing proceeds from the *outermost*
/// (smallest) stages inward — the cheap stages are the ones that speculate
/// safely. Counts: loop body + statements of every non-collapsed stage.
/// Requires 0 ≤ safe stages ≤ M_r on each side.
[[nodiscard]] std::int64_t collapsed_size(const DataFlowGraph& g, const Retiming& r,
                                          int safe_prologue_stages,
                                          int safe_epilogue_stages);

}  // namespace csr
