#include "codesize/storage.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace csr {

StorageReport storage_requirements(const DataFlowGraph& g) {
  StorageReport report;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::int64_t deepest = 0;
    for (const EdgeId e : g.out_edges(v)) {
      deepest = std::max<std::int64_t>(deepest, g.edge(e).delay);
    }
    report.buffer_depth[g.node(v).name] = deepest + 1;
    report.total_buffer_slots += deepest + 1;
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    report.delay_registers += g.edge(e).delay;
    report.max_dependence_distance =
        std::max(report.max_dependence_distance, g.edge(e).delay);
  }
  return report;
}

std::int64_t delay_register_delta(const DataFlowGraph& g, const Retiming& r) {
  CSR_REQUIRE(is_legal_retiming(g, r), "retiming is not legal for this graph");
  std::int64_t delta = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    delta += r[edge.from] - r[edge.to];
  }
  return delta;
}

}  // namespace csr
