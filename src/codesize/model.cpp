#include "codesize/model.hpp"

#include <set>

#include "support/check.hpp"

namespace csr {

std::int64_t original_size(const DataFlowGraph& g) {
  return static_cast<std::int64_t>(g.node_count());
}

std::int64_t registers_required(const Retiming& r) {
  return static_cast<std::int64_t>(r.distinct_values().size());
}

std::int64_t registers_required_unfolded(const Unfolding& u, const Retiming& r_unfolded) {
  const Retiming norm = r_unfolded.normalized();
  CSR_REQUIRE(norm.node_count() == u.graph().node_count(),
              "retiming does not match unfolded graph");
  std::set<std::int64_t> offsets;
  for (NodeId w = 0; w < u.graph().node_count(); ++w) {
    offsets.insert(u.copy_index(w) + static_cast<std::int64_t>(u.factor()) * norm[w]);
  }
  return static_cast<std::int64_t>(offsets.size());
}

std::int64_t predicted_retimed_size(const DataFlowGraph& g, const Retiming& r) {
  const PipelineExpansion census = pipeline_expansion(g, r);
  return original_size(g) + census.total();
}

std::int64_t predicted_retimed_csr_size(const DataFlowGraph& g, const Retiming& r) {
  return original_size(g) + 2 * registers_required(r);
}

std::int64_t predicted_unfolded_size(const DataFlowGraph& g, int factor, std::int64_t n) {
  CSR_REQUIRE(factor >= 1 && n >= 1, "factor and n must be positive");
  return (factor + n % factor) * original_size(g);
}

std::int64_t predicted_unfolded_csr_size(const DataFlowGraph& g, int factor) {
  CSR_REQUIRE(factor >= 1, "factor must be positive");
  return factor * original_size(g) + factor + 1;
}

std::int64_t predicted_retimed_unfolded_size(const DataFlowGraph& g, const Retiming& r,
                                             int factor, std::int64_t n) {
  CSR_REQUIRE(factor >= 1, "factor must be positive");
  const int depth = r.normalized().max_value();
  CSR_REQUIRE(n > depth, "trip count must exceed M_r");
  // Prologue Σr + body f·L + merged remainder/epilogue
  // (depth + (n−depth) mod f)·L − Σ(M−r)... algebraically:
  //   total = L·(f + depth + (n − depth) % factor).
  return original_size(g) * (factor + depth + (n - depth) % factor);
}

std::int64_t predicted_retimed_unfolded_csr_size(const DataFlowGraph& g,
                                                 const Retiming& r, int factor) {
  CSR_REQUIRE(factor >= 1, "factor must be positive");
  const std::int64_t regs = registers_required(r);
  return factor * original_size(g) + factor * regs + regs;
}

std::int64_t predicted_unfolded_retimed_size(const Unfolding& u,
                                             const Retiming& r_unfolded, std::int64_t n) {
  const int f = u.factor();
  const int depth = r_unfolded.normalized().max_value();
  const std::int64_t l = original_size(u.original());
  return (static_cast<std::int64_t>(depth) + 1) * l * f + (n % f) * l;
}

std::int64_t predicted_unfolded_retimed_csr_size(const Unfolding& u,
                                                 const Retiming& r_unfolded) {
  const std::int64_t l = original_size(u.original());
  const std::int64_t regs = registers_required_unfolded(u, r_unfolded);
  return u.factor() * l + 2 * regs;
}

std::int64_t paper_unfolded_retimed_size(std::int64_t l_orig, int depth, int factor,
                                         std::int64_t n) {
  return (static_cast<std::int64_t>(depth) + 1) * l_orig * factor + (n % factor) * l_orig;
}

std::int64_t paper_retimed_unfolded_size(std::int64_t l_orig, int depth, int factor,
                                         std::int64_t n) {
  return (static_cast<std::int64_t>(depth) + factor) * l_orig + (n % factor) * l_orig;
}

std::int64_t max_unfolding_factor(std::int64_t l_req, std::int64_t l_orig, int depth) {
  CSR_REQUIRE(l_orig >= 1, "original body size must be positive");
  return l_req / l_orig - depth;
}

std::int64_t max_retiming_depth(std::int64_t l_req, std::int64_t l_orig, int factor) {
  CSR_REQUIRE(l_orig >= 1, "original body size must be positive");
  return l_req / l_orig - factor;
}

}  // namespace csr
