#include "codesize/model.hpp"

#include <set>

#include "support/check.hpp"

namespace csr {

std::int64_t original_size(const DataFlowGraph& g) {
  return static_cast<std::int64_t>(g.node_count());
}

std::int64_t registers_required(const Retiming& r) {
  return static_cast<std::int64_t>(r.distinct_values().size());
}

std::int64_t registers_required_unfolded(const Unfolding& u, const Retiming& r_unfolded) {
  const Retiming norm = r_unfolded.normalized();
  CSR_REQUIRE(norm.node_count() == u.graph().node_count(),
              "retiming does not match unfolded graph");
  std::set<std::int64_t> offsets;
  for (NodeId w = 0; w < u.graph().node_count(); ++w) {
    offsets.insert(u.copy_index(w) + static_cast<std::int64_t>(u.factor()) * norm[w]);
  }
  return static_cast<std::int64_t>(offsets.size());
}

std::int64_t predicted_retimed_size(const DataFlowGraph& g, const Retiming& r) {
  const PipelineExpansion census = pipeline_expansion(g, r);
  return original_size(g) + census.total();
}

std::int64_t predicted_retimed_csr_size(const DataFlowGraph& g, const Retiming& r) {
  return original_size(g) + 2 * registers_required(r);
}

std::int64_t predicted_unfolded_size(const DataFlowGraph& g, int factor, std::int64_t n) {
  CSR_REQUIRE(factor >= 1 && n >= 1, "factor and n must be positive");
  const std::int64_t f = factor;
  return (f + n % f) * original_size(g);
}

std::int64_t predicted_unfolded_csr_size(const DataFlowGraph& g, int factor) {
  CSR_REQUIRE(factor >= 1, "factor must be positive");
  const std::int64_t f = factor;
  return f * original_size(g) + f + 1;
}

std::int64_t predicted_retimed_unfolded_size(const DataFlowGraph& g, const Retiming& r,
                                             int factor, std::int64_t n) {
  CSR_REQUIRE(factor >= 1, "factor must be positive");
  // Promote before any arithmetic: `factor + depth` in plain int wraps for
  // deep pipelines / large unfolding factors (the sizes are int64 throughout).
  const std::int64_t f = factor;
  const std::int64_t depth = r.normalized().max_value();
  CSR_REQUIRE(n > depth, "trip count must exceed M_r");
  // Prologue + f·L body + merged remainder/epilogue:
  //   total = L · (f + depth + (n − depth) mod f).
  return original_size(g) * (f + depth + (n - depth) % f);
}

std::int64_t predicted_retimed_unfolded_csr_size(const DataFlowGraph& g,
                                                 const Retiming& r, int factor) {
  CSR_REQUIRE(factor >= 1, "factor must be positive");
  const std::int64_t f = factor;
  const std::int64_t regs = registers_required(r);
  return f * original_size(g) + f * regs + regs;
}

std::int64_t predicted_unfolded_retimed_size(const Unfolding& u,
                                             const Retiming& r_unfolded, std::int64_t n) {
  const std::int64_t f = u.factor();
  const std::int64_t depth = r_unfolded.normalized().max_value();
  const std::int64_t l = original_size(u.original());
  return (depth + 1) * l * f + (n % f) * l;
}

std::int64_t predicted_unfolded_retimed_csr_size(const Unfolding& u,
                                                 const Retiming& r_unfolded) {
  const std::int64_t l = original_size(u.original());
  const std::int64_t regs = registers_required_unfolded(u, r_unfolded);
  return u.factor() * l + 2 * regs;
}

std::int64_t paper_unfolded_retimed_size(std::int64_t l_orig, int depth, int factor,
                                         std::int64_t n) {
  const std::int64_t d = depth;
  const std::int64_t f = factor;
  return (d + 1) * l_orig * f + (n % f) * l_orig;
}

std::int64_t paper_retimed_unfolded_size(std::int64_t l_orig, int depth, int factor,
                                         std::int64_t n) {
  const std::int64_t d = depth;
  const std::int64_t f = factor;
  return (d + f) * l_orig + (n % f) * l_orig;
}

std::int64_t max_unfolding_factor(std::int64_t l_req, std::int64_t l_orig, int depth) {
  CSR_REQUIRE(l_orig >= 1, "original body size must be positive");
  return l_req / l_orig - static_cast<std::int64_t>(depth);
}

std::int64_t max_retiming_depth(std::int64_t l_req, std::int64_t l_orig, int factor) {
  CSR_REQUIRE(l_orig >= 1, "original body size must be positive");
  return l_req / l_orig - static_cast<std::int64_t>(factor);
}

}  // namespace csr
