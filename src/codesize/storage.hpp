#pragma once

/// \file storage.hpp
/// Data-storage accounting for transformed loops. Code size is the paper's
/// headline metric, but retiming also moves *delays* (pipeline registers /
/// live values) around, and unfolding replicates access patterns; the
/// paper's introduction points to memory-constrained follow-up work [3,10].
/// This module quantifies the storage side so the trade-off explorer can
/// report it alongside code size:
///
///   * delay registers — Σ_e d(e): values alive across iterations in the
///     DFG sense;
///   * per-array buffer depth — how many past iterations of each node's
///     value must stay addressable: max over out-edges of d(e) (+1 for the
///     current value).

#include <cstdint>
#include <map>
#include <string>

#include "dfg/graph.hpp"
#include "retiming/retiming.hpp"

namespace csr {

struct StorageReport {
  /// Σ_e d(e) — total inter-iteration values held.
  std::int64_t delay_registers = 0;
  /// Largest dependence distance anywhere in the graph.
  int max_dependence_distance = 0;
  /// Buffer depth per node/array: 1 + max over out-edges of d(e).
  std::map<std::string, std::int64_t> buffer_depth;
  /// Σ of buffer depths — total storage slots a circular-buffer
  /// implementation needs.
  std::int64_t total_buffer_slots = 0;
};

/// Storage requirements of (the loop described by) `g`.
[[nodiscard]] StorageReport storage_requirements(const DataFlowGraph& g);

/// Change in delay registers caused by a retiming: Σ_e d_r(e) − Σ_e d(e).
/// Zero on cycles (retiming conserves cycle delays) but generally non-zero
/// on multi-fanout paths — deep pipelining can *increase* live storage even
/// as CSR shrinks the code.
[[nodiscard]] std::int64_t delay_register_delta(const DataFlowGraph& g,
                                                const Retiming& r);

}  // namespace csr
