#pragma once

/// \file tradeoff.hpp
/// The design-space exploration the paper's conclusion calls for: sweep the
/// unfolding factor, retime for the minimum cycle period, and report for
/// each point the achieved iteration period, the required conditional
/// registers, and the code size with and without CSR — in both
/// transformation orders. Callers can then pick the best performance under
/// a code-size or register budget, or the smallest code at a target period.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "dfg/graph.hpp"
#include "retiming/retiming.hpp"
#include "support/rational.hpp"

namespace csr {

/// How the configuration was produced.
enum class TransformOrder {
  kUnfoldOnly,    ///< no retiming: one conditional register, no pipelining
  kRetimeUnfold,  ///< retime to the minimum period, then unfold (paper's pick)
  kUnfoldRetime,  ///< unfold, then retime the unfolded graph
};

[[nodiscard]] std::string_view to_string(TransformOrder order);

/// One explored configuration.
struct TradeoffPoint {
  int factor = 1;                 ///< Unfolding factor f.
  int depth = 0;                  ///< Pipeline depth (M_r of the order used).
  Rational iteration_period;      ///< Cycle period of the final graph / f.
  std::int64_t registers = 0;     ///< Conditional registers for the CSR form.
  std::int64_t size_expanded = 0; ///< Code size without CSR.
  std::int64_t size_csr = 0;      ///< Code size with CSR.
  TransformOrder order = TransformOrder::kRetimeUnfold;
};

struct TradeoffOptions {
  int max_factor = 4;
  std::int64_t n = 100;  ///< Trip count used for remainder accounting.
  /// Explore the inferior unfold-then-retime order too (for comparison
  /// tables); the retime-first points are always produced.
  bool include_unfold_first = true;
  /// Explore pure unfolding (no retiming — the one-register family).
  bool include_unfold_only = true;
};

/// Sweeps f = 1..max_factor. Unfold-only points take the graph as is;
/// retime-first points retime the original graph to its minimum cycle
/// period (depth-minimal) and then unfold; unfold-first points retime the
/// unfolded graph. Iteration periods are exact rationals.
[[nodiscard]] std::vector<TradeoffPoint> explore_tradeoffs(const DataFlowGraph& g,
                                                           const TradeoffOptions& options);

/// Filters `points` to the Pareto frontier of (iteration_period, size_csr):
/// a point survives iff no other point is at least as good in both and
/// strictly better in one.
[[nodiscard]] std::vector<TradeoffPoint> pareto_frontier(std::vector<TradeoffPoint> points);

/// Best achievable iteration period with at most `register_budget`
/// conditional registers and code size ≤ `size_budget` (CSR form), or
/// nullopt when no explored point fits.
[[nodiscard]] std::optional<TradeoffPoint> best_under_budget(
    const std::vector<TradeoffPoint>& points, std::int64_t register_budget,
    std::int64_t size_budget);

}  // namespace csr
