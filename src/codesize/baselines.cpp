#include "codesize/baselines.hpp"

#include "codesize/model.hpp"
#include "support/check.hpp"

namespace csr {

StageSizes stage_sizes(const DataFlowGraph& g, const Retiming& r) {
  CSR_REQUIRE(r.node_count() == g.node_count(), "retiming does not match graph");
  const Retiming norm = r.normalized();
  const int depth = norm.max_value();
  StageSizes sizes;
  sizes.prologue.assign(static_cast<std::size_t>(depth), 0);
  sizes.epilogue.assign(static_cast<std::size_t>(depth), 0);
  for (int k = 0; k < depth; ++k) {
    const int i_prologue = 1 - depth + k;  // virtual loop index of this stage
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (i_prologue + norm[v] >= 1) {
        ++sizes.prologue[static_cast<std::size_t>(k)];
      }
      // Epilogue stage k runs at i = n − depth + 1 + k; the statement is
      // kept when its target i + r(v) ≤ n, i.e. r(v) ≤ depth − 1 − k.
      if (norm[v] <= depth - 1 - k) {
        ++sizes.epilogue[static_cast<std::size_t>(k)];
      }
    }
  }
  return sizes;
}

std::int64_t collapsed_size(const DataFlowGraph& g, const Retiming& r,
                            int safe_prologue_stages, int safe_epilogue_stages) {
  const Retiming norm = r.normalized();
  const int depth = norm.max_value();
  CSR_REQUIRE(safe_prologue_stages >= 0 && safe_prologue_stages <= depth,
              "prologue stage count out of range");
  CSR_REQUIRE(safe_epilogue_stages >= 0 && safe_epilogue_stages <= depth,
              "epilogue stage count out of range");
  const StageSizes sizes = stage_sizes(g, norm);
  std::int64_t total = original_size(g);
  // The outermost prologue stages are the first ones (fewest statements);
  // the outermost epilogue stages are the last ones.
  for (int k = safe_prologue_stages; k < depth; ++k) {
    total += sizes.prologue[static_cast<std::size_t>(k)];
  }
  for (int k = 0; k < depth - safe_epilogue_stages; ++k) {
    total += sizes.epilogue[static_cast<std::size_t>(k)];
  }
  return total;
}

}  // namespace csr
