#include "codesize/md_model.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace csr {

namespace {

/// Normalized column components of a pure-column retiming.
std::vector<int> normalized_cols(const MdRetiming& r) {
  CSR_REQUIRE(r.pure_column(), "nested size model requires a pure-column retiming");
  std::vector<int> cols;
  cols.reserve(r.node_count());
  for (const MdDelay& d : r.values()) cols.push_back(d.col);
  if (!cols.empty()) {
    const int min = *std::min_element(cols.begin(), cols.end());
    for (int& c : cols) c -= min;
  }
  return cols;
}

}  // namespace

std::int64_t md_original_size(const MdDataFlowGraph& g) {
  return static_cast<std::int64_t>(g.node_count());
}

std::int64_t md_registers_required(const MdRetiming& r) {
  std::vector<int> cols = normalized_cols(r);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return static_cast<std::int64_t>(cols.size());
}

std::int64_t md_prologue_statements(const MdRetiming& r) {
  const std::vector<int> cols = normalized_cols(r);
  std::int64_t sum = 0;
  for (const int c : cols) sum += c;
  return sum;
}

std::int64_t md_epilogue_statements(const MdRetiming& r) {
  const std::vector<int> cols = normalized_cols(r);
  const int depth = cols.empty() ? 0 : *std::max_element(cols.begin(), cols.end());
  std::int64_t sum = 0;
  for (const int c : cols) sum += depth - c;
  return sum;
}

std::int64_t predicted_md_retimed_size(const MdDataFlowGraph& g, const MdRetiming& r) {
  return md_original_size(g) + md_prologue_statements(r) + md_epilogue_statements(r);
}

std::int64_t predicted_md_retimed_csr_size(const MdDataFlowGraph& g,
                                           const MdRetiming& r) {
  return md_original_size(g) + 2 * md_registers_required(r);
}

}  // namespace csr
