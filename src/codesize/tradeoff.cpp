#include "codesize/tradeoff.hpp"

#include <algorithm>

#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "retiming/opt.hpp"
#include "support/check.hpp"
#include "unfolding/unfold.hpp"

namespace csr {

std::string_view to_string(TransformOrder order) {
  switch (order) {
    case TransformOrder::kUnfoldOnly:
      return "unfold-only";
    case TransformOrder::kRetimeUnfold:
      return "retime-unfold";
    case TransformOrder::kUnfoldRetime:
      return "unfold-retime";
  }
  return "?";
}

std::vector<TradeoffPoint> explore_tradeoffs(const DataFlowGraph& g,
                                             const TradeoffOptions& options) {
  CSR_REQUIRE(options.max_factor >= 1, "max_factor must be >= 1");
  CSR_REQUIRE(options.n >= 1, "n must be >= 1");
  std::vector<TradeoffPoint> points;

  if (options.include_unfold_only) {
    for (int f = 1; f <= options.max_factor; ++f) {
      TradeoffPoint p;
      p.factor = f;
      p.order = TransformOrder::kUnfoldOnly;
      p.depth = 0;
      p.iteration_period = Rational(cycle_period(unfold(g, f)), f);
      p.registers = 1;  // the single remainder register
      p.size_expanded = predicted_unfolded_size(g, f, options.n);
      p.size_csr = predicted_unfolded_csr_size(g, f);
      points.push_back(p);
    }
  }

  // Retime-first: one retiming of the original graph, reused at every f.
  const OptimalRetiming base = minimum_period_retiming(g);
  const DataFlowGraph retimed = apply_retiming(g, base.retiming);
  for (int f = 1; f <= options.max_factor; ++f) {
    TradeoffPoint p;
    p.factor = f;
    p.order = TransformOrder::kRetimeUnfold;
    p.depth = base.retiming.max_value();
    p.iteration_period = Rational(cycle_period(unfold(retimed, f)), f);
    p.registers = registers_required(base.retiming);
    p.size_expanded = predicted_retimed_unfolded_size(g, base.retiming, f, options.n);
    p.size_csr = predicted_retimed_unfolded_csr_size(g, base.retiming, f);
    points.push_back(p);
  }

  if (options.include_unfold_first) {
    for (int f = 1; f <= options.max_factor; ++f) {
      const Unfolding u(g, f);
      const OptimalRetiming opt = minimum_period_retiming(u.graph());
      TradeoffPoint p;
      p.factor = f;
      p.order = TransformOrder::kUnfoldRetime;
      p.depth = opt.retiming.max_value();
      p.iteration_period =
          Rational(cycle_period(apply_retiming(u.graph(), opt.retiming)), f);
      p.registers = registers_required_unfolded(u, opt.retiming);
      p.size_expanded = predicted_unfolded_retimed_size(u, opt.retiming, options.n);
      p.size_csr = predicted_unfolded_retimed_csr_size(u, opt.retiming);
      points.push_back(p);
    }
  }
  return points;
}

std::vector<TradeoffPoint> pareto_frontier(std::vector<TradeoffPoint> points) {
  std::vector<TradeoffPoint> frontier;
  for (const TradeoffPoint& candidate : points) {
    bool dominated = false;
    for (const TradeoffPoint& other : points) {
      const bool no_worse = other.iteration_period <= candidate.iteration_period &&
                            other.size_csr <= candidate.size_csr;
      const bool strictly_better = other.iteration_period < candidate.iteration_period ||
                                   other.size_csr < candidate.size_csr;
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  // Deduplicate identical (period, size) pairs, keep ascending period.
  std::sort(frontier.begin(), frontier.end(),
            [](const TradeoffPoint& a, const TradeoffPoint& b) {
              if (a.iteration_period != b.iteration_period) {
                return a.iteration_period < b.iteration_period;
              }
              return a.size_csr < b.size_csr;
            });
  frontier.erase(std::unique(frontier.begin(), frontier.end(),
                             [](const TradeoffPoint& a, const TradeoffPoint& b) {
                               return a.iteration_period == b.iteration_period &&
                                      a.size_csr == b.size_csr;
                             }),
                 frontier.end());
  return frontier;
}

std::optional<TradeoffPoint> best_under_budget(const std::vector<TradeoffPoint>& points,
                                               std::int64_t register_budget,
                                               std::int64_t size_budget) {
  std::optional<TradeoffPoint> best;
  for (const TradeoffPoint& p : points) {
    if (p.registers > register_budget || p.size_csr > size_budget) continue;
    if (!best || p.iteration_period < best->iteration_period ||
        (p.iteration_period == best->iteration_period && p.size_csr < best->size_csr)) {
      best = p;
    }
  }
  return best;
}

}  // namespace csr
