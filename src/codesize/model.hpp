#pragma once

/// \file model.hpp
/// Closed-form code-size accounting (Section 4). Code size is measured the
/// paper's way: the number of instructions — one per node-statement copy,
/// plus one per conditional-register setup and decrement in CSR forms.
///
/// Two families of formulas live here:
///   * `predicted_*` — exact predictions of the sizes of the programs
///     src/codegen emits (tests assert predicted == generated.code_size());
///   * `paper_*` — the formulas printed in Theorems 4.4/4.5, which count the
///     unfolding remainder as n mod f even after retiming. The generated
///     programs' remainder is (n − M_r) mod f, so the two differ by at most
///     one body's worth of statements; EXPERIMENTS.md reports both.

#include <cstdint>

#include "dfg/graph.hpp"
#include "retiming/retiming.hpp"
#include "unfolding/unfold.hpp"

namespace csr {

/// L_orig: one statement per node.
[[nodiscard]] std::int64_t original_size(const DataFlowGraph& g);

/// Conditional registers needed to fully remove prologue/epilogue
/// (Theorem 4.3): |N_r|, the number of distinct retiming values.
[[nodiscard]] std::int64_t registers_required(const Retiming& r);

/// Guard classes (and thus registers) of the unfolded-then-retimed CSR
/// form: distinct iteration offsets j + f·r(u_j) over the unfolded nodes.
[[nodiscard]] std::int64_t registers_required_unfolded(const Unfolding& u,
                                                       const Retiming& r_unfolded);

// --- exact predictions of generated program sizes ------------------------

[[nodiscard]] std::int64_t predicted_retimed_size(const DataFlowGraph& g,
                                                  const Retiming& r);
[[nodiscard]] std::int64_t predicted_retimed_csr_size(const DataFlowGraph& g,
                                                      const Retiming& r);
[[nodiscard]] std::int64_t predicted_unfolded_size(const DataFlowGraph& g, int factor,
                                                   std::int64_t n);
[[nodiscard]] std::int64_t predicted_unfolded_csr_size(const DataFlowGraph& g,
                                                       int factor);
[[nodiscard]] std::int64_t predicted_retimed_unfolded_size(const DataFlowGraph& g,
                                                           const Retiming& r, int factor,
                                                           std::int64_t n);
[[nodiscard]] std::int64_t predicted_retimed_unfolded_csr_size(const DataFlowGraph& g,
                                                               const Retiming& r,
                                                               int factor);
[[nodiscard]] std::int64_t predicted_unfolded_retimed_size(const Unfolding& u,
                                                           const Retiming& r_unfolded,
                                                           std::int64_t n);
[[nodiscard]] std::int64_t predicted_unfolded_retimed_csr_size(const Unfolding& u,
                                                               const Retiming& r_unfolded);

// --- the paper's printed formulas -----------------------------------------

/// Theorem 4.4: S_{f,r} = (M'_r + 1)·L·f + Q_f with Q_f = (n mod f)·L.
[[nodiscard]] std::int64_t paper_unfolded_retimed_size(std::int64_t l_orig, int depth,
                                                       int factor, std::int64_t n);

/// Theorem 4.5: S_{r,f} = (M_r + f)·L + Q_f.
[[nodiscard]] std::int64_t paper_retimed_unfolded_size(std::int64_t l_orig, int depth,
                                                       int factor, std::int64_t n);

/// Section 4: maximum unfolding factor under a code-size budget,
/// M_f = ⌊L_req / L_orig⌋ − M_r. Negative means the budget is infeasible.
[[nodiscard]] std::int64_t max_unfolding_factor(std::int64_t l_req, std::int64_t l_orig,
                                                int depth);

/// Section 4: maximum retiming depth under a code-size budget,
/// M_r = ⌊L_req / L_orig⌋ − f.
[[nodiscard]] std::int64_t max_retiming_depth(std::int64_t l_req, std::int64_t l_orig,
                                              int factor);

}  // namespace csr
