#pragma once

/// \file unfold.hpp
/// Loop unfolding (unrolling at the DFG level, Section 2.2). Unfolding
/// G = <V,E,d,t> by factor f produces G_f with f copies u_0..u_{f−1} of every
/// node; copy u_j computes iteration f·k + j of u in the k-th unfolded
/// iteration. The standard construction (Parhi): each edge u→v with delay d
/// becomes, for every j ∈ [0, f),
///
///     u_j → v_{(j+d) mod f}   with delay ⌊(j+d)/f⌋.
///
/// Invariants (tested): Σ delays is preserved per original edge; the
/// iteration bound of G_f is f · B(G); the unfolded graph of a legal DFG is
/// legal.

#include <vector>

#include "dfg/graph.hpp"
#include "retiming/retiming.hpp"

namespace csr {

/// An unfolded graph plus the book-keeping linking copies to originals.
class Unfolding {
 public:
  /// Unfolds `g` by `factor` ≥ 1. Copy j of original node v is named
  /// "<name>.j" and laid out at node id v·factor + j.
  Unfolding(const DataFlowGraph& g, int factor);

  [[nodiscard]] const DataFlowGraph& graph() const { return unfolded_; }
  [[nodiscard]] const DataFlowGraph& original() const { return original_; }
  [[nodiscard]] int factor() const { return factor_; }

  /// Node id of copy `j` of original node `v`.
  [[nodiscard]] NodeId copy(NodeId v, int j) const;

  /// Original node of an unfolded node id.
  [[nodiscard]] NodeId original_node(NodeId unfolded_id) const;

  /// Copy index (iteration offset) of an unfolded node id.
  [[nodiscard]] int copy_index(NodeId unfolded_id) const;

  /// Folds a retiming of the *unfolded* graph back onto the original graph
  /// per Theorem 4.5: r_f(u) = Σ_j r(u_j). Chao–Sha showed that retiming the
  /// original by r_f and then unfolding achieves the same minimum cycle
  /// period as retiming the unfolded graph by r.
  [[nodiscard]] Retiming fold_retiming(const Retiming& unfolded_retiming) const;

  /// Lifts a retiming of the original graph onto the unfolded graph:
  /// copy j of node v gets r'(v_j) = ⌈(r(v) − j)/f⌉, the Chao–Sha
  /// correspondence under which copy j's iteration offset j + f·r'(v_j)
  /// enumerates exactly {j' + r(v) : j' ∈ [0,f)}. The lift of a legal
  /// retiming is legal, and fold_retiming(lift_retiming(r)) == r.
  [[nodiscard]] Retiming lift_retiming(const Retiming& original_retiming) const;

 private:
  DataFlowGraph original_;
  DataFlowGraph unfolded_;
  int factor_ = 1;
};

/// Convenience: just the unfolded graph.
[[nodiscard]] DataFlowGraph unfold(const DataFlowGraph& g, int factor);

}  // namespace csr
