#include "unfolding/unfold.hpp"

#include <string>

#include "support/check.hpp"

namespace csr {

Unfolding::Unfolding(const DataFlowGraph& g, int factor)
    : original_(g), factor_(factor) {
  CSR_REQUIRE(factor >= 1, "unfolding factor must be >= 1");
  unfolded_.set_name(g.name().empty() ? "unfolded" : g.name() + ".uf" + std::to_string(factor));

  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (int j = 0; j < factor; ++j) {
      unfolded_.add_node(g.node(v).name + "." + std::to_string(j), g.node(v).time);
    }
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    for (int j = 0; j < factor; ++j) {
      const int target_copy = (j + edge.delay) % factor;
      const int new_delay = (j + edge.delay) / factor;
      unfolded_.add_edge(copy(edge.from, j), copy(edge.to, target_copy), new_delay);
    }
  }
  CSR_ENSURE(unfolded_.is_legal(), "unfolding produced an illegal graph");
}

NodeId Unfolding::copy(NodeId v, int j) const {
  CSR_EXPECT(v < original_.node_count(), "original node id out of range");
  CSR_EXPECT(j >= 0 && j < factor_, "copy index out of range");
  return v * static_cast<NodeId>(factor_) + static_cast<NodeId>(j);
}

NodeId Unfolding::original_node(NodeId unfolded_id) const {
  CSR_EXPECT(unfolded_id < unfolded_.node_count(), "unfolded node id out of range");
  return unfolded_id / static_cast<NodeId>(factor_);
}

int Unfolding::copy_index(NodeId unfolded_id) const {
  CSR_EXPECT(unfolded_id < unfolded_.node_count(), "unfolded node id out of range");
  return static_cast<int>(unfolded_id % static_cast<NodeId>(factor_));
}

Retiming Unfolding::fold_retiming(const Retiming& unfolded_retiming) const {
  CSR_REQUIRE(unfolded_retiming.node_count() == unfolded_.node_count(),
              "retiming does not match unfolded graph");
  Retiming folded(original_.node_count());
  for (NodeId v = 0; v < original_.node_count(); ++v) {
    int sum = 0;
    for (int j = 0; j < factor_; ++j) {
      sum += unfolded_retiming[copy(v, j)];
    }
    folded.set(v, sum);
  }
  return folded;
}

Retiming Unfolding::lift_retiming(const Retiming& original_retiming) const {
  CSR_REQUIRE(original_retiming.node_count() == original_.node_count(),
              "retiming does not match original graph");
  Retiming lifted(unfolded_.node_count());
  for (NodeId v = 0; v < original_.node_count(); ++v) {
    for (int j = 0; j < factor_; ++j) {
      // ⌈(r − j)/f⌉ with C++ truncation handled for negatives.
      const int r = original_retiming[v] - j;
      const int lift = r >= 0 ? (r + factor_ - 1) / factor_ : -((-r) / factor_);
      lifted.set(copy(v, j), lift);
    }
  }
  return lifted;
}

DataFlowGraph unfold(const DataFlowGraph& g, int factor) {
  return Unfolding(g, factor).graph();
}

}  // namespace csr
