#pragma once

/// \file error.hpp
/// Exception hierarchy shared by every csr subsystem.
///
/// The library distinguishes programmer errors (violated preconditions, which
/// abort via CSR_ASSERT in debug builds and throw LogicError otherwise) from
/// data errors (malformed graphs, infeasible constraint systems, parse
/// failures) that a caller is expected to handle.

#include <stdexcept>
#include <string>

namespace csr {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A violated API precondition (caller bug).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what_arg) : Error(what_arg) {}
};

/// Structurally invalid input data (bad graph, negative delay, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what_arg) : Error(what_arg) {}
};

/// A requested optimization problem has no feasible solution
/// (e.g. no legal retiming achieves the requested cycle period).
class Infeasible : public Error {
 public:
  explicit Infeasible(const std::string& what_arg) : Error(what_arg) {}
};

/// Failure while parsing a textual artifact (DFG file, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what_arg) : Error(what_arg) {}
};

/// Arithmetic overflow in exact integer/rational computations.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what_arg) : Error(what_arg) {}
};

}  // namespace csr
