#pragma once

/// \file rational.hpp
/// Exact rational arithmetic on 64-bit integers with overflow detection.
///
/// Iteration bounds of data-flow graphs are ratios of cycle weights
/// (Σ computation time / Σ delay) and must be compared exactly: a schedule is
/// *rate-optimal* iff its iteration period equals the iteration bound, and an
/// off-by-epsilon comparison would mis-classify. All numerators/denominators
/// in this library are tiny (bounded by graph weight sums), so checked int64
/// is ample; overflow throws OverflowError instead of silently wrapping.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace csr {

/// An exact rational number `num/den`, always stored in canonical form:
/// gcd(num, den) == 1 and den > 0. The value 0 is stored as 0/1.
class Rational {
 public:
  /// Zero.
  constexpr Rational() = default;

  /// The integer `value`.
  Rational(std::int64_t value) : num_(value) {}  // NOLINT(runtime/explicit)

  /// `num/den`; throws InvalidArgument when `den == 0`.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] std::int64_t num() const { return num_; }
  [[nodiscard]] std::int64_t den() const { return den_; }

  [[nodiscard]] bool is_integer() const { return den_ == 1; }
  [[nodiscard]] bool is_zero() const { return num_ == 0; }

  /// Floor of the rational as an integer (rounds toward −∞).
  [[nodiscard]] std::int64_t floor() const;
  /// Ceiling of the rational as an integer (rounds toward +∞).
  [[nodiscard]] std::int64_t ceil() const;

  /// Lossy conversion for display / plotting only.
  [[nodiscard]] double to_double() const;

  /// "p/q" or just "p" when the value is an integer.
  [[nodiscard]] std::string to_string() const;

  Rational operator-() const;
  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// Throws InvalidArgument on division by zero.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

 private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Checked int64 multiply; throws OverflowError on overflow.
std::int64_t checked_mul(std::int64_t a, std::int64_t b);
/// Checked int64 add; throws OverflowError on overflow.
std::int64_t checked_add(std::int64_t a, std::int64_t b);

/// The best rational approximation of the half-open interval (lo, hi]
/// with the smallest denominator, found by walking the Stern–Brocot tree.
/// Used to recover the exact iteration bound from a binary-search interval:
/// the bound is known to be a ratio with denominator ≤ total delay count, so
/// once the search interval is tight enough the unique smallest-denominator
/// rational inside it is the bound itself. Requires lo < hi.
Rational simplest_rational_in(const Rational& lo, const Rational& hi);

}  // namespace csr
