#include "support/text.hpp"

#include <cctype>

namespace csr {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string dot_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace csr
