#include "support/rng.hpp"

#include "support/check.hpp"

namespace csr {

std::int64_t SplitMix64::uniform(std::int64_t lo, std::int64_t hi) {
  CSR_EXPECT(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double SplitMix64::uniform01() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool SplitMix64::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

}  // namespace csr
