#pragma once

/// \file enum_names.hpp
/// One mechanism for enum ↔ name mapping, replacing the per-enum switch
/// statements (and ad-hoc if/else parsers in the tools) that used to
/// duplicate every name. An enum opts in by specializing EnumNames with a
/// static `entries` array; `enum_name()` and `parse_enum()` then derive the
/// two directions from the single table, so a renamed enumerator can never
/// desynchronize printing from parsing:
///
///     template <> struct EnumNames<Engine> {
///       static constexpr std::pair<Engine, std::string_view> entries[] = {
///           {Engine::kOptRetiming, "opt-retiming"}, ...};
///     };
///
///     std::string_view n = enum_name(Engine::kModulo);    // "modulo"
///     std::optional<Engine> e = parse_enum<Engine>("modulo");
///
/// tests/enum_names_test.cpp round-trips every registered table.

#include <optional>
#include <string_view>
#include <utility>

namespace csr {

/// Specialize per enum with a static constexpr `entries` array of
/// {value, name} pairs covering every enumerator exactly once.
template <typename E>
struct EnumNames;

/// The registered name of `value`; "?" for values missing from the table
/// (mirrors the defensive default of the old switch-based to_string).
template <typename E>
[[nodiscard]] constexpr std::string_view enum_name(E value) {
  for (const auto& [v, name] : EnumNames<E>::entries) {
    if (v == value) return name;
  }
  return "?";
}

/// Inverse of enum_name; nullopt for unknown names.
template <typename E>
[[nodiscard]] constexpr std::optional<E> parse_enum(std::string_view name) {
  for (const auto& [v, n] : EnumNames<E>::entries) {
    if (n == name) return v;
  }
  return std::nullopt;
}

/// Number of registered enumerators (for exhaustiveness tests).
template <typename E>
[[nodiscard]] constexpr std::size_t enum_count() {
  return std::size(EnumNames<E>::entries);
}

}  // namespace csr
