#include "support/hash.hpp"

#include <sstream>

namespace csr {

std::string hex64(std::uint64_t h) {
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

}  // namespace csr
