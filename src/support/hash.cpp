#include "support/hash.hpp"

#include <sstream>

namespace csr {

std::string hex64(std::uint64_t h) {
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

std::string content_key(char prefix, const std::vector<std::string>& fields) {
  ContentHasher hasher;
  for (const std::string& field : fields) hasher.field(field);
  return prefix + hasher.hex();
}

}  // namespace csr
