#pragma once

/// \file hash.hpp
/// Stable 64-bit content hashing shared by the native compile cache and the
/// sweep driver's persistent result journal. Both subsystems need the same
/// two guarantees:
///
///   * the hash of a given byte sequence is identical across platforms,
///     processes and library versions (cache files outlive the process that
///     wrote them), which rules out std::hash;
///   * multi-field keys must be unambiguous — "ab"+"c" and "a"+"bc" hash
///     differently — which ContentHasher ensures by feeding a 0x1F unit
///     separator between fields.
///
/// The function is FNV-1a: tiny, dependency-free, and collision-resistant
/// enough for content addressing at the scales this library sees (thousands
/// of kernels / sweep cells, 64-bit space). It is *not* cryptographic.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace csr {

inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

/// FNV-1a over `s`, continuing from `h` so hashes can be chained.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s,
                                              std::uint64_t h = kFnv1aOffset) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

/// Lowercase hex rendering of `h` (no leading zeros, like %llx).
[[nodiscard]] std::string hex64(std::uint64_t h);

/// Accumulates a multi-field content hash with unambiguous field framing.
/// Usage: `ContentHasher().field(source).field(flags).field(n).hex()`.
class ContentHasher {
 public:
  ContentHasher& field(std::string_view s) {
    h_ = fnv1a64(s, h_);
    h_ = fnv1a64(kSep, h_);
    return *this;
  }
  ContentHasher& field(std::int64_t v) { return field(std::to_string(v)); }

  [[nodiscard]] std::uint64_t value() const { return h_; }
  [[nodiscard]] std::string hex() const { return hex64(h_); }

 private:
  static constexpr std::string_view kSep = "\x1f";
  std::uint64_t h_ = kFnv1aOffset;
};

/// The canonical rendering of a multi-field content key: a one-character
/// domain prefix (e.g. 'c' for sweep cells, 'k' for native kernels) followed
/// by the hex of the ContentHasher over `fields` in order. Every persistent
/// or shared cache that keys the same entity MUST derive its key through
/// this one function — the sweep journal and the serve result cache both do
/// (driver::journal_key), which is what guarantees they can never drift.
[[nodiscard]] std::string content_key(char prefix,
                                      const std::vector<std::string>& fields);

}  // namespace csr
