#pragma once

/// \file check.hpp
/// Lightweight precondition / invariant checking macros.
///
/// CSR_REQUIRE  — validates caller-supplied data; throws InvalidArgument.
/// CSR_EXPECT   — validates an API precondition; throws LogicError.
/// CSR_ENSURE   — validates an internal invariant / postcondition; throws
///                LogicError (these firing indicates a library bug).
///
/// All three are always on: the algorithms in this library are milliseconds
/// scale, and the Core Guidelines' advice (I.6, E.12) favours checked
/// interfaces over silent corruption.

#include <sstream>
#include <string>

#include "support/error.hpp"

namespace csr::detail {

[[noreturn]] inline void fail_require(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

[[noreturn]] inline void fail_logic(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw LogicError(os.str());
}

}  // namespace csr::detail

#define CSR_REQUIRE(cond, msg)                                      \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::csr::detail::fail_require(#cond, __FILE__, __LINE__, msg);  \
    }                                                               \
  } while (false)

#define CSR_EXPECT(cond, msg)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::csr::detail::fail_logic(#cond, __FILE__, __LINE__, msg);    \
    }                                                               \
  } while (false)

#define CSR_ENSURE(cond, msg)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::csr::detail::fail_logic(#cond, __FILE__, __LINE__, msg);    \
    }                                                               \
  } while (false)
