#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation for property tests and
/// random DFG generation. SplitMix64 is used because it is tiny, fast, has
/// a full 64-bit state cycle, and — unlike std::mt19937 seeded from a
/// temperamental seed_seq — produces identical streams on every platform,
/// which keeps property-test failures reproducible from the logged seed.

#include <cstdint>

namespace csr {

/// SplitMix64 PRNG (Steele, Lea, Flood 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

 private:
  std::uint64_t state_;
};

}  // namespace csr
