#pragma once

/// \file journal.hpp
/// A crash-safe, append-only, on-disk key→payload journal — the persistence
/// layer of the sweep driver's result cache. Design constraints, in order:
///
///   * **Crash safety.** A process killed mid-append must never corrupt the
///     records already on disk. The journal is therefore append-only, one
///     record per line, each carrying its own content checksum; `open()`
///     silently drops any torn or corrupt record (typically the killed
///     process's last partial line) and keeps everything before it.
///   * **Replayability.** Re-opening a journal replays every valid record
///     into memory; duplicate keys resolve last-writer-wins, so re-running a
///     cell simply supersedes its previous result.
///   * **Concurrency.** `append()` and `lookup()` are thread-safe within a
///     process (one writer mutex; records are composed into a single write
///     plus flush). Cross-process appenders are not supported — one sweep
///     owns one journal file at a time.
///
/// Record format (one line, three tab-separated fields):
///
///     <key> \t <fnv1a-hex checksum of key+payload> \t <escaped payload>
///
/// Payloads are escaped (`\\`, `\t`, `\n`, `\r`) so any byte sequence fits
/// on a line. Durability is flush-to-OS per record: the journal survives
/// process death (including SIGKILL), not kernel panics or power loss.

#include <cstddef>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace csr {

/// Escapes a payload for single-line storage (see file comment).
[[nodiscard]] std::string journal_escape(const std::string& payload);
/// Inverse of journal_escape; returns nullopt on malformed escapes.
[[nodiscard]] std::optional<std::string> journal_unescape(const std::string& line);

class ResultJournal {
 public:
  ResultJournal() = default;
  ResultJournal(const ResultJournal&) = delete;
  ResultJournal& operator=(const ResultJournal&) = delete;

  /// Opens (creating if absent) the journal at `path`, replaying every valid
  /// record into memory. Returns false — with the reason in `*error` — only
  /// when the file cannot be read or opened for append; corrupt records are
  /// not an error, they are counted in dropped_records().
  bool open(const std::string& path, std::string* error = nullptr);

  [[nodiscard]] bool is_open() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// The payload last recorded for `key`, if any.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& key) const;

  /// Copy of every (key, payload) entry in key order — the warm-start feed
  /// of in-memory caches layered above the journal (src/serve/ loads this
  /// into its sharded LRU at boot).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> snapshot() const;

  /// Appends one record and flushes it to the OS. Returns false when the
  /// journal is not open or the write failed (the in-memory entry is still
  /// updated so the running sweep keeps its result). `key` must be non-empty
  /// and free of tabs/newlines — ContentHasher hex keys always are.
  bool append(const std::string& key, const std::string& payload);

  /// Distinct keys currently known.
  [[nodiscard]] std::size_t size() const;

  /// Corrupt or torn records ignored by the last open().
  [[nodiscard]] std::size_t dropped_records() const { return dropped_; }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::string> entries_;
  std::ofstream out_;
  std::string path_;
  std::size_t dropped_ = 0;
};

}  // namespace csr
