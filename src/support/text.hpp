#pragma once

/// \file text.hpp
/// Small string utilities used by the DFG text format, the loop-IR printer
/// and the table-rendering benches. Kept dependency-free on purpose.

#include <string>
#include <string_view>
#include <vector>

namespace csr {

/// Strip leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True when `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Left-pad `s` with spaces to `width` (no-op when already wider).
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);

/// Right-pad `s` with spaces to `width` (no-op when already wider).
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

/// Escapes `s` for use inside a double-quoted Graphviz DOT string:
/// backslash and double quote are backslash-escaped, newlines become the
/// DOT line break "\n". Shared by the dfg/ and mdfg/ DOT exporters so node
/// names render identically (and always produce parseable DOT) in both.
[[nodiscard]] std::string dot_escape(std::string_view s);

}  // namespace csr
