#include "support/rational.hpp"

#include <cstdlib>
#include <numeric>
#include <ostream>
#include <sstream>

#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw OverflowError("int64 multiplication overflow");
  }
  return out;
}

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw OverflowError("int64 addition overflow");
  }
  return out;
}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  CSR_REQUIRE(den != 0, "rational denominator must be non-zero");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

std::int64_t Rational::floor() const {
  if (num_ >= 0) return num_ / den_;
  return -((-num_ + den_ - 1) / den_);
}

std::int64_t Rational::ceil() const { return -(-*this).floor(); }

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

Rational& Rational::operator+=(const Rational& rhs) {
  // Reduce before multiplying to keep intermediates small.
  const std::int64_t g = std::gcd(den_, rhs.den_);
  const std::int64_t lhs_scale = rhs.den_ / g;
  const std::int64_t rhs_scale = den_ / g;
  num_ = checked_add(checked_mul(num_, lhs_scale), checked_mul(rhs.num_, rhs_scale));
  den_ = checked_mul(den_, lhs_scale);
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) { return *this += -rhs; }

Rational& Rational::operator*=(const Rational& rhs) {
  const std::int64_t g1 = std::gcd(num_, rhs.den_);
  const std::int64_t g2 = std::gcd(rhs.num_, den_);
  num_ = checked_mul(num_ / g1, rhs.num_ / g2);
  den_ = checked_mul(den_ / g2, rhs.den_ / g1);
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  CSR_REQUIRE(!rhs.is_zero(), "rational division by zero");
  return *this *= Rational(rhs.den_, rhs.num_);
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // a.num/a.den <=> b.num/b.den with positive denominators. Cross products
  // of two int64 values can exceed 64 bits (the iteration-bound recovery
  // compares rationals with ~2^60 cross products), so widen to 128 bits.
  // The GCC/Clang extension type needs __extension__ under -Wpedantic.
  __extension__ using int128 = __int128;
  const int128 lhs = static_cast<int128>(a.num_) * b.den_;
  const int128 rhs = static_cast<int128>(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (!r.is_integer()) os << '/' << r.den();
  return os;
}

namespace {

// Smallest-denominator rational in an interval with explicit endpoint
// inclusivity — the classic continued-fraction descent. Each recursion step
// subtracts the floor and takes reciprocals, so endpoint magnitudes shrink;
// the exact comparisons above are 128-bit-safe.
Rational simplest_in_interval(const Rational& lo, bool lo_closed, const Rational& hi,
                              bool hi_closed) {
  // Smallest integer admitted by the lower endpoint.
  const std::int64_t z = lo_closed ? lo.ceil() : lo.floor() + 1;
  const Rational zr(z);
  if (zr < hi || (hi_closed && zr == hi)) return zr;

  // No integer inside: both endpoints share floor(lo), and lo − f > 0 unless
  // lo is an excluded integer — the z test above would have caught a closed
  // integer lo.
  const Rational f(lo.floor());
  const Rational lo_frac = lo - f;
  const Rational hi_frac = hi - f;
  if (lo_frac.is_zero()) {
    // Interval (f, hi): answer is f + 1/m for the smallest m ≥ 1/hi_frac
    // admitted by the reciprocal bound.
    const Rational inv = Rational(1) / hi_frac;
    const std::int64_t m = hi_closed ? inv.ceil() : inv.floor() + 1;
    return f + Rational(1, m);
  }
  // x ∈ (lo, hi) ⇔ 1/(x−f) ∈ (1/hi_frac, 1/lo_frac); inclusivity flips ends.
  const Rational inv = simplest_in_interval(Rational(1) / hi_frac, hi_closed,
                                            Rational(1) / lo_frac, lo_closed);
  return f + Rational(inv.den(), inv.num());
}

}  // namespace

Rational simplest_rational_in(const Rational& lo, const Rational& hi) {
  CSR_REQUIRE(lo < hi, "simplest_rational_in requires lo < hi");
  return simplest_in_interval(lo, /*lo_closed=*/false, hi, /*hi_closed=*/true);
}

}  // namespace csr
