#include "support/journal.hpp"

#include <sstream>

#include "observe/observe.hpp"
#include "support/hash.hpp"

namespace csr {

namespace {

std::string record_checksum(const std::string& key, const std::string& payload) {
  return ContentHasher().field(key).field(payload).hex();
}

/// Journal metrics (docs/OBSERVABILITY.md).
struct JournalMetrics {
  observe::Counter& replayed;
  observe::Counter& dropped;
  observe::Counter& appends;
  observe::Counter& append_failures;
  observe::Histogram& replay_seconds;

  static JournalMetrics& get() {
    static JournalMetrics metrics = [] {
      auto& reg = observe::MetricsRegistry::global();
      return JournalMetrics{
          reg.counter("csr_journal_records_replayed_total",
                      "Valid records loaded by journal open"),
          reg.counter("csr_journal_records_dropped_total",
                      "Malformed or checksum-failed records ignored on replay"),
          reg.counter("csr_journal_appends_total", "Records appended"),
          reg.counter("csr_journal_append_failures_total",
                      "Appends that could not reach the backing file"),
          reg.histogram("csr_journal_replay_seconds",
                        observe::latency_seconds_bounds(),
                        "Wall time of one journal open (replay included)"),
      };
    }();
    return metrics;
  }
};

bool valid_key(const std::string& key) {
  if (key.empty()) return false;
  for (const char c : key) {
    if (c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

}  // namespace

std::string journal_escape(const std::string& payload) {
  std::string out;
  out.reserve(payload.size());
  for (const char c : payload) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::optional<std::string> journal_unescape(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '\\') {
      out += line[i];
      continue;
    }
    if (++i == line.size()) return std::nullopt;  // dangling backslash
    switch (line[i]) {
      case '\\':
        out += '\\';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        return std::nullopt;
    }
  }
  return out;
}

bool ResultJournal::open(const std::string& path, std::string* error) {
  JournalMetrics& metrics = JournalMetrics::get();
  observe::Span span("journal", "open");
  observe::ScopedTimer timer(metrics.replay_seconds);
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  dropped_ = 0;
  path_ = path;
  if (out_.is_open()) out_.close();

  // Replay phase: every well-formed, checksum-valid line becomes an entry;
  // anything else (torn tail line of a killed writer, bit rot) is dropped.
  {
    std::ifstream in(path);
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      const std::size_t t1 = line.find('\t');
      const std::size_t t2 = t1 == std::string::npos ? t1 : line.find('\t', t1 + 1);
      if (t2 == std::string::npos) {
        ++dropped_;
        continue;
      }
      const std::string key = line.substr(0, t1);
      const std::string checksum = line.substr(t1 + 1, t2 - t1 - 1);
      const auto payload = journal_unescape(line.substr(t2 + 1));
      if (!payload || !valid_key(key) ||
          record_checksum(key, *payload) != checksum) {
        ++dropped_;
        continue;
      }
      entries_[key] = *payload;  // last writer wins
    }
    // A missing file is a fresh journal, not an error.
  }
  metrics.replayed.increment(entries_.size());
  metrics.dropped.increment(dropped_);
  span.arg("entries", static_cast<std::uint64_t>(entries_.size()))
      .arg("dropped", static_cast<std::uint64_t>(dropped_));

  out_.open(path, std::ios::app);
  if (!out_) {
    if (error != nullptr) *error = "cannot open journal for append: " + path;
    return false;
  }
  return true;
}

std::optional<std::string> ResultJournal::lookup(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool ResultJournal::append(const std::string& key, const std::string& payload) {
  JournalMetrics& metrics = JournalMetrics::get();
  CSR_SPAN("journal", "append");
  if (!valid_key(key)) {
    metrics.append_failures.increment();
    return false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_[key] = payload;
  if (!out_.is_open()) {
    metrics.append_failures.increment();
    return false;
  }
  // One composed write + flush per record: a crash can tear only the final
  // line, which the next open() detects by its checksum and drops.
  std::ostringstream record;
  record << key << '\t' << record_checksum(key, payload) << '\t'
         << journal_escape(payload) << '\n';
  out_ << record.str();
  out_.flush();
  if (!out_) {
    metrics.append_failures.increment();
    return false;
  }
  metrics.appends.increment();
  return true;
}

std::vector<std::pair<std::string, std::string>> ResultJournal::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

std::size_t ResultJournal::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace csr
