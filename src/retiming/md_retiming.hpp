#pragma once

/// \file md_retiming.hpp
/// Multidimensional (vector-delay) retiming over 2-D data-flow graphs,
/// after Elloumi et al. (PAPERS.md): r : V → Z² transforms each edge u→v to
///
///     d_r(e) = d(e) + r(u) − r(v)        (component-wise)
///
/// and is *legal* when every retimed delay vector stays lexicographically
/// non-negative. Full parallelism — every edge lex-positive, so one nest
/// iteration has no internal ordering at all — is achievable iff every
/// cycle with zero total row delay carries at least as many column delays
/// as edges.
///
/// **Engine.** The search reuses the shared 1-D difference-logic machinery
/// of retiming/opt.hpp per dimension through a *schedule projection*: with
/// a projection factor k exceeding any cycle's computation time plus the
/// total negative column weight, the 1-D graph G_s with d_s(e) =
/// k·d_row(e) + d_col(e) has
///   * d_s(e) ≥ 0 with d_s(e) = 0 exactly on lex-zero edges, and
///   * every row-carried cycle's period ratio below 1,
/// so the minimum period of G_s under 1-D retiming equals the minimum
/// *inner* initiation interval of the nest (row-carried dependences are
/// free: the previous row is always complete under row-major order), and a
/// 1-D retiming r_s lifts to the pure-column vector retiming
/// r(v) = (0, r_s(v)). Column-only retimings are exactly the ones the
/// row-major lowering (codegen/nested.hpp) can execute without skewing the
/// nest, and on the linearized 1-D view (mdfg/graph.hpp) they coincide
/// with ordinary 1-D retimings — which is why the heuristic (opt.hpp) and
/// exact (exact.hpp) 1-D engines both apply unchanged.

#include <cstdint>
#include <vector>

#include "mdfg/graph.hpp"
#include "retiming/retiming.hpp"

namespace csr {

/// A vector retiming r : V → Z². The engine only emits pure-column
/// retimings (row component 0 everywhere), but the type and the legality
/// checker handle general vectors.
class MdRetiming {
 public:
  explicit MdRetiming(std::size_t node_count) : values_(node_count) {}
  explicit MdRetiming(std::vector<MdDelay> values) : values_(std::move(values)) {}

  [[nodiscard]] std::size_t node_count() const { return values_.size(); }

  [[nodiscard]] const MdDelay& operator[](NodeId v) const;
  void set(NodeId v, MdDelay value);

  /// True when every row component is zero — the retimings the row-major
  /// lowering supports.
  [[nodiscard]] bool pure_column() const;

  /// The column components as a 1-D Retiming (requires pure_column()); on
  /// the linearized graph this *is* the vector retiming.
  [[nodiscard]] Retiming col_retiming() const;

  /// Subtracts the component-wise minimum so min row = min col = 0 — for
  /// pure-column retimings this matches 1-D normalization.
  [[nodiscard]] MdRetiming normalized() const;

  friend bool operator==(const MdRetiming&, const MdRetiming&) = default;

  [[nodiscard]] const std::vector<MdDelay>& values() const { return values_; }

 private:
  std::vector<MdDelay> values_;
};

/// True when r is legal for g: every retimed delay vector is
/// lexicographically ≥ (0,0).
[[nodiscard]] bool is_legal_md_retiming(const MdDataFlowGraph& g, const MdRetiming& r);

/// Applies r to g, producing the retimed MDFG G_r. Throws InvalidArgument
/// when r is illegal for g.
[[nodiscard]] MdDataFlowGraph apply_md_retiming(const MdDataFlowGraph& g,
                                                const MdRetiming& r);

/// True when every edge of g carries a lex-positive delay — the fully
/// parallel state (inner period 1 on unit-time graphs).
[[nodiscard]] bool fully_parallel(const MdDataFlowGraph& g);

/// The projection factor k used to fold delay vectors onto one dimension:
/// 1 + Σ_v t(v) + Σ_e max(0, −d_col(e)). Any k at least this large yields
/// the same engine results.
[[nodiscard]] std::int64_t md_projection_factor(const MdDataFlowGraph& g);

/// The projected 1-D graph G_s with d_s(e) = k·d_row(e) + d_col(e).
/// Throws InvalidArgument when g is illegal.
[[nodiscard]] DataFlowGraph md_projected_graph(const MdDataFlowGraph& g,
                                               std::int64_t k);

/// Result of the multidimensional minimum-period search.
struct MdOptimalRetiming {
  /// Minimum inner-loop initiation interval over column retimings (1 =
  /// fully parallel). Row-carried dependences never constrain it.
  std::int64_t period = 0;
  /// Normalized pure-column witness achieving it.
  MdRetiming retiming{0};
  /// Projection factor the search used.
  std::int64_t projection = 0;
  /// Smallest inner trip count for which the row-major lowering of this
  /// retiming is legal *and* period-exact: for cols ≥ min_cols every
  /// retimed linearized delay is ≥ 0 and row-carried edges stay non-zero.
  std::int64_t min_cols = 1;
  /// period == 1 — every retimed edge is lex-positive.
  bool fully_parallel = false;
};

/// Minimum inner period achievable by vector retiming, with a depth-minimal
/// pure-column witness (heuristic 1-D OPT on the projection — provably
/// optimal over column retimings). Throws InvalidArgument for illegal
/// graphs.
[[nodiscard]] MdOptimalRetiming md_minimum_period_retiming(const MdDataFlowGraph& g);

/// Same optimum certified by the exact branch-and-bound engine
/// (retiming/exact.hpp) on the projection.
[[nodiscard]] MdOptimalRetiming md_exact_optimal_retiming(const MdDataFlowGraph& g);

/// The certified minimum inner period only (for optimality-gap accounting).
[[nodiscard]] std::int64_t md_exact_minimum_period(const MdDataFlowGraph& g);

/// True when full parallelism (period 1) is achievable for g by vector
/// retiming — i.e. every zero-row-delay cycle has total column delay ≥ its
/// edge count. Always true for the random_mdfg generator's output.
[[nodiscard]] bool full_parallelism_achievable(const MdDataFlowGraph& g);

}  // namespace csr
