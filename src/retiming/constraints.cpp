#include "retiming/constraints.hpp"

#include <limits>

#include "support/check.hpp"

namespace csr {

std::optional<std::vector<std::int64_t>> solve_difference_constraints(
    std::size_t variable_count, const std::vector<DifferenceConstraint>& constraints) {
  for (const DifferenceConstraint& c : constraints) {
    CSR_REQUIRE(c.x < variable_count && c.y < variable_count,
                "difference constraint variable out of range");
  }
  // Overflow safety: relaxation accumulates sums of bounds, and bounds near
  // the int64 extremes would make `dist + bound` undefined behavior in plain
  // 64-bit arithmetic. All candidate distances are therefore computed in
  // 128-bit. Two floors guard the result:
  //
  //   * `floor` = Σ_c min(0, bound_c). Any walk that never closes a negative
  //     cycle shortens to a simple path, whose weight uses each constraint at
  //     most once and so is ≥ floor. A candidate strictly below floor proves
  //     a negative cycle — report infeasible immediately instead of letting
  //     the distances diverge.
  //   * a candidate ≥ floor but below INT64_MIN cannot be represented in the
  //     result vector (possible only when floor itself underflows int64);
  //     such systems are reported infeasible rather than returned saturated —
  //     the explicit signal callers can act on, never UB.
  using int128 = __int128;
  int128 floor = 0;
  for (const DifferenceConstraint& c : constraints) {
    if (c.bound < 0) floor += static_cast<int128>(c.bound);
  }

  // Implicit super-source with 0-weight edges to every variable: initialize
  // all distances to 0 and relax |V| times; a change on the extra pass means
  // a negative cycle.
  std::vector<std::int64_t> dist(variable_count, 0);
  bool changed = true;
  for (std::size_t pass = 0; pass <= variable_count && changed; ++pass) {
    changed = false;
    for (const DifferenceConstraint& c : constraints) {
      const int128 cand = static_cast<int128>(dist[c.x]) + c.bound;
      if (cand < dist[c.y]) {
        if (cand < floor) return std::nullopt;  // negative cycle, proven early
        if (cand < static_cast<int128>(std::numeric_limits<std::int64_t>::min())) {
          return std::nullopt;  // feasible values would not fit int64
        }
        dist[c.y] = static_cast<std::int64_t>(cand);
        changed = true;
      }
    }
  }
  if (changed) return std::nullopt;
  return dist;
}

}  // namespace csr
