#include "retiming/constraints.hpp"

#include "support/check.hpp"

namespace csr {

std::optional<std::vector<std::int64_t>> solve_difference_constraints(
    std::size_t variable_count, const std::vector<DifferenceConstraint>& constraints) {
  for (const DifferenceConstraint& c : constraints) {
    CSR_REQUIRE(c.x < variable_count && c.y < variable_count,
                "difference constraint variable out of range");
  }
  // Implicit super-source with 0-weight edges to every variable: initialize
  // all distances to 0 and relax |V| times; a change on the extra pass means
  // a negative cycle.
  std::vector<std::int64_t> dist(variable_count, 0);
  bool changed = true;
  for (std::size_t pass = 0; pass <= variable_count && changed; ++pass) {
    changed = false;
    for (const DifferenceConstraint& c : constraints) {
      const std::int64_t cand = dist[c.x] + c.bound;
      if (cand < dist[c.y]) {
        dist[c.y] = cand;
        changed = true;
      }
    }
  }
  if (changed) return std::nullopt;
  return dist;
}

}  // namespace csr
