#pragma once

/// \file retiming.hpp
/// Retiming functions r : V → Z under the *paper's* convention (Section 2.2):
/// r(u) is the number of delays pushed forward through u, so an edge u→v has
///
///     d_r(e) = d(e) + r(u) − r(v)
///
/// after retiming. (Leiserson–Saxe's circuit-retiming papers use the opposite
/// sign; the two are related by negation.) Under this convention, r(v) > 0
/// shifts copies of v *up* by r(v) iterations — each unit of retiming is one
/// software-pipelining step, and a normalized retiming (min r = 0) puts
/// exactly r(v) copies of v into the prologue and M_r − r(v) copies into the
/// epilogue, where M_r = max_u r(u).

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"

namespace csr {

class Retiming {
 public:
  /// The zero retiming over `node_count` nodes.
  explicit Retiming(std::size_t node_count) : values_(node_count, 0) {}

  /// Builds from explicit per-node values.
  explicit Retiming(std::vector<int> values) : values_(std::move(values)) {}

  [[nodiscard]] std::size_t node_count() const { return values_.size(); }

  [[nodiscard]] int operator[](NodeId v) const;
  void set(NodeId v, int value);

  /// max_u r(u) / min_u r(u); zero for an empty function.
  [[nodiscard]] int max_value() const;
  [[nodiscard]] int min_value() const;

  /// The set N_r of distinct retiming values, ascending. Its cardinality is
  /// the number of conditional registers Theorem 4.3 requires.
  [[nodiscard]] std::vector<int> distinct_values() const;

  /// Subtracts min_value() from every entry so the minimum becomes 0 — the
  /// *normalized* retiming used for prologue/epilogue size accounting.
  [[nodiscard]] Retiming normalized() const;

  /// True when `*this` is normalized (min value 0, or empty).
  [[nodiscard]] bool is_normalized() const;

  friend bool operator==(const Retiming&, const Retiming&) = default;

  [[nodiscard]] const std::vector<int>& values() const { return values_; }

 private:
  std::vector<int> values_;
};

/// True when r is legal for g: d(e) + r(u) − r(v) ≥ 0 on every edge.
[[nodiscard]] bool is_legal_retiming(const DataFlowGraph& g, const Retiming& r);

/// Applies r to g, producing the retimed graph G_r. Throws InvalidArgument
/// when r is illegal for g (some edge would go negative).
[[nodiscard]] DataFlowGraph apply_retiming(const DataFlowGraph& g, const Retiming& r);

/// Census of the code expansion a normalized retiming produces when the loop
/// is software-pipelined (one statement per node copy).
struct PipelineExpansion {
  /// Prologue statement copies: Σ_v r(v).
  std::int64_t prologue_statements = 0;
  /// Epilogue statement copies: Σ_v (M_r − r(v)).
  std::int64_t epilogue_statements = 0;
  /// Pipeline depth M_r = max_u r(u).
  int depth = 0;

  [[nodiscard]] std::int64_t total() const {
    return prologue_statements + epilogue_statements;
  }
};

/// Computes the expansion census for (g, r). `r` is normalized internally,
/// matching the paper's measurement (Section 2.2).
[[nodiscard]] PipelineExpansion pipeline_expansion(const DataFlowGraph& g,
                                                   const Retiming& r);

}  // namespace csr
