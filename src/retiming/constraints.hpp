#pragma once

/// \file constraints.hpp
/// Systems of difference constraints `x_j − x_i ≤ b`, solved by Bellman–Ford
/// shortest paths from a virtual source. Retiming legality and cycle-period
/// feasibility both reduce to such systems (CLRS §24.4 / Leiserson–Saxe).

#include <cstdint>
#include <optional>
#include <vector>

namespace csr {

/// The constraint `value[y] − value[x] ≤ bound`.
struct DifferenceConstraint {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::int64_t bound = 0;
};

/// Solves the system over `variable_count` variables. Returns one feasible
/// assignment (the Bellman–Ford shortest-path solution, which is the
/// component-wise maximal non-positive one), or std::nullopt when the system
/// is infeasible (a negative constraint cycle exists).
///
/// Relaxation is overflow-safe for bounds anywhere in the int64 range: the
/// arithmetic runs in 128-bit and a proven negative cycle is reported the
/// moment a distance drops below the simple-path floor Σ min(0, bound). The
/// (degenerate) case of a feasible system whose solution values would not fit
/// in int64 is also reported as std::nullopt — an explicit signal, never UB.
[[nodiscard]] std::optional<std::vector<std::int64_t>> solve_difference_constraints(
    std::size_t variable_count, const std::vector<DifferenceConstraint>& constraints);

}  // namespace csr
