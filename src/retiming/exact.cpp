#include "retiming/exact.hpp"

#include <utility>
#include <vector>

#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "observe/observe.hpp"
#include "retiming/constraints.hpp"
#include "retiming/min_storage.hpp"
#include "retiming/opt.hpp"
#include "retiming/wd.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {

/// Exact-solver metrics (docs/OBSERVABILITY.md).
struct ExactMetrics {
  observe::Counter& nodes;
  observe::Counter& backtracks;
  observe::Histogram& solve_seconds;

  static ExactMetrics& get() {
    static ExactMetrics metrics = [] {
      auto& reg = observe::MetricsRegistry::global();
      return ExactMetrics{
          reg.counter("csr_exact_nodes_total",
                      "Branch-and-bound nodes explored (difference-logic solves)"),
          reg.counter("csr_exact_backtracks_total",
                      "Branch-and-bound backtracks (infeasible solves)"),
          reg.histogram("csr_exact_solve_seconds",
                        observe::latency_seconds_bounds(),
                        "Wall time of one exact_optimal_retiming call"),
      };
    }();
    return metrics;
  }
};

/// One branch-and-bound node: an interval [lo, hi] of candidate indices that
/// may still contain the optimum, plus the incumbent found so far.
struct SearchState {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::optional<std::vector<std::int64_t>> incumbent_solution;
  std::size_t incumbent_index = 0;
};

/// Core search shared by both entry points: returns the index of the optimal
/// candidate and (optionally) its Bellman–Ford witness, filling `stats`.
SearchState search_minimum_period(const DataFlowGraph& g, const WDMatrices& wd,
                                  const std::vector<std::int64_t>& candidates,
                                  const ExactRetimingOptions& options,
                                  ExactRetimingStats* stats) {
  ExactMetrics& metrics = ExactMetrics::get();
  stats->candidates_total = candidates.size();

  // Bounding cut: the iteration bound B lower-bounds the period of any
  // static schedule, so candidates < ⌈B⌉ are infeasible without a solve.
  std::size_t lo = 0;
  if (const auto bound = iteration_bound(g)) {
    const std::int64_t min_period = bound->ceil();
    while (lo < candidates.size() - 1 && candidates[lo] < min_period) ++lo;
    stats->candidates_pruned = lo;
  }

  SearchState state{lo, candidates.size() - 1, std::nullopt, 0};
  // The maximum D value is feasible via the zero retiming (it is the current
  // cycle period of some path, hence ≥ cycle_period(g) retimed by identity),
  // so the interval always contains the optimum. Each solve kills one
  // subtree: ≤ ⌈log2 K⌉ + 1 nodes total.
  while (state.lo < state.hi) {
    CSR_ENSURE(stats->nodes_explored < options.max_nodes,
               "exact retiming search exceeded its node budget");
    const std::size_t mid = state.lo + (state.hi - state.lo) / 2;
    ++stats->nodes_explored;
    metrics.nodes.increment();
    auto solution = solve_difference_constraints(
        g.node_count(), period_constraint_system(g, wd, candidates[mid]));
    if (solution.has_value()) {
      state.incumbent_solution = std::move(solution);
      state.incumbent_index = mid;
      state.hi = mid;  // upper subtree dominated by the new incumbent
    } else {
      ++stats->backtracks;
      metrics.backtracks.increment();
      state.lo = mid + 1;  // lower subtree infeasible a fortiori
    }
  }
  // Interval collapsed: state.lo is optimal. Ensure we hold its witness
  // (the last solve may have been an infeasible one below it).
  if (!state.incumbent_solution.has_value() || state.incumbent_index != state.lo) {
    CSR_ENSURE(stats->nodes_explored < options.max_nodes,
               "exact retiming search exceeded its node budget");
    ++stats->nodes_explored;
    metrics.nodes.increment();
    state.incumbent_solution = solve_difference_constraints(
        g.node_count(), period_constraint_system(g, wd, candidates[state.lo]));
    state.incumbent_index = state.lo;
    CSR_ENSURE(state.incumbent_solution.has_value(),
               "search converged on an infeasible candidate period");
  }
  return state;
}

Retiming retiming_from(const std::vector<std::int64_t>& solution, std::size_t n) {
  std::vector<int> values(n);
  for (std::size_t v = 0; v < n; ++v) {
    values[v] = static_cast<int>(solution[v]);
  }
  return Retiming(std::move(values)).normalized();
}

}  // namespace

ExactRetiming exact_optimal_retiming(const DataFlowGraph& g,
                                     const ExactRetimingOptions& options) {
  CSR_REQUIRE(g.node_count() > 0, "cannot retime an empty graph");
  observe::Span span("retiming", "exact_optimal_retiming");
  span.arg("nodes", static_cast<std::uint64_t>(g.node_count()))
      .arg("edges", static_cast<std::uint64_t>(g.edge_count()));
  observe::ScopedTimer timer(ExactMetrics::get().solve_seconds);

  const WDMatrices wd(g);
  const auto candidates = wd.candidate_periods();
  CSR_ENSURE(!candidates.empty(), "no candidate periods for non-empty graph");

  ExactRetiming out{0, Retiming(g.node_count()), 0, {}};
  SearchState state =
      search_minimum_period(g, wd, candidates, options, &out.stats);
  out.period = candidates[state.incumbent_index];

  if (options.minimize_storage) {
    // Secondary objective: among all retimings achieving the certified
    // period, take one with minimum Σ_e d_r(e).
    auto witness = min_storage_retiming(g, wd, out.period);
    CSR_ENSURE(witness.has_value(),
               "storage minimization lost a certified-feasible period");
    out.retiming = std::move(*witness);
  } else {
    out.retiming = retiming_from(*state.incumbent_solution, g.node_count());
  }
  out.total_storage = total_delays_after(g, out.retiming);

  // Postconditions: the witness is legal and meets the certified period.
  CSR_ENSURE(is_legal_retiming(g, out.retiming), "exact witness is illegal");
  CSR_ENSURE(cycle_period(apply_retiming(g, out.retiming)) <= out.period,
             "exact witness exceeds the certified period");
  span.arg("min_period", out.period)
      .arg("bb_nodes", out.stats.nodes_explored)
      .arg("bb_backtracks", out.stats.backtracks);
  return out;
}

std::int64_t exact_minimum_period(const DataFlowGraph& g) {
  ExactRetimingOptions options;
  options.minimize_storage = false;
  return exact_optimal_retiming(g, options).period;
}

}  // namespace csr
