#include "retiming/wd.hpp"

#include <algorithm>
#include <limits>

#include "dfg/algorithms.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}

WDMatrices::WDMatrices(const DataFlowGraph& g) : n_(g.node_count()) {
  if (has_zero_delay_cycle(g)) {
    throw InvalidArgument("W/D matrices undefined: zero-delay cycle present");
  }

  // Lexicographic shortest path on (delay, −t(source-prefix)). `second`
  // accumulates −Σ t over every node of the path except the final one.
  std::vector<std::int64_t> first(n_ * n_, kInf);
  std::vector<std::int64_t> second(n_ * n_, 0);

  for (NodeId v = 0; v < n_; ++v) {
    first[idx(v, v)] = 0;
    second[idx(v, v)] = 0;
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    const std::int64_t w = edge.delay;
    const std::int64_t s = -static_cast<std::int64_t>(g.node(edge.from).time);
    const std::size_t i = idx(edge.from, edge.to);
    if (w < first[i] || (w == first[i] && s < second[i])) {
      first[i] = w;
      second[i] = s;
    }
  }

  for (NodeId k = 0; k < n_; ++k) {
    for (NodeId u = 0; u < n_; ++u) {
      const std::size_t uk = idx(u, k);
      if (first[uk] >= kInf) continue;
      for (NodeId v = 0; v < n_; ++v) {
        const std::size_t kv = idx(k, v);
        if (first[kv] >= kInf) continue;
        const std::size_t uv = idx(u, v);
        const std::int64_t cand_first = first[uk] + first[kv];
        const std::int64_t cand_second = second[uk] + second[kv];
        if (cand_first < first[uv] ||
            (cand_first == first[uv] && cand_second < second[uv])) {
          first[uv] = cand_first;
          second[uv] = cand_second;
        }
      }
    }
  }

  w_ = std::move(first);
  d_.resize(n_ * n_);
  reach_.resize(n_ * n_);
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v = 0; v < n_; ++v) {
      const std::size_t i = idx(u, v);
      reach_[i] = w_[i] < kInf;
      d_[i] = reach_[i] ? g.node(v).time - second[i] : 0;
    }
  }
}

bool WDMatrices::reachable(NodeId u, NodeId v) const {
  CSR_EXPECT(u < n_ && v < n_, "W/D index out of range");
  return reach_[idx(u, v)];
}

std::int64_t WDMatrices::w(NodeId u, NodeId v) const {
  CSR_EXPECT(reachable(u, v), "W(u,v) requested for unreachable pair");
  return w_[idx(u, v)];
}

std::int64_t WDMatrices::d(NodeId u, NodeId v) const {
  CSR_EXPECT(reachable(u, v), "D(u,v) requested for unreachable pair");
  return d_[idx(u, v)];
}

std::vector<std::int64_t> WDMatrices::candidate_periods() const {
  std::vector<std::int64_t> out;
  out.reserve(n_ * n_);
  for (std::size_t i = 0; i < n_ * n_; ++i) {
    if (reach_[i]) out.push_back(d_[i]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace csr
