#pragma once

/// \file exact.hpp
/// Exact optimal retiming by branch-and-bound over difference-logic systems.
///
/// The heuristic pipeline (opt.hpp) is already provably period-optimal for
/// pure retiming, but nothing in the export pipeline *certified* that — and
/// future engines (rotation, modulo, SMT-style schedulers) have no such
/// guarantee at all. This engine is the certificate: an independent solver
/// that minimizes the cycle period first and the total delay-register count
/// (Σ_e d_r(e), min_storage.hpp) second, and whose result every other engine
/// is differentially compared against via the `optimality_gap` export column.
///
/// Encoding. For a candidate period P the query "does a legal retiming with
/// cycle period ≤ P exist?" is the difference-logic system
/// period_constraint_system(g, wd, P): legality constraints r(v) − r(u) ≤
/// d(e) are unconditional, while each ordered pair (u,v) contributes a
/// *binarized* period constraint r(v) − r(u) ≤ W(u,v) − 1 that is active iff
/// D(u,v) > P. Feasibility of one system is decided exactly by the
/// overflow-safe Bellman–Ford core in constraints.hpp.
///
/// Branching. The candidate periods are the distinct finite D values
/// (wd.candidate_periods()); activation of the binarized constraints is
/// monotone in P (growing P only deactivates constraints), so feasibility is
/// monotone too. Each branch-and-bound node owns an interval of candidate
/// indices and branches on the median system: a feasible solve makes the
/// median the incumbent and *prunes the entire upper subtree* (dominated),
/// an infeasible solve is a backtrack that prunes the entire lower subtree
/// (all its systems are supersets of an infeasible one). The iteration bound
/// ⌈B⌉ (dfg/iteration_bound.hpp) prunes candidates below the rate bound
/// before any solve.
///
/// Termination bound. One subtree dies per solve, so the search explores at
/// most ⌈log2 K⌉ + 1 nodes for K surviving candidates — never more than
/// ⌈log2(n²)⌉ + 1 difference-logic solves for an n-node graph.

#include <cstdint>
#include <optional>

#include "dfg/graph.hpp"
#include "retiming/retiming.hpp"

namespace csr {

/// Knobs for the exact search.
struct ExactRetimingOptions {
  /// Hard cap on branch-and-bound nodes (feasibility solves). The log2
  /// termination bound keeps real searches far below this; hitting the cap
  /// throws InternalError (it would indicate a monotonicity violation).
  std::uint64_t max_nodes = 4096;
  /// When true (default), the optimal period is witnessed by a
  /// storage-minimal retiming (min_storage.hpp); when false, by the plain
  /// Bellman–Ford solution of the optimal system.
  bool minimize_storage = true;
};

/// Search statistics, also exported as csr_exact_* metrics.
struct ExactRetimingStats {
  std::uint64_t nodes_explored = 0;     ///< Difference-logic systems solved.
  std::uint64_t backtracks = 0;         ///< Infeasible solves (subtree pruned).
  std::uint64_t candidates_total = 0;   ///< Distinct finite D values.
  std::uint64_t candidates_pruned = 0;  ///< Cut below ⌈iteration bound⌉.
};

/// A certified optimum: no legal retiming of the graph achieves a smaller
/// cycle period, and among retimings achieving `period`, `retiming` has the
/// minimum total delay count when ExactRetimingOptions::minimize_storage.
struct ExactRetiming {
  std::int64_t period = 0;         ///< Provably minimal cycle period.
  Retiming retiming;               ///< Normalized witness achieving it.
  std::int64_t total_storage = 0;  ///< Σ_e d_r(e) of the witness.
  ExactRetimingStats stats;
};

/// Runs the exact search. Throws InvalidArgument for empty graphs or graphs
/// with zero-delay cycles (same contract as minimum_period_retiming).
[[nodiscard]] ExactRetiming exact_optimal_retiming(
    const DataFlowGraph& g, const ExactRetimingOptions& options = {});

/// Fast path for gap computation: the certified minimum cycle period only,
/// skipping the storage-minimal witness.
[[nodiscard]] std::int64_t exact_minimum_period(const DataFlowGraph& g);

}  // namespace csr
