#pragma once

/// \file diagnostics.hpp
/// Human-readable explanations for retiming and scheduling outcomes: which
/// edges an illegal retiming breaks, and which zero-delay path forms the
/// cycle-period bottleneck. Used by the CLI tooling and examples; the
/// checkers in retiming.hpp stay boolean for the hot paths.

#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "retiming/retiming.hpp"

namespace csr {

/// One violated-edge record of an illegal retiming.
struct RetimingViolation {
  EdgeId edge = 0;
  int resulting_delay = 0;
  std::string description;  ///< "A->B: 1 + r(A)=0 − r(B)=2 = −1"
};

/// Every edge d_r(e) < 0 under `r`; empty iff the retiming is legal.
[[nodiscard]] std::vector<RetimingViolation> explain_retiming(const DataFlowGraph& g,
                                                              const Retiming& r);

/// A longest zero-delay path (the cycle-period witness), as node ids in
/// execution order. Its total computation time equals cycle_period(g).
/// Throws InvalidArgument on zero-delay cycles; empty for empty graphs.
[[nodiscard]] std::vector<NodeId> critical_path(const DataFlowGraph& g);

/// "Mf1 -> Af2 -> Mf3 (time 3)" rendering of a node path.
[[nodiscard]] std::string format_path(const DataFlowGraph& g,
                                      const std::vector<NodeId>& path);

}  // namespace csr
