#include "retiming/md_retiming.hpp"

#include <algorithm>

#include "retiming/constraints.hpp"
#include "retiming/exact.hpp"
#include "retiming/opt.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

const MdDelay& MdRetiming::operator[](NodeId v) const {
  CSR_EXPECT(v < values_.size(), "retiming index out of range");
  return values_[v];
}

void MdRetiming::set(NodeId v, MdDelay value) {
  CSR_EXPECT(v < values_.size(), "retiming index out of range");
  values_[v] = value;
}

bool MdRetiming::pure_column() const {
  return std::all_of(values_.begin(), values_.end(),
                     [](const MdDelay& d) { return d.row == 0; });
}

Retiming MdRetiming::col_retiming() const {
  CSR_REQUIRE(pure_column(), "col_retiming() requires a pure-column retiming");
  std::vector<int> cols;
  cols.reserve(values_.size());
  for (const MdDelay& d : values_) cols.push_back(d.col);
  return Retiming(std::move(cols));
}

MdRetiming MdRetiming::normalized() const {
  if (values_.empty()) return *this;
  int min_row = values_.front().row;
  int min_col = values_.front().col;
  for (const MdDelay& d : values_) {
    min_row = std::min(min_row, d.row);
    min_col = std::min(min_col, d.col);
  }
  std::vector<MdDelay> out;
  out.reserve(values_.size());
  for (const MdDelay& d : values_) {
    out.push_back(MdDelay{d.row - min_row, d.col - min_col});
  }
  return MdRetiming(std::move(out));
}

namespace {

MdDelay retimed_delay(const MdEdge& e, const MdRetiming& r) {
  return MdDelay{e.delay.row + r[e.from].row - r[e.to].row,
                 e.delay.col + r[e.from].col - r[e.to].col};
}

/// Smallest integer c with c·row + col ≥ 1 for a row-carried edge.
std::int64_t min_cols_for(std::int64_t row, std::int64_t col) {
  const std::int64_t num = 1 - col;
  // row ≥ 1; C++ division truncates toward zero, so add 1 only for a
  // positive remainder to get the ceiling.
  return num / row + (num % row > 0 ? 1 : 0);
}

/// min_cols over one graph's edges (original or retimed view).
std::int64_t min_cols_of(const MdDataFlowGraph& g) {
  std::int64_t cols = 1;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const MdDelay& d = g.edge(e).delay;
    if (d.row >= 1) cols = std::max(cols, min_cols_for(d.row, d.col));
  }
  return cols;
}

MdOptimalRetiming lift_projection(const MdDataFlowGraph& g, std::int64_t k,
                                  std::int64_t period, const Retiming& r_s) {
  MdOptimalRetiming out;
  out.period = period;
  out.projection = k;
  const Retiming cols = r_s.normalized();
  std::vector<MdDelay> values;
  values.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    values.push_back(MdDelay{0, cols[v]});
  }
  out.retiming = MdRetiming(std::move(values));
  CSR_ENSURE(is_legal_md_retiming(g, out.retiming),
             "projected retiming lifted to an illegal vector retiming");
  const MdDataFlowGraph retimed = apply_md_retiming(g, out.retiming);
  out.fully_parallel = fully_parallel(retimed);
  out.min_cols = std::max(min_cols_of(g), min_cols_of(retimed));
  return out;
}

}  // namespace

bool is_legal_md_retiming(const MdDataFlowGraph& g, const MdRetiming& r) {
  if (r.node_count() != g.node_count()) return false;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!lex_nonneg(retimed_delay(g.edge(e), r))) return false;
  }
  return true;
}

MdDataFlowGraph apply_md_retiming(const MdDataFlowGraph& g, const MdRetiming& r) {
  if (!is_legal_md_retiming(g, r)) {
    throw InvalidArgument("illegal multidimensional retiming for graph '" +
                          g.name() + "'");
  }
  MdDataFlowGraph out(g.name());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.add_node(g.node(v).name, g.node(v).time);
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const MdEdge& edge = g.edge(e);
    out.add_edge(edge.from, edge.to, retimed_delay(edge, r));
  }
  return out;
}

bool fully_parallel(const MdDataFlowGraph& g) {
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!lex_positive(g.edge(e).delay)) return false;
  }
  return true;
}

std::int64_t md_projection_factor(const MdDataFlowGraph& g) {
  std::int64_t k = 1 + g.total_time();
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const int col = g.edge(e).delay.col;
    if (col < 0) k += -static_cast<std::int64_t>(col);
  }
  return k;
}

DataFlowGraph md_projected_graph(const MdDataFlowGraph& g, std::int64_t k) {
  const auto problems = g.validate();
  if (!problems.empty()) {
    throw InvalidArgument("illegal MDFG '" + g.name() + "': " + problems.front());
  }
  DataFlowGraph out(g.name());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.add_node(g.node(v).name, g.node(v).time);
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const MdEdge& edge = g.edge(e);
    const std::int64_t d = k * edge.delay.row + edge.delay.col;
    if (d < 0 || d > INT32_MAX) {
      throw InvalidArgument("projected delay out of range on edge " +
                            g.node(edge.from).name + "->" + g.node(edge.to).name);
    }
    out.add_edge(edge.from, edge.to, static_cast<int>(d));
  }
  return out;
}

MdOptimalRetiming md_minimum_period_retiming(const MdDataFlowGraph& g) {
  const std::int64_t k = md_projection_factor(g);
  const DataFlowGraph projected = md_projected_graph(g, k);
  const OptimalRetiming opt = minimum_period_retiming(projected);
  return lift_projection(g, k, opt.period, opt.retiming);
}

MdOptimalRetiming md_exact_optimal_retiming(const MdDataFlowGraph& g) {
  const std::int64_t k = md_projection_factor(g);
  const DataFlowGraph projected = md_projected_graph(g, k);
  const ExactRetiming exact = exact_optimal_retiming(projected);
  return lift_projection(g, k, exact.period, exact.retiming);
}

std::int64_t md_exact_minimum_period(const MdDataFlowGraph& g) {
  const std::int64_t k = md_projection_factor(g);
  return exact_minimum_period(md_projected_graph(g, k));
}

bool full_parallelism_achievable(const MdDataFlowGraph& g) {
  // Full parallelism asks for a column retiming making every zero-row edge
  // lex-positive (row-carried edges stay row-carried under column
  // retiming): r(v) − r(u) ≤ d_col(e) − 1 for every d_row = 0 edge — one
  // difference-logic system per dimension, solved by the shared
  // Bellman–Ford core.
  std::vector<DifferenceConstraint> constraints;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const MdEdge& edge = g.edge(e);
    if (edge.delay.row != 0) continue;
    constraints.push_back(DifferenceConstraint{edge.from, edge.to,
                                               std::int64_t{edge.delay.col} - 1});
  }
  return solve_difference_constraints(g.node_count(), constraints).has_value();
}

}  // namespace csr
