#pragma once

/// \file min_storage.hpp
/// Storage-minimal retiming (Leiserson–Saxe §8): among all retimings
/// achieving a target cycle period, find one minimizing the total number of
/// delay registers Σ_e d_r(e). Code size is the paper's metric, but its
/// introduction points at memory-constrained follow-up work [3,10]; this
/// solver exposes the data-storage axis of the same design space (see also
/// codesize/storage.hpp).
///
/// Formulation: Σ_e d_r(e) = Σ_e d(e) + Σ_v (outdeg(v) − indeg(v))·r(v), a
/// linear objective over the difference-constraint polytope
/// {r : r(y) − r(x) ≤ b_xy} of legality + period constraints. Its LP dual is
/// an uncapacitated min-cost transshipment on the constraint graph with
/// node supplies c_v = outdeg(v) − indeg(v); we solve it with successive
/// shortest paths (Bellman–Ford potentials once, then Dijkstra on reduced
/// costs) and read the optimal retiming off the final potentials.

#include <optional>

#include "dfg/graph.hpp"
#include "retiming/retiming.hpp"
#include "retiming/wd.hpp"

namespace csr {

/// A retiming achieving cycle period ≤ `period` with the minimum possible
/// total delay count, or std::nullopt when the period is infeasible.
/// The result is normalized.
[[nodiscard]] std::optional<Retiming> min_storage_retiming(const DataFlowGraph& g,
                                                           const WDMatrices& wd,
                                                           std::int64_t period);

[[nodiscard]] std::optional<Retiming> min_storage_retiming(const DataFlowGraph& g,
                                                           std::int64_t period);

/// Σ_e d_r(e) for a legal retiming — the quantity the solver minimizes.
[[nodiscard]] std::int64_t total_delays_after(const DataFlowGraph& g, const Retiming& r);

}  // namespace csr
