#include "retiming/retiming.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

int Retiming::operator[](NodeId v) const {
  CSR_EXPECT(v < values_.size(), "retiming index out of range");
  return values_[v];
}

void Retiming::set(NodeId v, int value) {
  CSR_EXPECT(v < values_.size(), "retiming index out of range");
  values_[v] = value;
}

int Retiming::max_value() const {
  if (values_.empty()) return 0;
  return *std::max_element(values_.begin(), values_.end());
}

int Retiming::min_value() const {
  if (values_.empty()) return 0;
  return *std::min_element(values_.begin(), values_.end());
}

std::vector<int> Retiming::distinct_values() const {
  std::vector<int> vals = values_;
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

Retiming Retiming::normalized() const {
  const int lo = min_value();
  std::vector<int> vals = values_;
  for (int& v : vals) v -= lo;
  return Retiming(std::move(vals));
}

bool Retiming::is_normalized() const { return values_.empty() || min_value() == 0; }

bool is_legal_retiming(const DataFlowGraph& g, const Retiming& r) {
  if (r.node_count() != g.node_count()) return false;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.delay + r[edge.from] - r[edge.to] < 0) return false;
  }
  return true;
}

DataFlowGraph apply_retiming(const DataFlowGraph& g, const Retiming& r) {
  CSR_REQUIRE(r.node_count() == g.node_count(),
              "retiming size does not match graph");
  DataFlowGraph out = g;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    const int new_delay = edge.delay + r[edge.from] - r[edge.to];
    CSR_REQUIRE(new_delay >= 0, "illegal retiming: edge " + g.node(edge.from).name +
                                    "->" + g.node(edge.to).name + " would have delay " +
                                    std::to_string(new_delay));
    out.set_delay(e, new_delay);
  }
  return out;
}

PipelineExpansion pipeline_expansion(const DataFlowGraph& g, const Retiming& r) {
  CSR_REQUIRE(r.node_count() == g.node_count(),
              "retiming size does not match graph");
  const Retiming norm = r.normalized();
  PipelineExpansion census;
  census.depth = norm.max_value();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    census.prologue_statements += norm[v];
    census.epilogue_statements += census.depth - norm[v];
  }
  return census;
}

}  // namespace csr
