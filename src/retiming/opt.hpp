#pragma once

/// \file opt.hpp
/// Minimum-cycle-period retiming (Leiserson–Saxe OPT, adapted to the paper's
/// sign convention) and depth-minimal retiming refinement.
///
/// Retiming is the paper's model of software pipelining: each unit of r(v) is
/// one pipelining step for node v, M_r = max r is the pipeline depth, and the
/// prologue/epilogue cost grows with M_r. After reaching the minimum period
/// we therefore also *minimize the retiming spread* (and thus M_r) — a
/// shallower pipeline with the same period strictly dominates for code size.

#include <optional>
#include <vector>

#include "dfg/graph.hpp"
#include "retiming/constraints.hpp"
#include "retiming/retiming.hpp"
#include "retiming/wd.hpp"

namespace csr {

/// The base constraint system for "legal retiming with cycle period ≤ period".
/// Variables 0..n−1 are r(v). Under the paper's convention d_r(e) =
/// d(e) + r(u) − r(v):
///   legality:      r(v) − r(u) ≤ d(e)                       for every edge
///   period bound:  r(v) − r(u) ≤ W(u,v) − 1  whenever D(u,v) > period.
/// Shared by the heuristic OPT search, the min-storage LP, and the exact
/// branch-and-bound engine (retiming/exact.hpp). `wd` must belong to `g`.
[[nodiscard]] std::vector<DifferenceConstraint> period_constraint_system(
    const DataFlowGraph& g, const WDMatrices& wd, std::int64_t period);

/// Finds a legal retiming achieving cycle period ≤ `period`, or std::nullopt
/// when none exists. The result is normalized. `wd` must belong to `g`.
[[nodiscard]] std::optional<Retiming> feasible_retiming(const DataFlowGraph& g,
                                                        const WDMatrices& wd,
                                                        std::int64_t period);

/// Convenience overload computing W/D internally.
[[nodiscard]] std::optional<Retiming> feasible_retiming(const DataFlowGraph& g,
                                                        std::int64_t period);

/// Like feasible_retiming, but among all retimings achieving `period`
/// returns one whose spread max r − min r is minimal — this minimizes the
/// pipeline depth M_r of the normalized retiming and with it the
/// prologue/epilogue code expansion. Binary-searches the spread with an
/// extra variable pinned as the minimum.
[[nodiscard]] std::optional<Retiming> min_depth_retiming(const DataFlowGraph& g,
                                                         const WDMatrices& wd,
                                                         std::int64_t period);

[[nodiscard]] std::optional<Retiming> min_depth_retiming(const DataFlowGraph& g,
                                                         std::int64_t period);

/// Result of the minimum-period search.
struct OptimalRetiming {
  std::int64_t period = 0;  ///< Minimum achievable cycle period.
  Retiming retiming;        ///< Normalized, depth-minimal retiming achieving it.
};

/// Minimum cycle period achievable by retiming `g`, with a depth-minimal
/// witness. Throws InvalidArgument for graphs with zero-delay cycles.
[[nodiscard]] OptimalRetiming minimum_period_retiming(const DataFlowGraph& g);

}  // namespace csr
