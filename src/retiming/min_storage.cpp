#include "retiming/min_storage.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "dfg/algorithms.hpp"
#include "retiming/constraints.hpp"
#include "retiming/opt.hpp"
#include "support/check.hpp"

namespace csr {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

/// One residual arc of the transshipment network. Forward arcs are the
/// difference constraints (uncapacitated); each carries a flow whose
/// reverse direction is traversable at cost −cost up to `flow`.
struct Arc {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::int64_t cost = 0;
  std::int64_t flow = 0;
};

/// Successive-shortest-paths state: Dijkstra over reduced costs.
struct PathStep {
  std::int32_t arc = -1;   // arc index used to reach the node
  bool forward = true;     // direction it was traversed in
};

}  // namespace

std::int64_t total_delays_after(const DataFlowGraph& g, const Retiming& r) {
  CSR_REQUIRE(is_legal_retiming(g, r), "retiming is not legal for this graph");
  std::int64_t total = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    total += edge.delay + r[edge.from] - r[edge.to];
  }
  return total;
}

std::optional<Retiming> min_storage_retiming(const DataFlowGraph& g,
                                             const WDMatrices& wd,
                                             std::int64_t period) {
  CSR_REQUIRE(wd.size() == g.node_count(), "W/D matrices do not match graph");
  const std::size_t n = g.node_count();
  if (n == 0) return Retiming(0);

  // Difference constraints r(y) − r(x) ≤ b: legality + period (the shared
  // system from opt.hpp — identical to what the OPT search solves).
  std::vector<Arc> arcs;
  const std::vector<DifferenceConstraint> constraints =
      period_constraint_system(g, wd, period);

  // Feasibility + initial potentials (Bellman–Ford solution π satisfies
  // π_y − π_x ≤ b, i.e. every reduced cost b + π_x − π_y ≥ 0).
  const auto initial = solve_difference_constraints(n, constraints);
  if (!initial) return std::nullopt;
  std::vector<std::int64_t> pi = *initial;

  arcs.reserve(constraints.size());
  for (const DifferenceConstraint& c : constraints) {
    arcs.push_back(Arc{c.x, c.y, c.bound, 0});
  }
  std::vector<std::vector<std::int32_t>> incident(n);
  for (std::int32_t a = 0; a < static_cast<std::int32_t>(arcs.size()); ++a) {
    incident[arcs[static_cast<std::size_t>(a)].x].push_back(a);
    incident[arcs[static_cast<std::size_t>(a)].y].push_back(a);
  }

  // Supplies: minimizing Σ d_r = Σ d + Σ (outdeg − indeg)·r, so node v
  // supplies c_v = outdeg(v) − indeg(v) units of flow.
  std::vector<std::int64_t> excess(n, 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    ++excess[g.edge(e).from];
    --excess[g.edge(e).to];
  }

  // Successive shortest paths with Dijkstra on reduced costs.
  std::vector<std::int64_t> dist(n);
  std::vector<PathStep> parent(n);
  std::vector<bool> done(n);
  while (true) {
    NodeId source = static_cast<NodeId>(n);
    for (NodeId v = 0; v < n; ++v) {
      if (excess[v] > 0) {
        source = v;
        break;
      }
    }
    if (source == static_cast<NodeId>(n)) break;

    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(done.begin(), done.end(), false);
    std::fill(parent.begin(), parent.end(), PathStep{});
    dist[source] = 0;
    using Entry = std::pair<std::int64_t, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    queue.push({0, source});
    while (!queue.empty()) {
      const auto [d, v] = queue.top();
      queue.pop();
      if (done[v]) continue;
      done[v] = true;
      for (const std::int32_t a : incident[v]) {
        const Arc& arc = arcs[static_cast<std::size_t>(a)];
        if (arc.x == v) {  // forward traversal, uncapacitated
          const std::int64_t reduced = arc.cost + pi[arc.x] - pi[arc.y];
          CSR_ENSURE(reduced >= 0, "negative reduced cost on forward arc");
          if (d + reduced < dist[arc.y]) {
            dist[arc.y] = d + reduced;
            parent[arc.y] = PathStep{a, true};
            queue.push({dist[arc.y], arc.y});
          }
        } else if (arc.flow > 0) {  // reverse traversal up to the flow
          const std::int64_t reduced = -arc.cost + pi[arc.y] - pi[arc.x];
          CSR_ENSURE(reduced >= 0, "negative reduced cost on reverse arc");
          if (d + reduced < dist[arc.x]) {
            dist[arc.x] = d + reduced;
            parent[arc.x] = PathStep{a, false};
            queue.push({dist[arc.x], arc.x});
          }
        }
      }
    }

    // Closest reachable deficit node.
    NodeId sink = static_cast<NodeId>(n);
    for (NodeId v = 0; v < n; ++v) {
      if (excess[v] < 0 && dist[v] < kInf &&
          (sink == static_cast<NodeId>(n) || dist[v] < dist[sink])) {
        sink = v;
      }
    }
    CSR_ENSURE(sink != static_cast<NodeId>(n),
               "transshipment supply cannot reach any deficit");

    // Path capacity: reverse arcs bound the push; forward arcs do not.
    std::int64_t delta = std::min(excess[source], -excess[sink]);
    for (NodeId v = sink; v != source;) {
      const PathStep step = parent[v];
      const Arc& arc = arcs[static_cast<std::size_t>(step.arc)];
      if (!step.forward) delta = std::min(delta, arc.flow);
      v = step.forward ? arc.x : arc.y;
    }
    CSR_ENSURE(delta > 0, "degenerate augmentation");
    for (NodeId v = sink; v != source;) {
      const PathStep step = parent[v];
      Arc& arc = arcs[static_cast<std::size_t>(step.arc)];
      arc.flow += step.forward ? delta : -delta;
      v = step.forward ? arc.x : arc.y;
    }
    excess[source] -= delta;
    excess[sink] += delta;

    // Potential update keeps all residual reduced costs non-negative:
    // every node moves by min(dist, dist[sink]) — capping at the sink
    // distance covers nodes the search did not reach.
    const std::int64_t cap = dist[sink];
    for (NodeId v = 0; v < n; ++v) {
      pi[v] += std::min(dist[v], cap);
    }
  }

  // Complementary slackness: π is an optimal primal solution.
  std::vector<int> values(n);
  for (NodeId v = 0; v < n; ++v) {
    values[v] = static_cast<int>(pi[v]);
  }
  Retiming result = Retiming(std::move(values)).normalized();
  CSR_ENSURE(is_legal_retiming(g, result), "min-storage retiming is illegal");
  CSR_ENSURE(cycle_period(apply_retiming(g, result)) <= period,
             "min-storage retiming misses the period");
  return result;
}

std::optional<Retiming> min_storage_retiming(const DataFlowGraph& g,
                                             std::int64_t period) {
  return min_storage_retiming(g, WDMatrices(g), period);
}

}  // namespace csr
