#include "retiming/opt.hpp"

#include <algorithm>

#include "dfg/algorithms.hpp"
#include "observe/observe.hpp"
#include "retiming/constraints.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {

/// Retiming-solver metrics (docs/OBSERVABILITY.md).
struct RetimingMetrics {
  observe::Counter& feasibility_checks;
  observe::Counter& solutions;
  observe::Histogram& solve_seconds;

  static RetimingMetrics& get() {
    static RetimingMetrics metrics = [] {
      auto& reg = observe::MetricsRegistry::global();
      return RetimingMetrics{
          reg.counter("csr_retiming_feasibility_checks_total",
                      "Difference-constraint systems solved"),
          reg.counter("csr_retiming_solutions_total",
                      "Feasibility checks that produced a retiming"),
          reg.histogram("csr_retiming_solve_seconds",
                        observe::latency_seconds_bounds(),
                        "Wall time of one minimum_period_retiming call"),
      };
    }();
    return metrics;
  }
};

Retiming from_solution(const std::vector<std::int64_t>& solution, std::size_t n) {
  std::vector<int> values(n);
  for (std::size_t v = 0; v < n; ++v) {
    values[v] = static_cast<int>(solution[v]);
  }
  return Retiming(std::move(values)).normalized();
}

/// Feasibility with the additional requirement spread ≤ k, enforced through a
/// virtual minimum variable z (index n): r(z) ≤ r(v) ≤ r(z) + k for all v.
std::optional<Retiming> spread_bounded_retiming(const DataFlowGraph& g,
                                                const WDMatrices& wd,
                                                std::int64_t period, std::int64_t k) {
  auto cs = period_constraint_system(g, wd, period);
  const std::uint32_t z = static_cast<std::uint32_t>(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    cs.push_back({v, z, 0});  // r(z) − r(v) ≤ 0
    cs.push_back({z, v, k});  // r(v) − r(z) ≤ k
  }
  const auto solution = solve_difference_constraints(g.node_count() + 1, cs);
  if (!solution) return std::nullopt;
  return from_solution(*solution, g.node_count());
}

}  // namespace

std::vector<DifferenceConstraint> period_constraint_system(const DataFlowGraph& g,
                                                           const WDMatrices& wd,
                                                           std::int64_t period) {
  std::vector<DifferenceConstraint> cs;
  cs.reserve(g.edge_count() + g.node_count() * g.node_count() / 4);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    cs.push_back({edge.from, edge.to, edge.delay});
  }
  const std::size_t n = g.node_count();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (!wd.reachable(u, v)) continue;
      if (wd.d(u, v) > period) {
        cs.push_back({u, v, wd.w(u, v) - 1});
      }
    }
  }
  return cs;
}

std::optional<Retiming> feasible_retiming(const DataFlowGraph& g, const WDMatrices& wd,
                                          std::int64_t period) {
  CSR_REQUIRE(wd.size() == g.node_count(), "W/D matrices do not match graph");
  RetimingMetrics& metrics = RetimingMetrics::get();
  metrics.feasibility_checks.increment();
  const auto solution =
      solve_difference_constraints(g.node_count(), period_constraint_system(g, wd, period));
  if (!solution) return std::nullopt;
  metrics.solutions.increment();
  return from_solution(*solution, g.node_count());
}

std::optional<Retiming> feasible_retiming(const DataFlowGraph& g, std::int64_t period) {
  return feasible_retiming(g, WDMatrices(g), period);
}

std::optional<Retiming> min_depth_retiming(const DataFlowGraph& g, const WDMatrices& wd,
                                           std::int64_t period) {
  observe::Span span("retiming", "min_depth_retiming");
  span.arg("nodes", static_cast<std::uint64_t>(g.node_count()))
      .arg("period", period);
  const auto unconstrained = feasible_retiming(g, wd, period);
  if (!unconstrained) return std::nullopt;
  // The unconstrained witness bounds the answer; binary search the spread.
  std::int64_t lo = 0;
  std::int64_t hi = unconstrained->max_value();  // normalized: spread == max
  std::optional<Retiming> best = unconstrained;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (auto r = spread_bounded_retiming(g, wd, period, mid)) {
      best = std::move(r);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  CSR_ENSURE(best.has_value(), "spread search lost its witness");
  return best;
}

std::optional<Retiming> min_depth_retiming(const DataFlowGraph& g, std::int64_t period) {
  return min_depth_retiming(g, WDMatrices(g), period);
}

OptimalRetiming minimum_period_retiming(const DataFlowGraph& g) {
  CSR_REQUIRE(g.node_count() > 0, "cannot retime an empty graph");
  observe::Span span("retiming", "minimum_period_retiming");
  span.arg("nodes", static_cast<std::uint64_t>(g.node_count()))
      .arg("edges", static_cast<std::uint64_t>(g.edge_count()));
  observe::ScopedTimer timer(RetimingMetrics::get().solve_seconds);
  const WDMatrices wd(g);
  const auto candidates = wd.candidate_periods();
  CSR_ENSURE(!candidates.empty(), "no candidate periods for non-empty graph");

  // The maximum D value is always feasible (the zero retiming achieves the
  // current cycle period, which is some D entry); binary search the smallest
  // feasible candidate. Feasibility is monotone in the period.
  std::size_t lo = 0;
  std::size_t hi = candidates.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feasible_retiming(g, wd, candidates[mid]).has_value()) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  OptimalRetiming out{candidates[lo], Retiming(g.node_count())};
  auto witness = min_depth_retiming(g, wd, out.period);
  CSR_ENSURE(witness.has_value(), "binary search returned infeasible period");
  out.retiming = std::move(*witness);

  // Postcondition: the witness really achieves the period.
  CSR_ENSURE(cycle_period(apply_retiming(g, out.retiming)) <= out.period,
             "retimed graph exceeds the computed minimum period");
  span.arg("min_period", out.period);
  return out;
}

}  // namespace csr
