#pragma once

/// \file wd.hpp
/// The W and D matrices of Leiserson–Saxe retiming:
///
///   W(u,v) = min  { d(p) : p a path u ⇝ v }
///   D(u,v) = max  { t(p) : p a path u ⇝ v with d(p) = W(u,v) }
///
/// where d(p) sums edge delays and t(p) sums node times *including both
/// endpoints*. D(u,u) = t(u) via the empty path. The matrices drive the
/// OPT-style minimum-cycle-period retiming: after retiming r, the cycle
/// period is ≤ c iff every pair with D(u,v) > c keeps at least one delay
/// between u and v.
///
/// Both are computed with one lexicographic Floyd–Warshall on edge weights
/// (d(e), −t(source)); legal DFGs have no zero-delay cycles, so every cycle
/// is lexicographically positive and shortest paths are well defined.

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"

namespace csr {

/// Dense pair of matrices; entries for unreachable pairs are flagged.
class WDMatrices {
 public:
  /// Computes W/D for a legal graph. Throws InvalidArgument when the graph
  /// has a zero-delay cycle.
  explicit WDMatrices(const DataFlowGraph& g);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// True when some path u ⇝ v exists.
  [[nodiscard]] bool reachable(NodeId u, NodeId v) const;

  /// W(u,v); requires reachable(u,v).
  [[nodiscard]] std::int64_t w(NodeId u, NodeId v) const;

  /// D(u,v); requires reachable(u,v).
  [[nodiscard]] std::int64_t d(NodeId u, NodeId v) const;

  /// All distinct finite D values in ascending order — the candidate cycle
  /// periods for the minimum-period search.
  [[nodiscard]] std::vector<std::int64_t> candidate_periods() const;

 private:
  [[nodiscard]] std::size_t idx(NodeId u, NodeId v) const { return u * n_ + v; }

  std::size_t n_ = 0;
  std::vector<std::int64_t> w_;
  std::vector<std::int64_t> d_;
  std::vector<bool> reach_;
};

}  // namespace csr
