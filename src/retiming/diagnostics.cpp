#include "retiming/diagnostics.hpp"

#include <algorithm>
#include <sstream>

#include "dfg/algorithms.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

std::vector<RetimingViolation> explain_retiming(const DataFlowGraph& g,
                                                const Retiming& r) {
  CSR_REQUIRE(r.node_count() == g.node_count(), "retiming does not match graph");
  std::vector<RetimingViolation> violations;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    const int d_r = edge.delay + r[edge.from] - r[edge.to];
    if (d_r >= 0) continue;
    std::ostringstream os;
    os << g.node(edge.from).name << "->" << g.node(edge.to).name << ": " << edge.delay
       << " + r(" << g.node(edge.from).name << ")=" << r[edge.from] << " - r("
       << g.node(edge.to).name << ")=" << r[edge.to] << " = " << d_r;
    violations.push_back(RetimingViolation{e, d_r, os.str()});
  }
  return violations;
}

std::vector<NodeId> critical_path(const DataFlowGraph& g) {
  if (g.node_count() == 0) return {};
  const auto order = zero_delay_topological_order(g);
  if (!order) throw InvalidArgument("critical path undefined: zero-delay cycle present");

  // Longest zero-delay path DP with predecessor links.
  std::vector<int> finish(g.node_count(), 0);
  std::vector<NodeId> pred(g.node_count(), g.node_count());
  for (const NodeId v : *order) {
    int start = 0;
    for (const EdgeId e : g.in_edges(v)) {
      const Edge& edge = g.edge(e);
      if (edge.delay != 0) continue;
      if (finish[edge.from] > start) {
        start = finish[edge.from];
        pred[v] = edge.from;
      }
    }
    finish[v] = start + g.node(v).time;
  }
  NodeId tail = 0;
  for (NodeId v = 1; v < g.node_count(); ++v) {
    if (finish[v] > finish[tail]) tail = v;
  }
  std::vector<NodeId> path;
  for (NodeId v = tail; v != g.node_count();) {
    path.push_back(v);
    v = pred[v];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string format_path(const DataFlowGraph& g, const std::vector<NodeId>& path) {
  std::ostringstream os;
  int time = 0;
  for (std::size_t k = 0; k < path.size(); ++k) {
    if (k > 0) os << " -> ";
    os << g.node(path[k]).name;
    time += g.node(path[k]).time;
  }
  os << " (time " << time << ")";
  return os.str();
}

}  // namespace csr
