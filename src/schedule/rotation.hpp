#pragma once

/// \file rotation.hpp
/// Rotation scheduling (Chao, LaPaugh, Sha) — the software-pipelining engine
/// the paper's keyword list names. One rotation retimes every node in the
/// first control step by +1 (legal because such nodes have no zero-delay
/// predecessors), shifts the remaining schedule up one step, and re-places
/// the rotated nodes at their earliest resource-feasible steps. Repeating
/// this compacts a resource-constrained schedule toward the rate-optimal
/// iteration period; the accumulated retiming *is* the software-pipelining
/// transformation whose prologue/epilogue the CSR framework later removes.
///
/// Restricted to unit-time graphs (the paper's setting throughout its
/// experiments).

#include "dfg/graph.hpp"
#include "retiming/retiming.hpp"
#include "schedule/resources.hpp"
#include "schedule/schedule.hpp"

namespace csr {

struct RotationResult {
  /// Accumulated retiming (normalized) from the original graph to the one
  /// the final schedule belongs to.
  Retiming retiming;
  /// The retimed graph the schedule is valid for.
  DataFlowGraph retimed_graph;
  /// The best schedule found.
  StaticSchedule schedule;
  /// Its length (the achieved iteration period).
  int period = 0;
  /// Rotations performed before settling (≤ max_rotations).
  int rotations = 0;
};

/// Runs rotation scheduling on unit-time graph `g` under `model`, starting
/// from a list schedule, for at most `max_rotations` rotations (default
/// |V|²; each full sweep of |V| rotations shifts the whole loop body by one
/// iteration). Returns the best schedule encountered.
[[nodiscard]] RotationResult rotation_schedule(const DataFlowGraph& g,
                                               const ResourceModel& model,
                                               int max_rotations = -1);

}  // namespace csr
