#include "schedule/resources.hpp"

#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

ResourceModel::ResourceModel(std::map<std::string, int> units, Classifier classify)
    : units_(std::move(units)), classify_(std::move(classify)) {
  CSR_REQUIRE(static_cast<bool>(classify_), "resource classifier must be callable");
  for (const auto& [cls, count] : units_) {
    CSR_REQUIRE(count >= 1, "unit count for class '" + cls + "' must be >= 1");
  }
}

ResourceModel ResourceModel::uniform(int k) {
  CSR_REQUIRE(k >= 1, "uniform resource model needs k >= 1");
  return ResourceModel({{"fu", k}},
                       [](const DataFlowGraph&, NodeId) { return std::string("fu"); });
}

ResourceModel ResourceModel::adders_and_multipliers(int adders, int multipliers) {
  CSR_REQUIRE(adders >= 1 && multipliers >= 1, "need at least one unit per class");
  return ResourceModel(
      {{"add", adders}, {"mul", multipliers}},
      [](const DataFlowGraph& g, NodeId v) {
        const char c = g.node(v).name.front();
        return (c == 'M' || c == 'm') ? std::string("mul") : std::string("add");
      });
}

std::string ResourceModel::node_class(const DataFlowGraph& g, NodeId v) const {
  return classify_(g, v);
}

std::string ResourceModel::description() const {
  std::string out;
  for (const auto& [cls, count] : units_) {  // std::map keeps this sorted
    if (!out.empty()) out += ',';
    out += cls + '=' + std::to_string(count);
  }
  return out;
}

int ResourceModel::units(const std::string& cls) const {
  const auto it = units_.find(cls);
  if (it == units_.end()) {
    throw InvalidArgument("no functional units declared for class '" + cls + "'");
  }
  return it->second;
}

}  // namespace csr
