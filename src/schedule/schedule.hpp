#pragma once

/// \file schedule.hpp
/// Static schedules of one (retimed/unfolded) loop iteration. A schedule
/// assigns every node a start control step; node v occupies control steps
/// [start(v), start(v) + t(v)). A schedule is valid for graph G when every
/// zero-delay edge u→v finishes u before v starts — inter-iteration edges
/// (delay ≥ 1) impose no constraint inside one iteration. The schedule
/// length equals the iteration's makespan; with unlimited resources its
/// minimum is the cycle period of G.

#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "support/rational.hpp"

namespace csr {

class StaticSchedule {
 public:
  StaticSchedule() = default;
  explicit StaticSchedule(std::size_t node_count) : start_(node_count, 0) {}

  [[nodiscard]] std::size_t node_count() const { return start_.size(); }

  [[nodiscard]] int start(NodeId v) const;
  void set_start(NodeId v, int step);

  /// start(v) + t(v).
  [[nodiscard]] int finish(NodeId v, const DataFlowGraph& g) const;

  /// Maximum finish over all nodes (0 for an empty schedule).
  [[nodiscard]] int length(const DataFlowGraph& g) const;

  /// Nodes starting at control step `step`, in node-id order.
  [[nodiscard]] std::vector<NodeId> nodes_starting_at(int step) const;

  friend bool operator==(const StaticSchedule&, const StaticSchedule&) = default;

 private:
  std::vector<int> start_;
};

/// Validation problems (empty when valid): negative starts, zero-delay
/// precedence violations.
[[nodiscard]] std::vector<std::string> validate_schedule(const DataFlowGraph& g,
                                                         const StaticSchedule& s);

/// As-soon-as-possible schedule (unlimited resources); length equals
/// cycle_period(g). Throws InvalidArgument on zero-delay cycles.
[[nodiscard]] StaticSchedule asap_schedule(const DataFlowGraph& g);

/// As-late-as-possible schedule for a target `length` ≥ cycle_period(g).
[[nodiscard]] StaticSchedule alap_schedule(const DataFlowGraph& g, int length);

/// The iteration period of a schedule of an f-unfolded iteration: one trip
/// executes f original iterations, so the period is length / f.
[[nodiscard]] Rational iteration_period(const DataFlowGraph& g, const StaticSchedule& s,
                                        int unfolding_factor);

/// Renders the schedule as a control-step table (one line per step) — used
/// by examples and the figure-reproduction benches.
[[nodiscard]] std::string format_schedule(const DataFlowGraph& g, const StaticSchedule& s);

}  // namespace csr
