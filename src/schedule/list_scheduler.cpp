#include "schedule/list_scheduler.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "dfg/algorithms.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {

/// Longest zero-delay path from each node to any sink (including own time):
/// the classic list-scheduling priority. Computed over the reversed
/// zero-delay DAG.
std::vector<int> downstream_criticality(const DataFlowGraph& g) {
  const auto order = zero_delay_topological_order(g);
  if (!order) throw InvalidArgument("cannot schedule: zero-delay cycle present");
  std::vector<int> crit(g.node_count(), 0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    int tail = 0;
    for (const EdgeId e : g.out_edges(v)) {
      if (g.edge(e).delay != 0) continue;
      tail = std::max(tail, crit[g.edge(e).to]);
    }
    crit[v] = tail + g.node(v).time;
  }
  return crit;
}

/// Tracks per-class usage per control step.
class OccupancyTable {
 public:
  explicit OccupancyTable(const ResourceModel& model) : model_(&model) {}

  /// True when `cls` has a free unit in every step of [start, start+time).
  bool fits(const std::string& cls, int start, int time) const {
    const int cap = model_->units(cls);
    for (int s = start; s < start + time; ++s) {
      const auto it = used_.find({cls, s});
      if (it != used_.end() && it->second >= cap) return false;
    }
    return true;
  }

  void occupy(const std::string& cls, int start, int time) {
    for (int s = start; s < start + time; ++s) {
      ++used_[{cls, s}];
    }
  }

 private:
  const ResourceModel* model_;
  std::map<std::pair<std::string, int>, int> used_;
};

}  // namespace

StaticSchedule list_schedule(const DataFlowGraph& g, const ResourceModel& model) {
  const auto crit = downstream_criticality(g);
  const std::size_t n = g.node_count();

  std::vector<int> unmet_preds(n, 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge(e).delay == 0) ++unmet_preds[g.edge(e).to];
  }

  StaticSchedule schedule(n);
  OccupancyTable occupancy(model);
  std::vector<int> ready_time(n, 0);

  // Ready list ordered by (criticality desc, node id asc) for determinism.
  auto priority_less = [&](NodeId a, NodeId b) {
    if (crit[a] != crit[b]) return crit[a] > crit[b];
    return a < b;
  };
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (unmet_preds[v] == 0) ready.push_back(v);
  }
  std::sort(ready.begin(), ready.end(), priority_less);

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.erase(ready.begin());

    const std::string cls = model.node_class(g, v);
    const int time = g.node(v).time;
    int start = ready_time[v];
    while (!occupancy.fits(cls, start, time)) ++start;
    occupancy.occupy(cls, start, time);
    schedule.set_start(v, start);
    ++scheduled;

    for (const EdgeId e : g.out_edges(v)) {
      if (g.edge(e).delay != 0) continue;
      const NodeId w = g.edge(e).to;
      ready_time[w] = std::max(ready_time[w], start + time);
      if (--unmet_preds[w] == 0) {
        const auto pos = std::lower_bound(ready.begin(), ready.end(), w, priority_less);
        ready.insert(pos, w);
      }
    }
  }
  CSR_ENSURE(scheduled == n, "list scheduler failed to place every node");
  CSR_ENSURE(validate_schedule(g, schedule).empty(), "list scheduler produced invalid schedule");
  return schedule;
}

std::vector<std::string> validate_resources(const DataFlowGraph& g,
                                            const StaticSchedule& s,
                                            const ResourceModel& model) {
  std::vector<std::string> problems;
  std::map<std::pair<std::string, int>, int> used;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::string cls = model.node_class(g, v);
    for (int step = s.start(v); step < s.finish(v, g); ++step) {
      if (++used[{cls, step}] > model.units(cls)) {
        problems.push_back("class '" + cls + "' over capacity at step " +
                           std::to_string(step));
      }
    }
  }
  return problems;
}

}  // namespace csr
