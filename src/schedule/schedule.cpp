#include "schedule/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "dfg/algorithms.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

int StaticSchedule::start(NodeId v) const {
  CSR_EXPECT(v < start_.size(), "schedule index out of range");
  return start_[v];
}

void StaticSchedule::set_start(NodeId v, int step) {
  CSR_EXPECT(v < start_.size(), "schedule index out of range");
  start_[v] = step;
}

int StaticSchedule::finish(NodeId v, const DataFlowGraph& g) const {
  return start(v) + g.node(v).time;
}

int StaticSchedule::length(const DataFlowGraph& g) const {
  int len = 0;
  for (NodeId v = 0; v < start_.size(); ++v) {
    len = std::max(len, finish(v, g));
  }
  return len;
}

std::vector<NodeId> StaticSchedule::nodes_starting_at(int step) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < start_.size(); ++v) {
    if (start_[v] == step) out.push_back(v);
  }
  return out;
}

std::vector<std::string> validate_schedule(const DataFlowGraph& g,
                                           const StaticSchedule& s) {
  std::vector<std::string> problems;
  if (s.node_count() != g.node_count()) {
    problems.emplace_back("schedule size does not match graph");
    return problems;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (s.start(v) < 0) {
      problems.push_back("negative start for node " + g.node(v).name);
    }
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.delay != 0) continue;
    if (s.finish(edge.from, g) > s.start(edge.to)) {
      problems.push_back("zero-delay dependence violated: " + g.node(edge.from).name +
                         " -> " + g.node(edge.to).name);
    }
  }
  return problems;
}

StaticSchedule asap_schedule(const DataFlowGraph& g) {
  const auto order = zero_delay_topological_order(g);
  if (!order) throw InvalidArgument("cannot schedule: zero-delay cycle present");
  StaticSchedule s(g.node_count());
  for (const NodeId v : *order) {
    int earliest = 0;
    for (const EdgeId e : g.in_edges(v)) {
      if (g.edge(e).delay != 0) continue;
      earliest = std::max(earliest, s.finish(g.edge(e).from, g));
    }
    s.set_start(v, earliest);
  }
  return s;
}

StaticSchedule alap_schedule(const DataFlowGraph& g, int length) {
  CSR_REQUIRE(length >= cycle_period(g), "ALAP length below the cycle period");
  const auto order = zero_delay_topological_order(g);
  CSR_ENSURE(order.has_value(), "cycle_period succeeded but topo order failed");
  StaticSchedule s(g.node_count());
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    int latest_finish = length;
    for (const EdgeId e : g.out_edges(v)) {
      if (g.edge(e).delay != 0) continue;
      latest_finish = std::min(latest_finish, s.start(g.edge(e).to));
    }
    s.set_start(v, latest_finish - g.node(v).time);
  }
  return s;
}

Rational iteration_period(const DataFlowGraph& g, const StaticSchedule& s,
                          int unfolding_factor) {
  CSR_REQUIRE(unfolding_factor >= 1, "unfolding factor must be >= 1");
  return Rational(s.length(g), unfolding_factor);
}

std::string format_schedule(const DataFlowGraph& g, const StaticSchedule& s) {
  std::ostringstream os;
  const int len = s.length(g);
  for (int step = 0; step < len; ++step) {
    os << "step " << step << ":";
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (s.start(v) <= step && step < s.finish(v, g)) {
        os << ' ' << g.node(v).name;
        if (g.node(v).time > 1) {
          os << (s.start(v) == step ? "*" : ".");
        }
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace csr
