#pragma once

/// \file list_scheduler.hpp
/// Resource-constrained list scheduling of one loop iteration. Nodes become
/// ready when every zero-delay predecessor has finished; ready nodes are
/// placed greedily in critical-path priority order, subject to per-class
/// functional-unit capacity at every occupied control step.

#include "dfg/graph.hpp"
#include "schedule/resources.hpp"
#include "schedule/schedule.hpp"

namespace csr {

/// Schedules `g` under `model`. The result is valid (zero-delay precedence
/// and capacity respected); its length is ≥ cycle_period(g) and equals it
/// whenever resources never bind. Throws InvalidArgument on zero-delay
/// cycles or when a node's class has no declared units.
[[nodiscard]] StaticSchedule list_schedule(const DataFlowGraph& g,
                                           const ResourceModel& model);

/// Capacity-violation check used by tests: problems (empty when the
/// schedule fits the model).
[[nodiscard]] std::vector<std::string> validate_resources(const DataFlowGraph& g,
                                                          const StaticSchedule& s,
                                                          const ResourceModel& model);

}  // namespace csr
