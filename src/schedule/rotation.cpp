#include "schedule/rotation.hpp"

#include <algorithm>
#include <map>

#include "observe/observe.hpp"
#include "schedule/list_scheduler.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {

/// Earliest step ≥ `floor` where class `cls` has a free unit, given current
/// per-step usage (unit-time nodes occupy exactly one step).
int first_free_step(const std::map<std::pair<std::string, int>, int>& used,
                    const ResourceModel& model, const std::string& cls, int floor) {
  const int cap = model.units(cls);
  int step = floor;
  while (true) {
    const auto it = used.find({cls, step});
    if (it == used.end() || it->second < cap) return step;
    ++step;
  }
}

}  // namespace

RotationResult rotation_schedule(const DataFlowGraph& g, const ResourceModel& model,
                                 int max_rotations) {
  CSR_REQUIRE(g.unit_time(), "rotation scheduling requires unit-time nodes");
  CSR_REQUIRE(g.node_count() > 0, "cannot schedule an empty graph");
  observe::Span span("schedule", "rotation_schedule");
  span.arg("nodes", static_cast<std::uint64_t>(g.node_count()));
  observe::MetricsRegistry::global()
      .counter("csr_schedule_rotation_runs_total", "rotation_schedule calls")
      .increment();
  const int n = static_cast<int>(g.node_count());
  if (max_rotations < 0) max_rotations = n * n;

  DataFlowGraph current = g;
  StaticSchedule schedule = list_schedule(current, model);
  Retiming accumulated(g.node_count());

  RotationResult best{accumulated, current, schedule, schedule.length(current), 0};

  for (int iter = 1; iter <= max_rotations; ++iter) {
    // Rotate the first control step: push one delay through each node there.
    const std::vector<NodeId> rotated = schedule.nodes_starting_at(0);
    CSR_ENSURE(!rotated.empty(), "valid schedule with empty first step");
    for (const NodeId v : rotated) {
      accumulated.set(v, accumulated[v] + 1);
      for (const EdgeId e : current.in_edges(v)) {
        CSR_ENSURE(current.edge(e).delay >= 1,
                   "first-step node has a zero-delay predecessor");
      }
    }
    // Update delays incrementally: in-edges of rotated nodes lose a delay,
    // out-edges gain one (edges between two rotated nodes are unchanged:
    // they lose and gain one). Recomputing from the accumulated retiming
    // keeps the logic simple and the graphs are small.
    current = apply_retiming(g, accumulated);

    // Shift the remaining nodes up one step and rebuild occupancy.
    StaticSchedule next(g.node_count());
    std::map<std::pair<std::string, int>, int> used;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (std::find(rotated.begin(), rotated.end(), v) != rotated.end()) continue;
      const int step = schedule.start(v) - 1;
      next.set_start(v, step);
      ++used[{model.node_class(current, v), step}];
    }

    // Re-place rotated nodes at their earliest feasible step. After the
    // rotation their out-edges all carry delay ≥ 1, so only the (possibly
    // new) zero-delay in-edges constrain placement.
    for (const NodeId v : rotated) {
      int floor_step = 0;
      for (const EdgeId e : current.in_edges(v)) {
        const Edge& edge = current.edge(e);
        if (edge.delay != 0) continue;
        // The predecessor is never itself rotated (edges between rotated
        // nodes keep their delay), so its start is already final.
        floor_step = std::max(floor_step, next.start(edge.from) + 1);
      }
      const std::string cls = model.node_class(current, v);
      const int step = first_free_step(used, model, cls, floor_step);
      next.set_start(v, step);
      ++used[{cls, step}];
    }

    // Re-anchor the schedule at step 0 (re-placement can leave the first
    // step empty or, when every node was rotated, start below it).
    int min_start = next.start(0);
    for (NodeId v = 1; v < g.node_count(); ++v) {
      min_start = std::min(min_start, next.start(v));
    }
    if (min_start != 0) {
      for (NodeId v = 0; v < g.node_count(); ++v) {
        next.set_start(v, next.start(v) - min_start);
      }
    }

    // The incremental shift preserves the old schedule's relative placement,
    // which can carry stale gaps across rotations; rescheduling the retimed
    // graph from scratch sometimes compacts further. Keep whichever is
    // shorter (ties favour the incremental schedule for continuity).
    const StaticSchedule fresh = list_schedule(current, model);
    if (fresh.length(current) < next.length(current)) next = fresh;

    schedule = next;
    CSR_ENSURE(validate_schedule(current, schedule).empty(),
               "rotation produced an invalid schedule");
    CSR_ENSURE(validate_resources(current, schedule, model).empty(),
               "rotation produced an over-capacity schedule");

    const int length = schedule.length(current);
    if (length < best.period) {
      best = RotationResult{accumulated, current, schedule, length, iter};
    }
  }

  best.retiming = best.retiming.normalized();
  best.retimed_graph = apply_retiming(g, best.retiming);
  return best;
}

}  // namespace csr
