#pragma once

/// \file modulo.hpp
/// Iterative modulo scheduling (Rau) — the software-pipelining formulation
/// used by production VLIW compilers and the paper's reference [8]. A modulo
/// schedule issues one iteration every II cycles (the *initiation
/// interval*); node v starts at time(v), occupying its functional unit at
/// the cyclic slots time(v) mod II .. (time(v)+t(v)−1) mod II. Dependences
/// require time(v) ≥ time(u) + t(u) − II·d(e).
///
/// II is bounded below by
///   ResMII — resource pressure: max over classes ⌈ops / units⌉ (weighted by
///            computation time), and
///   RecMII — recurrences: ⌈iteration bound⌉.
///
/// The connection to the paper: a modulo schedule's *stage* assignment
/// σ(v) = ⌊time(v)/II⌋ induces the retiming r(v) = max σ − σ(v), which is
/// legal and retimes the graph to cycle period ≤ II (retiming_from_modulo).
/// The kernel-only code that modulo schedulers emit with stage predicates is
/// exactly the paper's CSR form: the induced retiming can be handed to
/// retimed_csr_program to generate it.

#include <optional>

#include "dfg/graph.hpp"
#include "retiming/retiming.hpp"
#include "schedule/resources.hpp"
#include "schedule/schedule.hpp"

namespace csr {

/// Resource-constrained lower bound on II.
[[nodiscard]] int resource_min_ii(const DataFlowGraph& g, const ResourceModel& model);

/// Recurrence-constrained lower bound on II: ⌈iteration bound⌉ (0 when the
/// graph is acyclic). Throws InvalidArgument on zero-delay cycles.
[[nodiscard]] int recurrence_min_ii(const DataFlowGraph& g);

struct ModuloSchedule {
  int initiation_interval = 0;
  /// Absolute start times; the kernel slot of v is start(v) mod II.
  StaticSchedule times;
  /// Pipeline stages: max ⌊start/II⌋ + 1.
  int stages = 1;
};

struct ModuloScheduleOptions {
  /// Give up beyond this II (default: a schedule always exists at the
  /// sequential II, so the search is bounded by it).
  int max_ii = -1;
  /// Scheduling budget per II attempt, as a multiple of |V| placements.
  int budget_factor = 10;
};

/// Iterative modulo scheduling with eviction. Returns the schedule at the
/// smallest II the heuristic could close, or std::nullopt only when
/// `max_ii` was set and exhausted.
[[nodiscard]] std::optional<ModuloSchedule> modulo_schedule(
    const DataFlowGraph& g, const ResourceModel& model,
    const ModuloScheduleOptions& options = {});

/// Validation problems of a modulo schedule (empty when valid): dependence
/// or cyclic-resource violations, negative times.
[[nodiscard]] std::vector<std::string> validate_modulo_schedule(
    const DataFlowGraph& g, const ResourceModel& model, const ModuloSchedule& ms);

/// The retiming induced by the stage assignment, r(v) = max σ − σ(v);
/// normalized, legal, and the retimed graph's cycle period is ≤ II (each
/// zero-delay chain fits inside one kernel window).
[[nodiscard]] Retiming retiming_from_modulo(const DataFlowGraph& g,
                                            const ModuloSchedule& ms);

}  // namespace csr
