#pragma once

/// \file resources.hpp
/// Functional-unit resource models for resource-constrained scheduling.
/// Nodes are mapped to operation classes (e.g. "add", "mul") by a
/// classifier; each class has a unit count. The default model gives every
/// node the same class — a machine with k identical functional units.

#include <functional>
#include <map>
#include <string>

#include "dfg/graph.hpp"

namespace csr {

class ResourceModel {
 public:
  using Classifier = std::function<std::string(const DataFlowGraph&, NodeId)>;

  /// `units` maps class name → number of functional units (≥ 1 each).
  /// `classify` maps nodes to class names; classes missing from `units`
  /// cause scheduling to throw.
  ResourceModel(std::map<std::string, int> units, Classifier classify);

  /// k identical functional units, single class "fu".
  [[nodiscard]] static ResourceModel uniform(int k);

  /// Classifies by the first character of the node name: names beginning
  /// with 'M' or 'm' are "mul", everything else "add" — the convention the
  /// DSP benchmark graphs in src/benchmarks follow.
  [[nodiscard]] static ResourceModel adders_and_multipliers(int adders, int multipliers);

  [[nodiscard]] std::string node_class(const DataFlowGraph& g, NodeId v) const;

  /// Units available for `cls`; throws InvalidArgument for unknown classes.
  [[nodiscard]] int units(const std::string& cls) const;

  /// Stable textual descriptor of the unit table ("add=2,mul=2"), used by
  /// the sweep journal's cache key. Classifiers are code, not data, and are
  /// deliberately not part of the descriptor — sweeps with custom
  /// classifiers over identical unit tables should use distinct journals.
  [[nodiscard]] std::string description() const;

 private:
  std::map<std::string, int> units_;
  Classifier classify_;
};

}  // namespace csr
