#include "schedule/modulo.hpp"

#include <algorithm>
#include <map>

#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "observe/observe.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {

/// Per-class cyclic occupancy. Operations never straddle the kernel
/// boundary (placement enforces slot + t ≤ II), so occupancy intervals are
/// contiguous in [0, II).
class ModuloReservationTable {
 public:
  ModuloReservationTable(const DataFlowGraph& g, const ResourceModel& model, int ii)
      : g_(&g), model_(&model), ii_(ii) {}

  [[nodiscard]] bool fits(NodeId v, int time) const {
    const std::string cls = model_->node_class(*g_, v);
    const int cap = model_->units(cls);
    const int slot = time % ii_;
    for (int s = slot; s < slot + g_->node(v).time; ++s) {
      const auto it = used_.find({cls, s});
      if (it != used_.end() && it->second >= cap) return false;
    }
    return true;
  }

  void occupy(NodeId v, int time) { adjust(v, time, +1); }
  void release(NodeId v, int time) { adjust(v, time, -1); }

 private:
  void adjust(NodeId v, int time, int delta) {
    const std::string cls = model_->node_class(*g_, v);
    const int slot = time % ii_;
    for (int s = slot; s < slot + g_->node(v).time; ++s) {
      used_[{cls, s}] += delta;
    }
  }

  const DataFlowGraph* g_;
  const ResourceModel* model_;
  int ii_;
  std::map<std::pair<std::string, int>, int> used_;
};

/// Height-based priority: longest dependence path to any sink with edge
/// latency t(u) − II·d(e). II ≥ RecMII keeps every cycle non-positive, so
/// the longest paths are well defined; iterate to a fixed point.
std::vector<int> schedule_heights(const DataFlowGraph& g, int ii) {
  const std::size_t n = g.node_count();
  std::vector<int> height(n);
  for (NodeId v = 0; v < n; ++v) height[v] = g.node(v).time;
  bool changed = true;
  for (std::size_t pass = 0; pass <= n && changed; ++pass) {
    changed = false;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& edge = g.edge(e);
      const int cand = g.node(edge.from).time - ii * edge.delay + height[edge.to];
      if (cand > height[edge.from]) {
        height[edge.from] = cand;
        changed = true;
      }
    }
  }
  // A further change would mean a positive cycle — II below the recurrence
  // bound, which callers exclude.
  CSR_ENSURE(!changed, "positive dependence cycle at this II");
  return height;
}

struct Attempt {
  bool success = false;
  StaticSchedule times;
};

Attempt try_schedule(const DataFlowGraph& g, const ResourceModel& model, int ii,
                     int budget) {
  const std::size_t n = g.node_count();
  const auto height = schedule_heights(g, ii);
  ModuloReservationTable table(g, model, ii);
  StaticSchedule times(n);
  std::vector<bool> scheduled(n, false);
  std::vector<int> last_time(n, -1);

  auto pick_next = [&]() -> std::optional<NodeId> {
    std::optional<NodeId> best;
    for (NodeId v = 0; v < n; ++v) {
      if (scheduled[v]) continue;
      if (!best || height[v] > height[*best] || (height[v] == height[*best] && v < *best)) {
        best = v;
      }
    }
    return best;
  };

  for (int step = 0; step < budget; ++step) {
    const auto pick = pick_next();
    if (!pick) {
      Attempt a;
      a.success = true;
      a.times = times;
      return a;
    }
    const NodeId v = *pick;

    int earliest = 0;
    for (const EdgeId e : g.in_edges(v)) {
      const Edge& edge = g.edge(e);
      if (!scheduled[edge.from]) continue;
      earliest = std::max(earliest, times.start(edge.from) + g.node(edge.from).time -
                                        ii * edge.delay);
    }
    // Re-placements must move forward to guarantee progress.
    if (last_time[v] >= 0) earliest = std::max(earliest, last_time[v] + 1);

    // Scan one full kernel window for a conflict-free, non-straddling slot.
    int chosen = -1;
    for (int t = earliest; t < earliest + ii; ++t) {
      if (t % ii + g.node(v).time > ii) continue;  // would straddle the kernel
      if (table.fits(v, t)) {
        chosen = t;
        break;
      }
    }
    bool forced = false;
    if (chosen < 0) {
      forced = true;
      chosen = earliest;
      while (chosen % ii + g.node(v).time > ii) ++chosen;
    }

    times.set_start(v, chosen);
    scheduled[v] = true;
    last_time[v] = chosen;

    if (forced) {
      // Evict lower-priority occupants of the same cyclic slots until v fits.
      while (!table.fits(v, chosen)) {
        std::optional<NodeId> victim;
        const std::string cls = model.node_class(g, v);
        for (NodeId w = 0; w < n; ++w) {
          if (w == v || !scheduled[w]) continue;
          if (model.node_class(g, w) != cls) continue;
          const int a = times.start(w) % ii;
          const int b = chosen % ii;
          const bool overlap =
              a < b + g.node(v).time && b < a + g.node(w).time;
          if (!overlap) continue;
          if (!victim || height[w] < height[*victim]) victim = w;
        }
        CSR_ENSURE(victim.has_value(), "forced placement found no evictable victim");
        table.release(*victim, times.start(*victim));
        scheduled[*victim] = false;
      }
    }
    table.occupy(v, chosen);

    // Evict scheduled successors whose dependence on v is now violated.
    for (const EdgeId e : g.out_edges(v)) {
      const Edge& edge = g.edge(e);
      const NodeId w = edge.to;
      if (w == v || !scheduled[w]) continue;
      if (times.start(w) < chosen + g.node(v).time - ii * edge.delay) {
        table.release(w, times.start(w));
        scheduled[w] = false;
      }
    }
  }
  return {};
}

}  // namespace

int resource_min_ii(const DataFlowGraph& g, const ResourceModel& model) {
  std::map<std::string, int> demand;
  int max_time = 1;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    demand[model.node_class(g, v)] += g.node(v).time;
    max_time = std::max(max_time, g.node(v).time);
  }
  int ii = max_time;  // no-straddling placement needs II ≥ max t(v)
  for (const auto& [cls, total] : demand) {
    const int units = model.units(cls);
    ii = std::max(ii, (total + units - 1) / units);
  }
  return ii;
}

int recurrence_min_ii(const DataFlowGraph& g) {
  const auto bound = iteration_bound(g);
  if (!bound) return 0;
  return static_cast<int>(bound->ceil());
}

std::optional<ModuloSchedule> modulo_schedule(const DataFlowGraph& g,
                                              const ResourceModel& model,
                                              const ModuloScheduleOptions& options) {
  CSR_REQUIRE(g.node_count() > 0, "cannot schedule an empty graph");
  CSR_REQUIRE(options.budget_factor >= 1, "budget factor must be >= 1");
  observe::Span span("schedule", "modulo_schedule");
  span.arg("nodes", static_cast<std::uint64_t>(g.node_count()));
  observe::MetricsRegistry::global()
      .counter("csr_schedule_modulo_runs_total", "modulo_schedule calls")
      .increment();
  const int min_ii = std::max(resource_min_ii(g, model), recurrence_min_ii(g));
  // The sequential schedule is always a valid modulo schedule at
  // II = Σ t(v), so the search is bounded.
  const int fallback = static_cast<int>(g.total_time());
  const int max_ii = options.max_ii > 0 ? options.max_ii : std::max(min_ii, fallback);

  const int budget = options.budget_factor * static_cast<int>(g.node_count());
  for (int ii = min_ii; ii <= max_ii; ++ii) {
    const Attempt attempt = try_schedule(g, model, ii, budget);
    if (!attempt.success) continue;
    ModuloSchedule ms;
    ms.initiation_interval = ii;
    ms.times = attempt.times;
    int max_stage = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      max_stage = std::max(max_stage, attempt.times.start(v) / ii);
    }
    ms.stages = max_stage + 1;
    CSR_ENSURE(validate_modulo_schedule(g, model, ms).empty(),
               "modulo scheduler produced an invalid schedule");
    return ms;
  }
  return std::nullopt;
}

std::vector<std::string> validate_modulo_schedule(const DataFlowGraph& g,
                                                  const ResourceModel& model,
                                                  const ModuloSchedule& ms) {
  std::vector<std::string> problems;
  const int ii = ms.initiation_interval;
  if (ii < 1) {
    problems.emplace_back("initiation interval must be positive");
    return problems;
  }
  if (ms.times.node_count() != g.node_count()) {
    problems.emplace_back("schedule size does not match graph");
    return problems;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (ms.times.start(v) < 0) {
      problems.push_back("negative time for " + g.node(v).name);
    }
    if (ms.times.start(v) % ii + g.node(v).time > ii) {
      problems.push_back(g.node(v).name + " straddles the kernel boundary");
    }
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    if (ms.times.start(edge.to) <
        ms.times.start(edge.from) + g.node(edge.from).time - ii * edge.delay) {
      problems.push_back("dependence violated: " + g.node(edge.from).name + " -> " +
                         g.node(edge.to).name);
    }
  }
  std::map<std::pair<std::string, int>, int> used;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::string cls = model.node_class(g, v);
    const int slot = ms.times.start(v) % ii;
    for (int s = slot; s < slot + g.node(v).time; ++s) {
      if (++used[{cls, s}] > model.units(cls)) {
        problems.push_back("class '" + cls + "' over capacity at kernel slot " +
                           std::to_string(s));
      }
    }
  }
  return problems;
}

Retiming retiming_from_modulo(const DataFlowGraph& g, const ModuloSchedule& ms) {
  CSR_REQUIRE(ms.times.node_count() == g.node_count(),
              "modulo schedule does not match graph");
  const int ii = ms.initiation_interval;
  int max_stage = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    max_stage = std::max(max_stage, ms.times.start(v) / ii);
  }
  Retiming r(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    r.set(v, max_stage - ms.times.start(v) / ii);
  }
  CSR_ENSURE(is_legal_retiming(g, r), "stage assignment induced illegal retiming");
  return r;
}

}  // namespace csr
