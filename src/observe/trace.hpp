#pragma once

/// \file trace.hpp
/// Hierarchical span tracing for the pipeline the paper's evaluation sweeps
/// over (retime → unfold → CSR → schedule → codegen → execute). A Span is an
/// RAII begin/end pair carrying a category, a name, a dense thread id,
/// monotonic timestamps and key/value attributes; the process-global Tracer
/// collects completed spans and exports them in Chrome `trace_event` JSON,
/// so any sweep can be opened in chrome://tracing or https://ui.perfetto.dev
/// (nesting is reconstructed from time containment per thread, the standard
/// interpretation of "X" complete events).
///
/// The tracer is always compiled in and **disabled by default**. A disabled
/// Span costs one relaxed atomic load and touches nothing else — no clock
/// read, no allocation, no lock — which is what keeps instrumented hot paths
/// within noise of uninstrumented ones (bench/perf_observe.cpp demonstrates
/// the contract on the VM sweep path).
///
/// Span taxonomy and attribute conventions: docs/OBSERVABILITY.md.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace csr::observe {

/// Monotonic nanoseconds (steady clock); the time base of every span.
[[nodiscard]] std::uint64_t monotonic_now_ns();

/// Small dense id of the calling thread, assigned on first use. Stable for
/// the thread's lifetime; exported as the trace's `tid`.
[[nodiscard]] std::uint32_t current_thread_id();

/// One key/value span attribute. `value` is the pre-rendered JSON text:
/// quoted_string selects between string (escaped and quoted on export) and
/// bare numeric/boolean literals.
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted_string = true;
};

/// One completed span.
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t thread = 0;
  std::vector<TraceArg> args;
};

/// The process-global span collector. Thread-safe; spans from any thread
/// land in one buffer and export in recording order.
class Tracer {
 public:
  static Tracer& global();

  /// Enables/disables recording. Spans opened while disabled stay inert even
  /// if tracing is enabled before they close — a span is recorded iff the
  /// tracer was enabled when it was *opened*.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(TraceEvent event);
  void clear();
  [[nodiscard]] std::size_t event_count() const;
  /// Snapshot of the recorded spans (copies; for tests and tooling).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON: {"traceEvents": [...]} with one "ph": "X"
  /// complete event per span, timestamps in microseconds.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  Tracer() = default;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII span. Construction snapshots the start time iff the global tracer is
/// enabled; destruction (or an explicit end()) records the completed event.
/// Attributes attached through arg() are dropped silently when inactive, so
/// instrumentation sites need no enabled() checks of their own.
class Span {
 public:
  Span(std::string_view category, std::string_view name);
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& arg(std::string_view key, std::string_view value);
  Span& arg(std::string_view key, const char* value) {
    return arg(key, std::string_view(value));
  }
  Span& arg(std::string_view key, const std::string& value) {
    return arg(key, std::string_view(value));
  }
  Span& arg(std::string_view key, bool value);
  Span& arg(std::string_view key, double value);
  Span& arg(std::string_view key, std::int64_t value);
  Span& arg(std::string_view key, std::uint64_t value);
  Span& arg(std::string_view key, int value) {
    return arg(key, static_cast<std::int64_t>(value));
  }
  Span& arg(std::string_view key, unsigned value) {
    return arg(key, static_cast<std::uint64_t>(value));
  }

  /// Ends the span early; the destructor then does nothing.
  void end();
  [[nodiscard]] bool active() const { return active_; }

 private:
  bool active_ = false;
  TraceEvent event_;
};

// Token pasting needs one indirection so __LINE__ expands first.
#define CSR_OBSERVE_CONCAT_INNER(a, b) a##b
#define CSR_OBSERVE_CONCAT(a, b) CSR_OBSERVE_CONCAT_INNER(a, b)

/// Anonymous scope span: CSR_SPAN("driver", "evaluate_cell");
#define CSR_SPAN(category, name) \
  ::csr::observe::Span CSR_OBSERVE_CONCAT(csr_span_at_line_, __LINE__)(category, name)

}  // namespace csr::observe
