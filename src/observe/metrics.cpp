#include "observe/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

namespace csr::observe {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Doubles rendered for both exporters: shortest text that round-trips is
/// overkill here; a plain ostream with default precision is deterministic
/// and readable ("0.001", "2.5e-05").
std::string number_text(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

void atomic_add_double(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("histogram bucket bounds must be sorted");
  }
}

void Histogram::observe(double value) {
  // First bucket whose upper edge admits the value; everything above the
  // last finite edge lands in the +Inf bucket.
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
}

std::uint64_t Histogram::cumulative_count(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < buckets_.size(); ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& latency_seconds_bounds() {
  static const std::vector<double> bounds = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                             1e-1, 1.0,  10.0};
  return bounds;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked intentionally, like the tracer: instrument references held by
  // static-storage callers must outlive every destructor.
  static auto* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.counter = std::make_unique<Counter>();
  }
  if (it->second.counter == nullptr) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  }
  if (it->second.help.empty() && !help.empty()) it->second.help = help;
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.gauge = std::make_unique<Gauge>();
  }
  if (it->second.gauge == nullptr) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  }
  if (it->second.help.empty() && !help.empty()) it->second.help = help;
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
    it->second.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  if (it->second.histogram == nullptr) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  }
  if (it->second.help.empty() && !help.empty()) it->second.help = help;
  return *it->second.histogram;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.counter == nullptr) return 0;
  return it->second.counter->value();
}

std::string MetricsRegistry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.help.empty()) out << "# HELP " << name << ' ' << entry.help << '\n';
    if (entry.counter != nullptr) {
      out << "# TYPE " << name << " counter\n"
          << name << ' ' << entry.counter->value() << '\n';
    } else if (entry.gauge != nullptr) {
      out << "# TYPE " << name << " gauge\n"
          << name << ' ' << entry.gauge->value() << '\n';
    } else if (entry.histogram != nullptr) {
      const Histogram& h = *entry.histogram;
      out << "# TYPE " << name << " histogram\n";
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bounds().size(); ++b) {
        cumulative += h.bucket_count(b);
        out << name << "_bucket{le=\"" << number_text(h.bounds()[b]) << "\"} "
            << cumulative << '\n';
      }
      out << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n'
          << name << "_sum " << number_text(h.sum()) << '\n'
          << name << "_count " << h.count() << '\n';
    }
  }
  return out.str();
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream counters;
  std::ostringstream gauges;
  std::ostringstream histograms;
  bool first_counter = true;
  bool first_gauge = true;
  bool first_histogram = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) {
      counters << (first_counter ? "" : ", ") << '"' << json_escape(name)
               << "\": " << entry.counter->value();
      first_counter = false;
    } else if (entry.gauge != nullptr) {
      gauges << (first_gauge ? "" : ", ") << '"' << json_escape(name)
             << "\": " << entry.gauge->value();
      first_gauge = false;
    } else if (entry.histogram != nullptr) {
      const Histogram& h = *entry.histogram;
      histograms << (first_histogram ? "" : ", ") << '"' << json_escape(name)
                 << "\": {\"buckets\": [";
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bounds().size(); ++b) {
        cumulative += h.bucket_count(b);
        histograms << (b > 0 ? ", " : "") << "{\"le\": "
                   << number_text(h.bounds()[b]) << ", \"count\": " << cumulative
                   << '}';
      }
      histograms << "], \"count\": " << h.count() << ", \"sum\": "
                 << number_text(h.sum()) << '}';
      first_histogram = false;
    }
  }
  std::ostringstream out;
  out << "{\n\"counters\": {" << counters.str() << "},\n\"gauges\": {"
      << gauges.str() << "},\n\"histograms\": {" << histograms.str() << "}\n}\n";
  return out.str();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) entry.counter->reset();
    if (entry.gauge != nullptr) entry.gauge->reset();
    if (entry.histogram != nullptr) entry.histogram->reset();
  }
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t ScopedTimer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double ScopedTimer::seconds_so_far() const {
  return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

ScopedTimer::~ScopedTimer() {
  const double seconds = seconds_so_far();
  if (histogram_ != nullptr) histogram_->observe(seconds);
  if (out_ != nullptr) *out_ = seconds;
}

}  // namespace csr::observe
