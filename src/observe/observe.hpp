#pragma once

/// \file observe.hpp
/// Umbrella header of the observability layer: tracing (trace.hpp), metrics
/// (metrics.hpp) and the profiling-hook helpers (CSR_SPAN, ScopedTimer).
/// Instrumentation sites include this one header; docs/OBSERVABILITY.md is
/// the span taxonomy and metric catalogue.

#include "observe/metrics.hpp"
#include "observe/trace.hpp"
