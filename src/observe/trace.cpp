#include "observe/trace.hpp"

#include <chrono>
#include <sstream>

namespace csr::observe {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with nanosecond fraction, rendered without ostream locale
/// surprises: "1234.567".
std::string microseconds_text(std::uint64_t ns) {
  std::string out = std::to_string(ns / 1000);
  const std::uint64_t frac = ns % 1000;
  char buf[8];
  std::snprintf(buf, sizeof(buf), ".%03llu", static_cast<unsigned long long>(frac));
  out += buf;
  return out;
}

}  // namespace

std::uint64_t monotonic_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t current_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer& Tracer::global() {
  // Leaked intentionally: instrumentation in static destructors must never
  // touch a destroyed tracer.
  static auto* tracer = new Tracer();
  return *tracer;
}

void Tracer::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string Tracer::to_chrome_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out << "  {\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
        << json_escape(e.category) << "\", \"ph\": \"X\", \"ts\": "
        << microseconds_text(e.start_ns) << ", \"dur\": "
        << microseconds_text(e.duration_ns) << ", \"pid\": 1, \"tid\": "
        << e.thread;
    if (!e.args.empty()) {
      out << ", \"args\": {";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        const TraceArg& arg = e.args[a];
        if (a > 0) out << ", ";
        out << '"' << json_escape(arg.key) << "\": ";
        if (arg.quoted_string) {
          out << '"' << json_escape(arg.value) << '"';
        } else {
          out << arg.value;
        }
      }
      out << '}';
    }
    out << '}' << (i + 1 < events_.size() ? "," : "") << '\n';
  }
  out << "]}\n";
  return out.str();
}

Span::Span(std::string_view category, std::string_view name) {
  if (!Tracer::global().enabled()) return;
  active_ = true;
  event_.name = name;
  event_.category = category;
  event_.thread = current_thread_id();
  event_.start_ns = monotonic_now_ns();
}

void Span::end() {
  if (!active_) return;
  active_ = false;
  event_.duration_ns = monotonic_now_ns() - event_.start_ns;
  Tracer::global().record(std::move(event_));
}

Span& Span::arg(std::string_view key, std::string_view value) {
  if (active_) {
    event_.args.push_back({std::string(key), std::string(value), true});
  }
  return *this;
}

Span& Span::arg(std::string_view key, bool value) {
  if (active_) {
    event_.args.push_back({std::string(key), value ? "true" : "false", false});
  }
  return *this;
}

Span& Span::arg(std::string_view key, double value) {
  if (active_) {
    std::ostringstream text;
    text << value;
    event_.args.push_back({std::string(key), text.str(), false});
  }
  return *this;
}

Span& Span::arg(std::string_view key, std::int64_t value) {
  if (active_) {
    event_.args.push_back({std::string(key), std::to_string(value), false});
  }
  return *this;
}

Span& Span::arg(std::string_view key, std::uint64_t value) {
  if (active_) {
    event_.args.push_back({std::string(key), std::to_string(value), false});
  }
  return *this;
}

}  // namespace csr::observe
