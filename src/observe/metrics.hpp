#pragma once

/// \file metrics.hpp
/// The metrics half of the observability layer: a process-global registry of
/// named counters, gauges and fixed-bucket histograms. Design constraints:
///
///   * **Lock-free hot path.** Instruments are plain atomics; incrementing a
///     counter or observing a histogram takes no lock. The registry mutex is
///     touched only at registration (once per site, cached through a static
///     local reference) and at export.
///   * **Stable identity.** An instrument, once registered, lives for the
///     process lifetime at a stable address — instrumentation sites hold
///     `Counter&` references across threads safely.
///   * **Two exporters.** Prometheus text exposition (`to_prometheus()`) for
///     scraping, and a JSON document (`to_json()`) for tooling; both walk
///     the registry in name order, so exports are deterministic.
///
/// Metric catalogue and naming conventions: docs/OBSERVABILITY.md.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace csr::observe {

/// Monotonically increasing event count.
class Counter {
 public:
  void increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value (queue depths, pool sizes).
class Gauge {
 public:
  void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram in the Prometheus style: `bounds` are the
/// inclusive upper edges of the finite buckets; one implicit +Inf bucket
/// catches the rest. Buckets, count and sum are atomics — concurrent
/// observe() calls never lock, at the usual cost that an export racing an
/// observe can see count/sum/buckets at slightly different instants.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Observations in bucket i alone (i == bounds().size() is +Inf).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Observations ≤ bounds()[i] — the Prometheus cumulative `le` count.
  [[nodiscard]] std::uint64_t cumulative_count(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket edges for second-valued latencies: 1 µs to 10 s, roughly
/// logarithmic. Cell evaluation, native compiles and journal replays all fit.
[[nodiscard]] const std::vector<double>& latency_seconds_bounds();

/// The process-global name → instrument registry.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Returns the named instrument, registering it on first use. Re-requests
  /// with the same name return the same instance; requesting a name already
  /// registered as a different kind throws std::logic_error. `help` is kept
  /// from the first registration that supplies one.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view help = "");

  /// Value of a registered counter, 0 when absent (test/tooling convenience).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Prometheus text exposition format, instruments in name order.
  [[nodiscard]] std::string to_prometheus() const;
  /// JSON document {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  [[nodiscard]] std::string to_json() const;

  /// Zeroes every instrument, keeping registrations (and the references
  /// instrumentation sites hold) valid.
  void reset();

  [[nodiscard]] std::size_t size() const;

 private:
  MetricsRegistry() = default;

  struct Entry {
    std::string help;
    // Exactly one of these is set; unique_ptr pins the address for the
    // references handed out.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// RAII wall-clock timer: on destruction observes the elapsed seconds into a
/// histogram and/or stores them through `out`. The profiling-hook companion
/// of Span for code that wants a metric rather than (or in addition to) a
/// trace event.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(&histogram), start_ns_(now_ns()) {}
  explicit ScopedTimer(double& out) : out_(&out), start_ns_(now_ns()) {}
  ScopedTimer(Histogram& histogram, double& out)
      : histogram_(&histogram), out_(&out), start_ns_(now_ns()) {}
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  [[nodiscard]] double seconds_so_far() const;

 private:
  Histogram* histogram_ = nullptr;
  double* out_ = nullptr;
  std::uint64_t start_ns_;

  static std::uint64_t now_ns();
};

}  // namespace csr::observe
