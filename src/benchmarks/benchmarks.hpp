#pragma once

/// \file benchmarks.hpp
/// Reconstructions of the paper's benchmark data-flow graphs. The paper
/// names six classic DSP benchmarks and prints only their node counts
/// (Table 1, column "Orig"); the graphs themselves are not published. Each
/// reconstruction here matches the reported node count, uses unit-time
/// nodes (the paper's stated assumption), and is built from the filter's
/// textbook signal-flow structure: feedback recursions (delayed cycles)
/// that pin the iteration bound, feed-forward sections, and delayed output
/// taps. Node names follow the HLS convention the resource model uses:
/// 'M*' multipliers, everything else adders.
///
/// The Figure 1/3/4 didactic graphs and the Chao–Sha non-unit-time example
/// of Figure 8 are included for the figure-reproduction benches.

#include <functional>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace csr::benchmarks {

/// 2nd-order IIR section cascade — 8 nodes. Recursion: 6-op loop with two
/// delays (iteration bound 3); two delayed output taps.
[[nodiscard]] DataFlowGraph iir_filter();

/// HAL differential-equation solver — 11 nodes. 9-op update recursion with
/// three delays (iteration bound 3) plus the x-increment/compare pair.
[[nodiscard]] DataFlowGraph differential_equation_solver();

/// All-pole lattice filter — 15 nodes. 12-op recursion with four delays
/// (iteration bound 3) and a 3-op delayed output ladder.
[[nodiscard]] DataFlowGraph allpole_filter();

/// 5th-order elliptic wave filter — 34 nodes. Four 8-op recursions with
/// three delays each (iteration bound 8/3 — fractional, so rate-optimality
/// requires unfolding) and a 2-op combiner.
[[nodiscard]] DataFlowGraph elliptic_filter();

/// 4-stage lattice filter — 26 nodes. Three 8-op recursions with three
/// delays each plus a 2-op combiner.
[[nodiscard]] DataFlowGraph lattice_filter();

/// 2nd-order Volterra filter — 27 nodes. A 6-op linear recursion (two
/// delays) feeding a 21-op feed-forward product/accumulate tree through
/// delayed taps.
[[nodiscard]] DataFlowGraph volterra_filter();

/// Figure 1: the 2-node didactic DFG (A→B with no delay, B→A with two).
[[nodiscard]] DataFlowGraph figure1_example();

/// Figures 2/3: the 5-node loop A..E (A[i]=E[i−4]+9; B[i]=A[i]*5;
/// C[i]=A[i]+B[i−2]; D[i]=A[i]*C[i]; E[i]=D[i]+30).
[[nodiscard]] DataFlowGraph figure3_example();

/// Figures 4–7: the 3-statement loop (A[i]=B[i−3]*3; B[i]=A[i]+7;
/// C[i]=B[i]*2).
[[nodiscard]] DataFlowGraph figure4_example();

/// Figure 8: the Chao–Sha example with non-unit computation times. The
/// published figure is an image we cannot recover; this reconstruction is a
/// 5-node cycle with times {9,7,5,4,2}, both delays clustered on one edge,
/// and an inner 2-node cycle. Iteration bound 27/2 (fractional — unfolding
/// required for rate optimality), and every unfolded version needs a
/// non-trivial retiming: the properties Table 3 exercises.
[[nodiscard]] DataFlowGraph chao_sha_example();

struct BenchmarkInfo {
  std::string name;
  std::function<DataFlowGraph()> factory;
};

/// The six Table-1/Table-2 benchmarks, in the paper's row order.
[[nodiscard]] const std::vector<BenchmarkInfo>& table_benchmarks();

/// Every graph in this module (benchmarks + didactic examples).
[[nodiscard]] const std::vector<BenchmarkInfo>& all_graphs();

}  // namespace csr::benchmarks
