#include "benchmarks/benchmarks.hpp"

#include <string>

#include "dfg/builders.hpp"
#include "support/check.hpp"

namespace csr::benchmarks {

DataFlowGraph iir_filter() {
  // Recursion: 6-op loop (multiply-accumulate ladder) closed by a 2-delay
  // feedback — iteration bound 6/2 = 3. Output section: two ops fed by
  // delayed taps so they never stretch the critical path.
  DataFlowGraph g("iir");
  const auto loop = add_mac_chain(g, "f", 6);
  g.add_edge(loop[5], loop[0], 2);
  const NodeId o1 = g.add_node("Aout1");
  const NodeId o2 = g.add_node("Mout2");
  g.add_edge(loop[5], o1, 1);
  g.add_edge(loop[3], o1, 1);
  g.add_edge(o1, o2, 0);
  CSR_ENSURE(g.node_count() == 8, "iir benchmark must have 8 nodes");
  return g;
}

DataFlowGraph differential_equation_solver() {
  // The u/y update recursion of the HAL benchmark: a 9-op
  // multiply-accumulate chain closed by a 3-delay feedback (iteration
  // bound 3), plus the loop-control pair (x increment, compare).
  DataFlowGraph g("diffeq");
  const auto update = add_mac_chain(g, "u", 9);
  g.add_edge(update[8], update[0], 3);
  const NodeId x1 = g.add_node("Ax1");  // x = x + dx
  const NodeId cmp = g.add_node("Acmp");
  g.add_edge(x1, x1, 1);
  g.add_edge(x1, cmp, 0);
  g.add_edge(update[8], cmp, 1);
  CSR_ENSURE(g.node_count() == 11, "diffeq benchmark must have 11 nodes");
  return g;
}

DataFlowGraph allpole_filter() {
  // 12-op recursion with four delays (iteration bound 3) and a 3-op output
  // ladder on delayed taps.
  DataFlowGraph g("allpole");
  const auto loop = add_mac_chain(g, "s", 12);
  g.add_edge(loop[11], loop[0], 4);
  const NodeId o1 = g.add_node("Aout1");
  const NodeId o2 = g.add_node("Aout2");
  const NodeId o3 = g.add_node("Mout3");
  g.add_edge(loop[5], o1, 1);
  g.add_edge(loop[11], o1, 1);
  g.add_edge(o1, o2, 0);
  g.add_edge(loop[8], o2, 2);
  g.add_edge(o2, o3, 0);
  CSR_ENSURE(g.node_count() == 15, "allpole benchmark must have 15 nodes");
  return g;
}

DataFlowGraph elliptic_filter() {
  // Four 8-op second-order sections, each closed by a 3-delay feedback
  // (iteration bound 8/3 — fractional, the hallmark of the elliptic wave
  // filter), chained through delayed inter-section edges, plus a 2-op
  // output combiner.
  DataFlowGraph g("elliptic");
  std::vector<std::vector<NodeId>> sections;
  for (int s = 0; s < 4; ++s) {
    sections.push_back(add_mac_chain(g, "e" + std::to_string(s + 1) + "_", 8));
    g.add_edge(sections.back()[7], sections.back()[0], 3);
  }
  for (int s = 0; s + 1 < 4; ++s) {
    g.add_edge(sections[static_cast<std::size_t>(s)][7],
               sections[static_cast<std::size_t>(s + 1)][0], 3);
  }
  const NodeId o1 = g.add_node("Aout1");
  const NodeId o2 = g.add_node("Aout2");
  g.add_edge(sections[1][7], o1, 1);
  g.add_edge(sections[3][7], o1, 1);
  g.add_edge(o1, o2, 0);
  g.add_edge(sections[2][7], o2, 2);
  CSR_ENSURE(g.node_count() == 34, "elliptic benchmark must have 34 nodes");
  return g;
}

DataFlowGraph lattice_filter() {
  // Three 8-op lattice stages with 3-delay feedback each plus a 2-op
  // combiner — 26 nodes, iteration bound 8/3.
  DataFlowGraph g("lattice");
  std::vector<std::vector<NodeId>> stages;
  for (int s = 0; s < 3; ++s) {
    stages.push_back(add_mac_chain(g, "l" + std::to_string(s + 1) + "_", 8));
    g.add_edge(stages.back()[7], stages.back()[0], 3);
  }
  for (int s = 0; s + 1 < 3; ++s) {
    g.add_edge(stages[static_cast<std::size_t>(s)][7],
               stages[static_cast<std::size_t>(s + 1)][0], 3);
  }
  const NodeId o1 = g.add_node("Aout1");
  const NodeId o2 = g.add_node("Mout2");
  g.add_edge(stages[0][7], o1, 1);
  g.add_edge(stages[2][7], o1, 1);
  g.add_edge(o1, o2, 0);
  CSR_ENSURE(g.node_count() == 26, "lattice benchmark must have 26 nodes");
  return g;
}

DataFlowGraph volterra_filter() {
  // A 6-op linear recursion with two delays (iteration bound 3) feeding a
  // feed-forward 2nd-order kernel: 12 product nodes over delayed taps, a
  // 6-op pair-accumulate layer and a 3-op final accumulate layer.
  DataFlowGraph g("volterra");
  const auto loop = add_mac_chain(g, "v", 6);
  g.add_edge(loop[5], loop[0], 2);

  std::vector<NodeId> products;
  for (int k = 0; k < 12; ++k) {
    const NodeId p = g.add_node("Mp" + std::to_string(k + 1));
    // Each product reads two delayed taps of the recursion.
    g.add_edge(loop[static_cast<std::size_t>(k % 6)], p, 1 + k % 2);
    g.add_edge(loop[static_cast<std::size_t>((k + 3) % 6)], p, 1);
    products.push_back(p);
  }
  std::vector<NodeId> layer1;
  for (int k = 0; k < 6; ++k) {
    const NodeId a = g.add_node("Aq" + std::to_string(k + 1));
    g.add_edge(products[static_cast<std::size_t>(2 * k)], a, 0);
    g.add_edge(products[static_cast<std::size_t>(2 * k + 1)], a, 0);
    layer1.push_back(a);
  }
  for (int k = 0; k < 3; ++k) {
    const NodeId a = g.add_node("Ar" + std::to_string(k + 1));
    g.add_edge(layer1[static_cast<std::size_t>(2 * k)], a, 0);
    g.add_edge(layer1[static_cast<std::size_t>(2 * k + 1)], a, 0);
  }
  CSR_ENSURE(g.node_count() == 27, "volterra benchmark must have 27 nodes");
  return g;
}

DataFlowGraph figure1_example() {
  DataFlowGraph g("figure1");
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 2);
  return g;
}

DataFlowGraph figure3_example() {
  DataFlowGraph g("figure3");
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  const NodeId d = g.add_node("D");
  const NodeId e = g.add_node("E");
  g.add_edge(e, a, 4);  // A[i] = E[i-4] + 9
  g.add_edge(a, b, 0);  // B[i] = A[i] * 5
  g.add_edge(a, c, 0);  // C[i] = A[i] + B[i-2]
  g.add_edge(b, c, 2);
  g.add_edge(a, d, 0);  // D[i] = A[i] * C[i]
  g.add_edge(c, d, 0);
  g.add_edge(d, e, 0);  // E[i] = D[i] + 30
  return g;
}

DataFlowGraph figure4_example() {
  DataFlowGraph g("figure4");
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  g.add_edge(b, a, 3);  // A[i] = B[i-3] * 3
  g.add_edge(a, b, 0);  // B[i] = A[i] + 7
  g.add_edge(b, c, 0);  // C[i] = B[i] * 2
  return g;
}

DataFlowGraph chao_sha_example() {
  DataFlowGraph g("chao-sha-fig8");
  const NodeId a = g.add_node("A", 9);
  const NodeId b = g.add_node("B", 7);
  const NodeId c = g.add_node("C", 5);
  const NodeId d = g.add_node("D", 4);
  const NodeId e = g.add_node("E", 2);
  // Both delays clustered on A->B, plus an inner cycle C->B: the unfolded
  // graphs need retiming at every factor (M' = 1), and the rate-optimal
  // iteration period 27/2 is reached only at even unfolding factors -- the
  // non-trivial performance/size interplay Table 3 exercises.
  g.add_edge(a, b, 2);
  g.add_edge(b, c, 0);
  g.add_edge(c, d, 0);
  g.add_edge(d, e, 0);
  g.add_edge(e, a, 0);
  g.add_edge(c, b, 1);
  return g;
}

const std::vector<BenchmarkInfo>& table_benchmarks() {
  static const std::vector<BenchmarkInfo> list = {
      {"IIR Filter", iir_filter},
      {"Differential Equation", differential_equation_solver},
      {"All-pole Filter", allpole_filter},
      {"Elliptical Filter", elliptic_filter},
      {"4-stage Lattice Filter", lattice_filter},
      {"Volterra Filter", volterra_filter},
  };
  return list;
}

const std::vector<BenchmarkInfo>& all_graphs() {
  static const std::vector<BenchmarkInfo> list = [] {
    std::vector<BenchmarkInfo> graphs = table_benchmarks();
    graphs.push_back({"Figure 1", figure1_example});
    graphs.push_back({"Figure 3", figure3_example});
    graphs.push_back({"Figure 4", figure4_example});
    graphs.push_back({"Chao-Sha Figure 8", chao_sha_example});
    return graphs;
  }();
  return list;
}

}  // namespace csr::benchmarks
