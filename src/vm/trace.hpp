#pragma once

/// \file trace.hpp
/// Per-trip execution traces of loop programs — the machinery behind the
/// paper's Figure 3(c)/7(c) "execution sequence" tables. Conditional
/// register values are fully determined by the instruction stream, so the
/// trace is computed by replaying setups/decrements and evaluating each
/// guard window, without touching array memory.

#include <string>
#include <vector>

#include "loopir/program.hpp"

namespace csr {

/// What one trip of one segment did.
struct TripTrace {
  std::int64_t i = 0;  ///< loop index of the trip
  /// Enabled statements, rendered as "A[5]" (target with substituted index).
  std::vector<std::string> enabled;
  /// Statements whose guard disabled them, rendered the same way.
  std::vector<std::string> disabled;
};

/// Replays `program` and reports every trip in order. Throws
/// InvalidArgument when the program does not validate.
[[nodiscard]] std::vector<TripTrace> trace_program(const LoopProgram& program);

/// Renders the trace as one line per trip:
///   i=-2: A[1] C[1] | (disabled: B[0] ...)
/// Trips with nothing enabled and nothing disabled are skipped.
[[nodiscard]] std::string format_trace(const std::vector<TripTrace>& trace);

}  // namespace csr
