#include "vm/trace.hpp"

#include <map>
#include <sstream>

#include "support/error.hpp"
#include "support/text.hpp"

namespace csr {

namespace {

struct Register {
  std::int64_t value = 0;
  std::int64_t lower_bound = 0;
};

}  // namespace

std::vector<TripTrace> trace_program(const LoopProgram& program) {
  {
    const auto problems = program.validate();
    if (!problems.empty()) {
      throw InvalidArgument("cannot trace invalid program: " + join(problems, "; "));
    }
  }
  std::vector<TripTrace> trace;
  std::map<std::string, Register> registers;
  for (const LoopSegment& seg : program.segments) {
    for (std::int64_t i = seg.begin; i <= seg.end; i += seg.step) {
      TripTrace trip;
      trip.i = i;
      for (const Instruction& instr : seg.instructions) {
        switch (instr.kind) {
          case InstrKind::kSetup:
            registers[instr.reg] = Register{instr.value, -program.n};
            break;
          case InstrKind::kDecrement:
            registers.at(instr.reg).value -= instr.value;
            break;
          case InstrKind::kStatement: {
            bool enabled = true;
            if (!instr.guard.empty()) {
              const Register& reg = registers.at(instr.guard);
              enabled = reg.value <= 0 && reg.value > reg.lower_bound;
            }
            std::ostringstream cell;
            cell << instr.stmt.array << '[' << (i + instr.stmt.offset) << ']';
            (enabled ? trip.enabled : trip.disabled).push_back(cell.str());
            break;
          }
        }
      }
      trace.push_back(std::move(trip));
    }
  }
  return trace;
}

std::string format_trace(const std::vector<TripTrace>& trace) {
  std::ostringstream os;
  for (const TripTrace& trip : trace) {
    if (trip.enabled.empty() && trip.disabled.empty()) continue;
    os << "i=" << trip.i << ':';
    for (const std::string& cell : trip.enabled) os << ' ' << cell;
    if (!trip.disabled.empty()) {
      os << "  (disabled:";
      for (const std::string& cell : trip.disabled) os << ' ' << cell;
      os << ')';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace csr
