#include "vm/batch.hpp"

#include "observe/observe.hpp"

namespace csr {

std::vector<Machine> run_program_batch(const std::vector<LoopProgram>& programs) {
  CSR_SPAN("vm", "run_program_batch");
  static observe::Counter& lane_counter =
      observe::MetricsRegistry::global().counter(
          "csr_batch_vm_lanes_total", "Lanes executed through the batched VM path");
  std::vector<Machine> machines;
  machines.reserve(programs.size());
  for (const LoopProgram& program : programs) {
    machines.push_back(run_program(program, ExecMode::kSuper));
  }
  lane_counter.increment(programs.size());
  return machines;
}

}  // namespace csr
