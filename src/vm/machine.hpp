#pragma once

/// \file machine.hpp
/// An interpreter for loop programs implementing the paper's conditional-
/// register semantics (Section 3.1):
///
///   * `setup p = v : -LC` loads v into p and records −LC as the lower
///     comparison bound (LC is the program's original trip count n);
///   * a guarded statement `(p) stmt` executes iff 0 ≥ p > −LC — the
///     comparison is "implemented by hardware", i.e. evaluated at the moment
///     the guarded instruction issues;
///   * `p = p − a` decrements the register.
///
/// Array memory is sparse and unbounded in both directions. Reads of cells
/// never written yield a deterministic per-(array, index) boundary value —
/// the loop's live-in data. Every write is counted, so tests can assert the
/// execution-count claims of Theorems 4.1/4.2/4.6: each node executes
/// exactly n times, no matter how the loop was pipelined or unfolded.
///
/// Three execution engines share these semantics bit-for-bit:
///
///   * ExecMode::kFast (default) — the program is *resolved* once before the
///     first trip: array names are interned to dense ids (in
///     LoopProgram::array_names() order), guard/decrement register names are
///     pre-resolved to indices, and each array's index span is computed from
///     the segment bounds so memory and write counts live in flat vectors.
///     The inner interpret loop performs no string hashing, no map lookups
///     and no per-statement allocation.
///   * ExecMode::kSuper — the superinstruction fast path: on top of the
///     kFast resolution, maximal runs of consecutive statements that share
///     one guard register (or are all unguarded) are fused into single
///     superinstructions. The guard window is evaluated once per fused op —
///     legal because no setup or decrement can intervene inside a run — so
///     straight-line guarded segments of post-optimizer LoopIR execute with
///     one branch per run instead of one per statement. Execution counters
///     (issued / executed / disabled) are accounted per original statement,
///     so results are bit-identical to kFast (the batch execution engine
///     and the fuzz harness both cross-check this).
///   * ExecMode::kReference — the original std::map-backed interpreter, kept
///     as the differential-testing oracle and the "before" baseline of
///     bench/perf_codegen_vm.cpp. Both fast paths also fall back to it when
///     a program's index span is too large to back with dense storage.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "loopir/program.hpp"

namespace csr {

/// Deterministic live-in value of `array[index]`.
[[nodiscard]] std::uint64_t boundary_value(const std::string& array, std::int64_t index);

/// Value of a statement with `op_seed` writing `target_index` from operand
/// values — a 64-bit hash, order-sensitive in the operands.
[[nodiscard]] std::uint64_t statement_value(std::uint64_t op_seed,
                                            std::int64_t target_index,
                                            const std::vector<std::uint64_t>& operands);

/// Interpreter engine selection; see the file comment.
enum class ExecMode { kFast, kSuper, kReference };

class Machine {
 public:
  Machine() = default;

  /// Executes `program` from a fresh state. Throws InvalidArgument when the
  /// program fails LoopProgram::validate() or uses a register before setup.
  void run(const LoopProgram& program, ExecMode mode = ExecMode::kFast);

  /// Current value of `array[index]` (boundary value when never written).
  [[nodiscard]] std::uint64_t read(const std::string& array, std::int64_t index) const;

  /// True when `array[index]` has been written at least once.
  [[nodiscard]] bool written(const std::string& array, std::int64_t index) const;

  /// Number of times `array[index]` was written.
  [[nodiscard]] int write_count(const std::string& array, std::int64_t index) const;

  /// Total writes performed by `array`'s statements.
  [[nodiscard]] std::int64_t total_writes(const std::string& array) const;

  /// Statements whose guard disabled them.
  [[nodiscard]] std::int64_t disabled_statements() const { return disabled_; }
  /// Statements that executed.
  [[nodiscard]] std::int64_t executed_statements() const { return executed_; }
  /// Total instructions issued (statements incl. disabled + setups + decrements).
  [[nodiscard]] std::int64_t issued_instructions() const { return issued_; }

 private:
  struct Register {
    std::int64_t value = 0;
    std::int64_t lower_bound = 0;  // the −LC of the setup
  };

  /// Flat per-array storage of the fast path: values and write counts for
  /// every index in [base, base + values.size()), plus the precomputed
  /// boundary-value seed so unwritten reads stay string-free.
  struct FlatArray {
    std::string name;
    std::uint64_t seed = 0;
    std::int64_t base = 0;
    std::int64_t writes = 0;
    std::vector<std::uint64_t> values;
    std::vector<std::int32_t> counts;
  };

  void run_reference(const LoopProgram& program);
  /// Returns false when the program's index span exceeds the dense-storage
  /// budget and the caller should fall back to the reference engine. When
  /// `fuse` is set, consecutive same-guard statement runs execute as fused
  /// superinstructions (ExecMode::kSuper); results are bit-identical.
  bool run_fast(const LoopProgram& program, bool fuse);
  void execute(const Instruction& instr, std::int64_t i, std::int64_t lc);
  [[nodiscard]] const FlatArray* flat_array(const std::string& array) const;

  // Reference-engine state.
  std::map<std::string, std::map<std::int64_t, std::uint64_t>> memory_;
  std::map<std::string, std::map<std::int64_t, int>> write_counts_;
  std::map<std::string, Register> registers_;

  // Fast-engine state (post-run queries go through array_ids_).
  std::vector<FlatArray> arrays_;
  std::map<std::string, std::int32_t> array_ids_;
  bool flat_ = false;

  std::int64_t disabled_ = 0;
  std::int64_t executed_ = 0;
  std::int64_t issued_ = 0;
};

/// Runs `program` on a fresh machine.
[[nodiscard]] Machine run_program(const LoopProgram& program,
                                  ExecMode mode = ExecMode::kFast);

}  // namespace csr
