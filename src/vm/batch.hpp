#pragma once

/// \file batch.hpp
/// Batched VM execution: runs every program of a batch through the
/// superinstruction engine (ExecMode::kSuper) and returns one Machine per
/// lane. Lanes are independent on the VM — there is no cross-lane state to
/// vectorize — so this is the driver's uniform batch interface for
/// ExecEngine::kVm, the per-lane results bit-identical to single-cell
/// run_program calls (held by the batch differential harness).

#include <vector>

#include "loopir/program.hpp"
#include "vm/machine.hpp"

namespace csr {

/// Runs each program on a fresh machine via ExecMode::kSuper. Results are
/// parallel to `programs`. Throws InvalidArgument on the first invalid
/// program (same contract as Machine::run).
[[nodiscard]] std::vector<Machine> run_program_batch(
    const std::vector<LoopProgram>& programs);

}  // namespace csr
