#pragma once

/// \file equivalence.hpp
/// Semantic comparison of loop programs by execution. The observable effect
/// of a loop over a DFG is the contents of every node's array at indices
/// 1..n; the CSR transformation theorems (4.1, 4.2, 4.6, 4.7) all amount to
/// "the transformed program leaves the same observable state as the
/// original". This module runs programs in the VM and diffs that state, and
/// additionally checks the execution-count discipline (each array written
/// exactly once per index, exactly n writes per array — no duplicated or
/// missing node copies).

#include <string>
#include <vector>

#include "loopir/program.hpp"
#include "vm/machine.hpp"

namespace csr {

/// Differences between two executed machines over `arrays` at indices 1..n.
/// Empty means observably equivalent. Each entry is human-readable
/// ("A[7]: 0x... vs 0x...").
[[nodiscard]] std::vector<std::string> diff_observable_state(
    const Machine& expected, const Machine& actual,
    const std::vector<std::string>& arrays, std::int64_t n);

/// Write-discipline problems of an executed machine: any index of a listed
/// array written more than once, writes outside 1..n, or a total write count
/// different from n. Empty means the program executed each node exactly once
/// per original iteration — the paper's correctness requirement.
[[nodiscard]] std::vector<std::string> check_write_discipline(
    const Machine& machine, const std::vector<std::string>& arrays, std::int64_t n);

/// Runs both programs and returns the observable diff (convenience).
[[nodiscard]] std::vector<std::string> compare_programs(
    const LoopProgram& expected, const LoopProgram& actual,
    const std::vector<std::string>& arrays);

}  // namespace csr
