#pragma once

/// \file equivalence.hpp
/// Semantic comparison of loop programs by execution. The observable effect
/// of a loop over a DFG is the contents of every node's array at indices
/// 1..n; the CSR transformation theorems (4.1, 4.2, 4.6, 4.7) all amount to
/// "the transformed program leaves the same observable state as the
/// original". This module runs programs in the VM and diffs that state, and
/// additionally checks the execution-count discipline (each array written
/// exactly once per index, exactly n writes per array — no duplicated or
/// missing node copies).
///
/// The diff and discipline checks are written against the StateView
/// interface rather than the Machine class, so *any* execution engine that
/// can answer "what is array[index] and how often was it written" plugs into
/// the same differential harness — the map-backed reference interpreter and
/// the fast VM (both via Machine), and the dlopen-based native engine
/// (src/native/engine.hpp). See docs/ENGINES.md for the three-engine
/// differential-testing contract.

#include <string>
#include <vector>

#include "loopir/program.hpp"
#include "vm/machine.hpp"

namespace csr {

/// The observable state of one executed loop program, whatever engine ran
/// it: per-cell values (with the engine's boundary-value fallback for
/// never-written cells), per-cell write counts, and per-array write totals.
class StateView {
 public:
  virtual ~StateView() = default;
  [[nodiscard]] virtual std::uint64_t read(const std::string& array,
                                           std::int64_t index) const = 0;
  [[nodiscard]] virtual int write_count(const std::string& array,
                                        std::int64_t index) const = 0;
  [[nodiscard]] virtual std::int64_t total_writes(const std::string& array) const = 0;
};

/// StateView over an executed Machine (either ExecMode).
class MachineView final : public StateView {
 public:
  explicit MachineView(const Machine& machine) : machine_(&machine) {}
  [[nodiscard]] std::uint64_t read(const std::string& array,
                                   std::int64_t index) const override {
    return machine_->read(array, index);
  }
  [[nodiscard]] int write_count(const std::string& array,
                                std::int64_t index) const override {
    return machine_->write_count(array, index);
  }
  [[nodiscard]] std::int64_t total_writes(const std::string& array) const override {
    return machine_->total_writes(array);
  }

 private:
  const Machine* machine_;
};

/// Differences between two executed engines over `arrays` at indices 1..n.
/// Empty means observably equivalent. Each entry is human-readable
/// ("A[7]: 0x... vs 0x...").
[[nodiscard]] std::vector<std::string> diff_observable_state(
    const StateView& expected, const StateView& actual,
    const std::vector<std::string>& arrays, std::int64_t n);

/// Machine convenience overload.
[[nodiscard]] std::vector<std::string> diff_observable_state(
    const Machine& expected, const Machine& actual,
    const std::vector<std::string>& arrays, std::int64_t n);

/// Write-discipline problems of an executed engine: any index of a listed
/// array written more than once, writes outside 1..n, or a total write count
/// different from n. Empty means the program executed each node exactly once
/// per original iteration — the paper's correctness requirement.
[[nodiscard]] std::vector<std::string> check_write_discipline(
    const StateView& state, const std::vector<std::string>& arrays, std::int64_t n);

/// Machine convenience overload.
[[nodiscard]] std::vector<std::string> check_write_discipline(
    const Machine& machine, const std::vector<std::string>& arrays, std::int64_t n);

/// Runs both programs and returns the observable diff (convenience).
[[nodiscard]] std::vector<std::string> compare_programs(
    const LoopProgram& expected, const LoopProgram& actual,
    const std::vector<std::string>& arrays);

}  // namespace csr
