#include "vm/machine.hpp"

#include "support/check.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace csr {

namespace {

std::uint64_t mix(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t boundary_value(const std::string& array, std::int64_t index) {
  return mix(op_seed_for(array) ^ mix(static_cast<std::uint64_t>(index) ^
                                      0xA5A5A5A5A5A5A5A5ULL));
}

std::uint64_t statement_value(std::uint64_t op_seed, std::int64_t target_index,
                              const std::vector<std::uint64_t>& operands) {
  std::uint64_t h = mix(op_seed ^ mix(static_cast<std::uint64_t>(target_index)));
  for (const std::uint64_t v : operands) {
    h = mix(h ^ mix(v));
  }
  return h;
}

void Machine::execute(const Instruction& instr, std::int64_t i, std::int64_t lc) {
  ++issued_;
  switch (instr.kind) {
    case InstrKind::kStatement: {
      if (!instr.guard.empty()) {
        const auto it = registers_.find(instr.guard);
        if (it == registers_.end()) {
          throw InvalidArgument("guard register '" + instr.guard + "' used before setup");
        }
        const Register& reg = it->second;
        const bool enabled = reg.value <= 0 && reg.value > reg.lower_bound;
        if (!enabled) {
          ++disabled_;
          return;
        }
      }
      std::vector<std::uint64_t> operands;
      operands.reserve(instr.stmt.sources.size());
      for (const ArrayRef& src : instr.stmt.sources) {
        operands.push_back(read(src.array, i + src.offset));
      }
      const std::int64_t target = i + instr.stmt.offset;
      memory_[instr.stmt.array][target] =
          statement_value(instr.stmt.op_seed, target, operands);
      ++write_counts_[instr.stmt.array][target];
      ++executed_;
      break;
    }
    case InstrKind::kSetup:
      registers_[instr.reg] = Register{instr.value, -lc};
      break;
    case InstrKind::kDecrement: {
      const auto it = registers_.find(instr.reg);
      if (it == registers_.end()) {
        throw InvalidArgument("decrement of register '" + instr.reg + "' before setup");
      }
      it->second.value -= instr.value;
      break;
    }
  }
}

void Machine::run(const LoopProgram& program) {
  const auto problems = program.validate();
  if (!problems.empty()) {
    throw InvalidArgument("invalid loop program: " + join(problems, "; "));
  }
  for (const LoopSegment& seg : program.segments) {
    for (std::int64_t i = seg.begin; i <= seg.end; i += seg.step) {
      for (const Instruction& instr : seg.instructions) {
        execute(instr, i, program.n);
      }
    }
  }
}

std::uint64_t Machine::read(const std::string& array, std::int64_t index) const {
  const auto arr = memory_.find(array);
  if (arr != memory_.end()) {
    const auto cell = arr->second.find(index);
    if (cell != arr->second.end()) return cell->second;
  }
  return boundary_value(array, index);
}

bool Machine::written(const std::string& array, std::int64_t index) const {
  return write_count(array, index) > 0;
}

int Machine::write_count(const std::string& array, std::int64_t index) const {
  const auto arr = write_counts_.find(array);
  if (arr == write_counts_.end()) return 0;
  const auto cell = arr->second.find(index);
  return cell == arr->second.end() ? 0 : cell->second;
}

std::int64_t Machine::total_writes(const std::string& array) const {
  const auto arr = write_counts_.find(array);
  if (arr == write_counts_.end()) return 0;
  std::int64_t total = 0;
  for (const auto& [index, count] : arr->second) total += count;
  return total;
}

Machine run_program(const LoopProgram& program) {
  Machine machine;
  machine.run(program);
  return machine;
}

}  // namespace csr
