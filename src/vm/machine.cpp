#include "vm/machine.hpp"

#include <limits>

#include "observe/observe.hpp"
#include "support/check.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace csr {

namespace {

std::uint64_t mix(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kBoundarySalt = 0xA5A5A5A5A5A5A5A5ULL;

/// Dense-storage budget of the fast path, in cells (12 bytes each). Programs
/// whose arrays span more indices than this (huge offsets, tiny trip counts)
/// fall back to the sparse reference engine instead of over-allocating.
constexpr std::int64_t kMaxFlatCells = std::int64_t{1} << 26;

// --- resolved program: what the fast interpreter actually executes --------

struct FastSource {
  std::int32_t array = 0;
  std::int64_t offset = 0;
};

struct FastInstr {
  InstrKind kind = InstrKind::kStatement;
  std::int32_t guard = -1;  // register index; -1 = unconditional
  std::int32_t array = 0;   // kStatement: target array id
  std::int32_t reg = 0;     // kSetup / kDecrement: register index
  std::uint32_t src_begin = 0;
  std::uint32_t src_count = 0;  // range into the shared source pool
  std::int64_t offset = 0;
  std::uint64_t op_seed = 0;
  std::int64_t value = 0;
};

/// One fused op of the superinstruction path (ExecMode::kSuper): a maximal
/// run of consecutive statements sharing one guard register (-1 = all
/// unconditional), or a single setup/decrement. Fusing is legal exactly
/// because no register-mutating instruction sits inside a run, so the guard
/// window evaluated once at the run's head holds for every statement in it.
struct SuperOp {
  InstrKind kind = InstrKind::kStatement;
  std::int32_t guard = -1;
  std::uint32_t first = 0;  ///< index of the run's first FastInstr
  std::uint32_t count = 0;  ///< statements fused into this op
};

struct FastSegment {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t step = 1;
  std::vector<FastInstr> instrs;
  std::vector<SuperOp> super;  ///< filled only by the kSuper path
};

struct FastRegister {
  std::int64_t value = 0;
  std::int64_t lower_bound = 0;
  bool live = false;
};

struct IndexSpan {
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
  void widen(std::int64_t v) {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  [[nodiscard]] bool seen() const { return min <= max; }
};

}  // namespace

std::uint64_t boundary_value(const std::string& array, std::int64_t index) {
  return mix(op_seed_for(array) ^
             mix(static_cast<std::uint64_t>(index) ^ kBoundarySalt));
}

std::uint64_t statement_value(std::uint64_t op_seed, std::int64_t target_index,
                              const std::vector<std::uint64_t>& operands) {
  std::uint64_t h = mix(op_seed ^ mix(static_cast<std::uint64_t>(target_index)));
  for (const std::uint64_t v : operands) {
    h = mix(h ^ mix(v));
  }
  return h;
}

// --- reference engine ------------------------------------------------------

void Machine::execute(const Instruction& instr, std::int64_t i, std::int64_t lc) {
  ++issued_;
  switch (instr.kind) {
    case InstrKind::kStatement: {
      if (!instr.guard.empty()) {
        const auto it = registers_.find(instr.guard);
        if (it == registers_.end()) {
          throw InvalidArgument("guard register '" + instr.guard + "' used before setup");
        }
        const Register& reg = it->second;
        const bool enabled = reg.value <= 0 && reg.value > reg.lower_bound;
        if (!enabled) {
          ++disabled_;
          return;
        }
      }
      std::vector<std::uint64_t> operands;
      operands.reserve(instr.stmt.sources.size());
      for (const ArrayRef& src : instr.stmt.sources) {
        operands.push_back(read(src.array, i + src.offset));
      }
      const std::int64_t target = i + instr.stmt.offset;
      memory_[instr.stmt.array][target] =
          statement_value(instr.stmt.op_seed, target, operands);
      ++write_counts_[instr.stmt.array][target];
      ++executed_;
      break;
    }
    case InstrKind::kSetup:
      registers_[instr.reg] = Register{instr.value, -lc};
      break;
    case InstrKind::kDecrement: {
      const auto it = registers_.find(instr.reg);
      if (it == registers_.end()) {
        throw InvalidArgument("decrement of register '" + instr.reg + "' before setup");
      }
      it->second.value -= instr.value;
      break;
    }
  }
}

void Machine::run_reference(const LoopProgram& program) {
  for (const LoopSegment& seg : program.segments) {
    for (std::int64_t i = seg.begin; i <= seg.end; i += seg.step) {
      for (const Instruction& instr : seg.instructions) {
        execute(instr, i, program.n);
      }
    }
  }
}

// --- fast engine ------------------------------------------------------------

bool Machine::run_fast(const LoopProgram& program, bool fuse) {
  // Intern array and register names to dense ids (first-use order).
  const std::vector<std::string> array_names = program.array_names();
  const std::vector<std::string> reg_names = program.conditional_registers();
  std::map<std::string, std::int32_t> array_ids;
  for (const std::string& name : array_names) {
    array_ids.emplace(name, static_cast<std::int32_t>(array_ids.size()));
  }
  std::map<std::string, std::int32_t> reg_ids;
  for (const std::string& name : reg_names) {
    reg_ids.emplace(name, static_cast<std::int32_t>(reg_ids.size()));
  }

  // Resolve instructions and compute each array's index span over every
  // segment's loop bounds, so storage can be flat vectors.
  std::vector<IndexSpan> spans(array_names.size());
  std::vector<FastSegment> segments;
  std::vector<FastSource> sources;
  segments.reserve(program.segments.size());
  for (const LoopSegment& seg : program.segments) {
    const std::int64_t trips = seg.trip_count();
    if (trips == 0) continue;
    const std::int64_t last = seg.begin + (trips - 1) * seg.step;
    FastSegment fast_seg;
    fast_seg.begin = seg.begin;
    fast_seg.end = seg.end;
    fast_seg.step = seg.step;
    fast_seg.instrs.reserve(seg.instructions.size());
    for (const Instruction& instr : seg.instructions) {
      FastInstr fi;
      fi.kind = instr.kind;
      switch (instr.kind) {
        case InstrKind::kStatement: {
          fi.guard = instr.guard.empty() ? -1 : reg_ids.at(instr.guard);
          fi.array = array_ids.at(instr.stmt.array);
          fi.offset = instr.stmt.offset;
          fi.op_seed = instr.stmt.op_seed;
          fi.src_begin = static_cast<std::uint32_t>(sources.size());
          fi.src_count = static_cast<std::uint32_t>(instr.stmt.sources.size());
          spans[static_cast<std::size_t>(fi.array)].widen(seg.begin + fi.offset);
          spans[static_cast<std::size_t>(fi.array)].widen(last + fi.offset);
          for (const ArrayRef& src : instr.stmt.sources) {
            const std::int32_t id = array_ids.at(src.array);
            sources.push_back(FastSource{id, src.offset});
            spans[static_cast<std::size_t>(id)].widen(seg.begin + src.offset);
            spans[static_cast<std::size_t>(id)].widen(last + src.offset);
          }
          break;
        }
        case InstrKind::kSetup:
        case InstrKind::kDecrement:
          fi.reg = reg_ids.at(instr.reg);
          fi.value = instr.value;
          break;
      }
      fast_seg.instrs.push_back(fi);
    }
    if (fuse) {
      // Fuse maximal same-guard statement runs; setups and decrements stay
      // singleton ops (they mutate registers, so they delimit runs).
      for (std::uint32_t k = 0; k < fast_seg.instrs.size(); ++k) {
        const FastInstr& fi = fast_seg.instrs[k];
        SuperOp op;
        op.kind = fi.kind;
        op.first = k;
        op.count = 1;
        if (fi.kind == InstrKind::kStatement) {
          op.guard = fi.guard;
          if (!fast_seg.super.empty()) {
            SuperOp& prev = fast_seg.super.back();
            if (prev.kind == InstrKind::kStatement && prev.guard == fi.guard &&
                prev.first + prev.count == k) {
              ++prev.count;
              continue;
            }
          }
        }
        fast_seg.super.push_back(op);
      }
    }
    segments.push_back(std::move(fast_seg));
  }

  std::int64_t total_cells = 0;
  for (const IndexSpan& span : spans) {
    if (!span.seen()) continue;
    total_cells += span.max - span.min + 1;
    if (total_cells > kMaxFlatCells) return false;  // fall back to reference
  }

  arrays_.clear();
  arrays_.reserve(array_names.size());
  for (std::size_t a = 0; a < array_names.size(); ++a) {
    FlatArray flat;
    flat.name = array_names[a];
    flat.seed = op_seed_for(flat.name);
    if (spans[a].seen()) {
      flat.base = spans[a].min;
      const auto extent = static_cast<std::size_t>(spans[a].max - spans[a].min + 1);
      flat.values.assign(extent, 0);
      flat.counts.assign(extent, 0);
    }
    arrays_.push_back(std::move(flat));
  }
  array_ids_ = std::move(array_ids);
  flat_ = true;

  // The interpret loop proper: no strings, no maps, no allocation.
  std::vector<FastRegister> regs(reg_names.size());
  const std::int64_t lc = program.n;

  const auto exec_statement = [&](const FastInstr& fi, std::int64_t i) {
    const std::int64_t target = i + fi.offset;
    std::uint64_t h = mix(fi.op_seed ^ mix(static_cast<std::uint64_t>(target)));
    const std::uint32_t src_end = fi.src_begin + fi.src_count;
    for (std::uint32_t s = fi.src_begin; s < src_end; ++s) {
      const FastSource& src = sources[s];
      const FlatArray& arr = arrays_[static_cast<std::size_t>(src.array)];
      const std::int64_t idx = i + src.offset;
      const auto slot = static_cast<std::size_t>(idx - arr.base);
      const std::uint64_t v =
          arr.counts[slot] != 0
              ? arr.values[slot]
              : mix(arr.seed ^ mix(static_cast<std::uint64_t>(idx) ^ kBoundarySalt));
      h = mix(h ^ mix(v));
    }
    FlatArray& dst = arrays_[static_cast<std::size_t>(fi.array)];
    const auto slot = static_cast<std::size_t>(target - dst.base);
    dst.values[slot] = h;
    ++dst.counts[slot];
    ++dst.writes;
    ++executed_;
  };
  const auto setup_register = [&](const FastInstr& fi) {
    FastRegister& reg = regs[static_cast<std::size_t>(fi.reg)];
    reg.value = fi.value;
    reg.lower_bound = -lc;
    reg.live = true;
  };
  const auto decrement_register = [&](const FastInstr& fi) {
    FastRegister& reg = regs[static_cast<std::size_t>(fi.reg)];
    if (!reg.live) {
      throw InvalidArgument("decrement of register '" +
                            reg_names[static_cast<std::size_t>(fi.reg)] +
                            "' before setup");
    }
    reg.value -= fi.value;
  };

  if (fuse) {
    // Superinstruction path: one guard evaluation per fused run. Counters
    // stay per original statement, so every observable (values, counts,
    // issued/executed/disabled) is bit-identical to the unfused path.
    for (const FastSegment& seg : segments) {
      for (std::int64_t i = seg.begin; i <= seg.end; i += seg.step) {
        for (const SuperOp& op : seg.super) {
          switch (op.kind) {
            case InstrKind::kStatement: {
              issued_ += op.count;
              if (op.guard >= 0) {
                const FastRegister& reg = regs[static_cast<std::size_t>(op.guard)];
                if (!reg.live) {
                  throw InvalidArgument(
                      "guard register '" +
                      reg_names[static_cast<std::size_t>(op.guard)] +
                      "' used before setup");
                }
                if (!(reg.value <= 0 && reg.value > reg.lower_bound)) {
                  disabled_ += op.count;
                  continue;
                }
              }
              const std::uint32_t run_end = op.first + op.count;
              for (std::uint32_t k = op.first; k < run_end; ++k) {
                exec_statement(seg.instrs[k], i);
              }
              break;
            }
            case InstrKind::kSetup:
              ++issued_;
              setup_register(seg.instrs[op.first]);
              break;
            case InstrKind::kDecrement:
              ++issued_;
              decrement_register(seg.instrs[op.first]);
              break;
          }
        }
      }
    }
    return true;
  }

  for (const FastSegment& seg : segments) {
    for (std::int64_t i = seg.begin; i <= seg.end; i += seg.step) {
      for (const FastInstr& fi : seg.instrs) {
        ++issued_;
        switch (fi.kind) {
          case InstrKind::kStatement: {
            if (fi.guard >= 0) {
              const FastRegister& reg = regs[static_cast<std::size_t>(fi.guard)];
              if (!reg.live) {
                throw InvalidArgument(
                    "guard register '" +
                    reg_names[static_cast<std::size_t>(fi.guard)] +
                    "' used before setup");
              }
              if (!(reg.value <= 0 && reg.value > reg.lower_bound)) {
                ++disabled_;
                continue;
              }
            }
            exec_statement(fi, i);
            break;
          }
          case InstrKind::kSetup:
            setup_register(fi);
            break;
          case InstrKind::kDecrement:
            decrement_register(fi);
            break;
        }
      }
    }
  }
  return true;
}

void Machine::run(const LoopProgram& program, ExecMode mode) {
  const auto problems = program.validate();
  if (!problems.empty()) {
    throw InvalidArgument("invalid loop program: " + join(problems, "; "));
  }
  if ((mode == ExecMode::kFast || mode == ExecMode::kSuper) &&
      run_fast(program, mode == ExecMode::kSuper)) {
    return;
  }
  run_reference(program);
}

// --- queries (served from whichever engine ran) -----------------------------

const Machine::FlatArray* Machine::flat_array(const std::string& array) const {
  const auto it = array_ids_.find(array);
  if (it == array_ids_.end()) return nullptr;
  return &arrays_[static_cast<std::size_t>(it->second)];
}

std::uint64_t Machine::read(const std::string& array, std::int64_t index) const {
  if (flat_) {
    if (const FlatArray* arr = flat_array(array)) {
      if (index >= arr->base &&
          index < arr->base + static_cast<std::int64_t>(arr->values.size())) {
        const auto slot = static_cast<std::size_t>(index - arr->base);
        if (arr->counts[slot] != 0) return arr->values[slot];
      }
    }
    return boundary_value(array, index);
  }
  const auto arr = memory_.find(array);
  if (arr != memory_.end()) {
    const auto cell = arr->second.find(index);
    if (cell != arr->second.end()) return cell->second;
  }
  return boundary_value(array, index);
}

bool Machine::written(const std::string& array, std::int64_t index) const {
  return write_count(array, index) > 0;
}

int Machine::write_count(const std::string& array, std::int64_t index) const {
  if (flat_) {
    if (const FlatArray* arr = flat_array(array)) {
      if (index >= arr->base &&
          index < arr->base + static_cast<std::int64_t>(arr->counts.size())) {
        return arr->counts[static_cast<std::size_t>(index - arr->base)];
      }
    }
    return 0;
  }
  const auto arr = write_counts_.find(array);
  if (arr == write_counts_.end()) return 0;
  const auto cell = arr->second.find(index);
  return cell == arr->second.end() ? 0 : cell->second;
}

std::int64_t Machine::total_writes(const std::string& array) const {
  if (flat_) {
    const FlatArray* arr = flat_array(array);
    return arr == nullptr ? 0 : arr->writes;
  }
  const auto arr = write_counts_.find(array);
  if (arr == write_counts_.end()) return 0;
  std::int64_t total = 0;
  for (const auto& [index, count] : arr->second) total += count;
  return total;
}

Machine run_program(const LoopProgram& program, ExecMode mode) {
  /// Registered once; run_program is the VM's hot entry point, so per-call
  /// work beyond the atomic adds (and one inert Span) must stay zero.
  struct VmMetrics {
    observe::Counter& runs;
    observe::Counter& statements;
  };
  static VmMetrics metrics = [] {
    auto& reg = observe::MetricsRegistry::global();
    return VmMetrics{
        reg.counter("csr_vm_runs_total", "Programs executed on the VM"),
        reg.counter("csr_vm_statements_total", "Statements the VM executed"),
    };
  }();
  observe::Span span("vm", "run_program");
  span.arg("mode", mode == ExecMode::kFast    ? "fast"
                   : mode == ExecMode::kSuper ? "super"
                                              : "reference");
  Machine machine;
  machine.run(program, mode);
  metrics.runs.increment();
  metrics.statements.increment(
      static_cast<std::uint64_t>(machine.executed_statements()));
  span.arg("statements", machine.executed_statements());
  return machine;
}

}  // namespace csr
