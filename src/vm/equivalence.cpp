#include "vm/equivalence.hpp"

#include <sstream>

#include "support/check.hpp"

namespace csr {

std::vector<std::string> diff_observable_state(const StateView& expected,
                                               const StateView& actual,
                                               const std::vector<std::string>& arrays,
                                               std::int64_t n) {
  std::vector<std::string> diffs;
  for (const std::string& array : arrays) {
    for (std::int64_t i = 1; i <= n; ++i) {
      const std::uint64_t want = expected.read(array, i);
      const std::uint64_t got = actual.read(array, i);
      if (want != got) {
        std::ostringstream os;
        os << array << '[' << i << "]: expected 0x" << std::hex << want << ", got 0x"
           << got;
        diffs.push_back(os.str());
      }
    }
  }
  return diffs;
}

std::vector<std::string> diff_observable_state(const Machine& expected,
                                               const Machine& actual,
                                               const std::vector<std::string>& arrays,
                                               std::int64_t n) {
  return diff_observable_state(MachineView(expected), MachineView(actual), arrays, n);
}

std::vector<std::string> check_write_discipline(const StateView& state,
                                                const std::vector<std::string>& arrays,
                                                std::int64_t n) {
  std::vector<std::string> problems;
  for (const std::string& array : arrays) {
    std::int64_t in_range = 0;
    for (std::int64_t i = 1; i <= n; ++i) {
      const int count = state.write_count(array, i);
      if (count > 1) {
        problems.push_back(array + "[" + std::to_string(i) + "] written " +
                           std::to_string(count) + " times");
      }
      if (count >= 1) in_range += count;
    }
    const std::int64_t total = state.total_writes(array);
    if (total != in_range) {
      problems.push_back(array + ": " + std::to_string(total - in_range) +
                         " writes outside 1.." + std::to_string(n));
    }
    if (in_range != n) {
      problems.push_back(array + ": " + std::to_string(in_range) + " of " +
                         std::to_string(n) + " iterations written");
    }
  }
  return problems;
}

std::vector<std::string> check_write_discipline(const Machine& machine,
                                                const std::vector<std::string>& arrays,
                                                std::int64_t n) {
  return check_write_discipline(MachineView(machine), arrays, n);
}

std::vector<std::string> compare_programs(const LoopProgram& expected,
                                          const LoopProgram& actual,
                                          const std::vector<std::string>& arrays) {
  CSR_REQUIRE(expected.n == actual.n, "programs have different trip counts");
  const Machine a = run_program(expected);
  const Machine b = run_program(actual);
  return diff_observable_state(a, b, arrays, expected.n);
}

}  // namespace csr
