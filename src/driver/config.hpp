#pragma once

/// \file config.hpp
/// The stable driver API: one configuration object, one entry point.
///
/// SweepConfig consolidates what used to be scattered across SweepGrid,
/// SweepOptions, RetryPolicy, a journal path string and per-exporter timing
/// flags into a single fluent builder, and `run_sweep(const SweepConfig&)`
/// is the one way to run a sweep:
///
///     const SweepRun run = run_sweep(SweepConfig()
///                                        .benchmarks({"iir", "biquad"})
///                                        .trip_counts({101})
///                                        .exec_engines({ExecEngine::kVm})
///                                        .threads(8)
///                                        .journal("sweep.journal"));
///     write_csv(std::cout, run.results);
///
/// The grid axes default exactly as SweepGrid's members do, so an empty
/// SweepConfig plus `benchmarks(...)` reproduces the paper's tables. (The
/// pre-config sweep.hpp overloads lived one release as [[deprecated]] shims
/// and are gone; this is the only entry point.)

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "driver/sweep.hpp"

namespace csr::driver {

/// Results plus accounting of one sweep run. `results[i]` corresponds to
/// `config.cells()[i]` — deterministic grid order, independent of thread
/// count, steal order and journal warmth.
struct SweepRun {
  std::vector<SweepResult> results;
  SweepStats stats;
};

/// Fluent, value-semantic sweep description. Every setter returns *this so
/// configurations compose in one expression; all fields have working
/// defaults. Axis setters fill the grid; `cells(...)` bypasses the grid with
/// an explicit cell list (for hand-picked cells, as in the explorer example).
class SweepConfig {
 public:
  SweepConfig() = default;

  // --- grid axes -----------------------------------------------------------
  SweepConfig& benchmarks(std::vector<std::string> names) {
    grid_.benchmarks = std::move(names);
    return *this;
  }
  SweepConfig& add_benchmark(std::string name) {
    grid_.benchmarks.push_back(std::move(name));
    return *this;
  }
  SweepConfig& trip_counts(std::vector<std::int64_t> counts) {
    grid_.trip_counts = std::move(counts);
    return *this;
  }
  /// Loop-nest shapes for nested (2-D) benchmarks; such benchmarks sweep
  /// shapes instead of trip_counts (each shape runs rows·cols iterations).
  SweepConfig& shapes(std::vector<LoopShape> shapes) {
    grid_.shapes = std::move(shapes);
    return *this;
  }
  SweepConfig& engines(std::vector<Engine> engines) {
    grid_.engines = std::move(engines);
    return *this;
  }
  SweepConfig& exec_engines(std::vector<ExecEngine> engines) {
    grid_.exec_engines = std::move(engines);
    return *this;
  }
  SweepConfig& transforms(std::vector<Transform> transforms) {
    grid_.transforms = std::move(transforms);
    return *this;
  }
  SweepConfig& factors(std::vector<int> factors) {
    grid_.factors = std::move(factors);
    return *this;
  }
  /// Explicit cell list; when set, the grid axes are ignored by cells().
  SweepConfig& cells(std::vector<SweepCell> cells) {
    explicit_cells_ = std::move(cells);
    has_explicit_cells_ = true;
    return *this;
  }

  // --- execution -----------------------------------------------------------
  SweepConfig& threads(unsigned count) {
    options_.threads = count;
    return *this;
  }
  SweepConfig& verify(bool enabled) {
    options_.verify = enabled;
    return *this;
  }
  SweepConfig& machine(ResourceModel model) {
    options_.machine = std::move(model);
    return *this;
  }
  SweepConfig& retry(RetryPolicy policy) {
    options_.retry = policy;
    return *this;
  }
  SweepConfig& journal(std::string path) {
    options_.journal_path = std::move(path);
    return *this;
  }
  SweepConfig& cell_budget(std::size_t budget) {
    options_.cell_budget = budget;
    return *this;
  }
  SweepConfig& steal_seed(std::uint64_t seed) {
    options_.steal_seed = seed;
    return *this;
  }
  /// Lanes per batched kernel invocation; 1 = single-cell execution. See
  /// SweepOptions::batch_width — results are byte-identical at any width.
  SweepConfig& batch_width(std::size_t width) {
    options_.batch_width = width;
    return *this;
  }

  // --- views ---------------------------------------------------------------
  /// The underlying value structs, mutable for migration from code that
  /// built a SweepGrid/SweepOptions — `cfg.grid() = my_grid;` just works.
  [[nodiscard]] SweepGrid& grid() { return grid_; }
  [[nodiscard]] const SweepGrid& grid() const { return grid_; }
  [[nodiscard]] SweepOptions& options() { return options_; }
  [[nodiscard]] const SweepOptions& options() const { return options_; }

  [[nodiscard]] bool has_explicit_cells() const { return has_explicit_cells_; }

  /// The cells run_sweep will evaluate, in result order: the explicit list
  /// when one was set, otherwise the grid product.
  [[nodiscard]] std::vector<SweepCell> cells() const {
    return has_explicit_cells_ ? explicit_cells_ : grid_.cells();
  }

 private:
  SweepGrid grid_;
  SweepOptions options_;
  std::vector<SweepCell> explicit_cells_;
  bool has_explicit_cells_ = false;
};

/// The one sweep entry point: evaluates config.cells() through the
/// work-stealing, journal-cached, retry-hardened executor and returns
/// results (in cell order) with the run's accounting.
[[nodiscard]] SweepRun run_sweep(const SweepConfig& config);

}  // namespace csr::driver
