#include "driver/export.hpp"

#include <sstream>

namespace csr::driver {

namespace {

/// JSON string escaping for the characters our names/errors can contain.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_csv(const std::vector<SweepResult>& results,
                   const ExportOptions& /*options*/) {
  std::ostringstream out;
  out << csv_header();
  for (const SweepResult& r : results) {
    if (!r.feasible || !r.evaluated) continue;
    out << r.cell.benchmark << ',' << to_string(r.cell.transform) << ','
        << r.cell.factor << ',' << r.cell.n << ',' << r.iteration_bound << ','
        << r.period.to_string() << ',' << r.depth << ',' << r.registers << ','
        << r.code_size << ',' << (r.verified ? "yes" : "NO") << ',';
    if (r.optimality_gap >= 0) {
      out << r.optimality_gap;
    } else {
      out << '-';  // engine-less transform: no gap is defined
    }
    out << ',';
    if (r.measured_size >= 0) {
      out << r.measured_size;
    } else {
      out << '-';  // no codegen ran for this cell
    }
    out << ',';
    if (r.cell.rows > 0) {
      out << 2 << ',' << r.cell.rows << ',' << r.cell.cols;
    } else {
      out << 1 << ",-,-";  // classic 1-D cell: no nest shape
    }
    out << '\n';
  }
  return out.str();
}

std::string to_json(const std::vector<SweepResult>& results,
                    const ExportOptions& options) {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    out << "  {\"benchmark\": \"" << json_escape(r.cell.benchmark)
        << "\", \"engine\": \"" << to_string(r.cell.engine)
        << "\", \"exec_engine\": \"" << to_string(r.cell.exec)
        << "\", \"transform\": \"" << to_string(r.cell.transform)
        << "\", \"factor\": " << r.cell.factor << ", \"n\": " << r.cell.n
        << ", \"feasible\": " << (r.feasible ? "true" : "false")
        << ", \"error\": \"" << json_escape(r.error)
        << "\", \"skipped\": " << (r.skipped ? "true" : "false")
        << ", \"skip_reason\": \"" << json_escape(r.skip_reason)
        << "\", \"iteration_bound\": \"" << json_escape(r.iteration_bound)
        << "\", \"period\": \"" << r.period.to_string()
        << "\", \"depth\": " << r.depth << ", \"registers\": " << r.registers
        << ", \"code_size\": " << r.code_size
        << ", \"predicted_size\": " << r.predicted_size
        << ", \"verified\": " << (r.verified ? "true" : "false")
        << ", \"discipline_ok\": " << (r.discipline_ok ? "true" : "false")
        << ", \"exec_statements\": " << r.exec_statements
        << ", \"engine_fallback\": " << (r.engine_fallback ? "true" : "false")
        << ", \"fallback_reason\": \"" << json_escape(r.fallback_reason)
        << "\", \"evaluated\": " << (r.evaluated ? "true" : "false")
        << ", \"optimality_gap\": " << r.optimality_gap
        << ", \"measured_size\": " << r.measured_size
        << ", \"loop_dims\": " << (r.cell.rows > 0 ? 2 : 1)
        << ", \"rows\": " << r.cell.rows << ", \"cols\": " << r.cell.cols;
    if (options.include_timing) {
      out << ", \"exec_seconds\": " << r.exec_seconds
          << ", \"from_cache\": " << (r.from_cache ? "true" : "false")
          << ", \"retries\": " << r.retries << ", \"worker\": " << r.worker
          << ", \"queue_depth\": " << r.queue_depth
          << ", \"worker_steals\": " << r.worker_steals
          << ", \"stolen\": " << (r.stolen ? "true" : "false");
    }
    out << '}' << (i + 1 < results.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return out.str();
}

}  // namespace csr::driver
