#pragma once

/// \file scheduler.hpp
/// The work-stealing task scheduler behind run_sweep(). The older
/// parallel_for (thread_pool.hpp) hands out indices from one shared atomic
/// counter — perfect when every task costs about the same, but sweep cells
/// no longer do: a VM cell is microseconds while a cold native-compile cell
/// is a full toolchain invocation, three orders of magnitude apart. The
/// scheduler here keeps workers busy under that skew:
///
///   * each worker owns a deque of task indices, seeded with a contiguous
///     block of the index space (preserving the cache-friendly front-to-back
///     walk of the grid);
///   * a worker executes from the *front* of its own deque; when empty it
///     picks victims in a seed-permuted round-robin order and steals the
///     *back half* of the first non-empty deque it finds (steal-half keeps
///     thieves from ping-ponging single tasks);
///   * total execution is bounded by a shared atomic **cell budget**: every
///     task execution first claims one unit, so `budget < count` runs an
///     arbitrary prefix of the workload and stops — the primitive the
///     journaled sweep uses for incremental and crash-resumed runs.
///
/// Determinism contract: like parallel_for, result slot i always receives
/// fn(i), so aggregations that walk results in index order are byte-stable
/// for any worker count, steal order or budget. Which *subset* executes is
/// only deterministic when the budget covers every task.
///
/// Per-task metrics (executing worker, local queue depth, steal counts) are
/// reported through TaskStats for observability; they are scheduling facts,
/// inherently non-deterministic, and callers must keep them out of
/// deterministic exports.

#include <cstddef>
#include <cstdint>
#include <functional>

namespace csr::driver {

/// Scheduling facts about one executed task — non-deterministic by nature.
struct TaskStats {
  unsigned worker = 0;           ///< worker that executed the task
  std::size_t queue_depth = 0;   ///< owner deque depth right after the pop
  std::uint64_t worker_steals = 0;  ///< steals the worker had done by then
  bool stolen = false;           ///< task changed deques before executing
};

/// Whole-run counters.
struct StealStats {
  std::uint64_t steal_ops = 0;     ///< successful steal-half operations
  std::uint64_t tasks_stolen = 0;  ///< tasks that moved deques
  std::uint64_t executed = 0;      ///< tasks executed (== count unless budgeted)
};

struct StealOptions {
  unsigned threads = 1;     ///< 0 = one worker per hardware thread
  std::size_t budget = 0;   ///< max tasks executed this run; 0 = no bound
  std::uint64_t seed = 0;   ///< permutes each worker's victim order
};

/// Runs fn(i, stats) for indices in [0, count) on a work-stealing pool,
/// executing at most `options.budget` tasks (0 = all). Rethrows the first
/// exception any task raised after all workers drain; remaining tasks are
/// abandoned, and the returned counters still reflect what actually ran.
StealStats work_steal_for(
    std::size_t count, const StealOptions& options,
    const std::function<void(std::size_t, const TaskStats&)>& fn);

}  // namespace csr::driver
