#pragma once

/// \file thread_pool.hpp
/// Work distribution for the sweep driver. A small fixed-size thread pool
/// plus an index-based parallel-for built on it: workers pull the next item
/// off a shared atomic counter, so load balances itself (the "work-stealing"
/// discipline reduced to a single shared deque of indices — cells of a sweep
/// are coarse enough that one fetch_add per item is noise).
///
/// Determinism contract: parallel_for/parallel_map never reorder *results* —
/// output slot i always holds fn(i) — so any aggregation that walks results
/// in index order is byte-identical regardless of thread count or
/// scheduling. The first exception thrown by any item is captured and
/// rethrown on the calling thread after all workers drain.

#include <cstddef>
#include <functional>
#include <vector>

namespace csr::driver {

/// Number of worker threads `threads = 0` resolves to (hardware
/// concurrency, at least 1).
[[nodiscard]] unsigned default_thread_count();

/// Runs fn(i) for every i in [0, count), on `threads` workers (0 = one per
/// hardware thread). With threads <= 1 or count <= 1 runs inline on the
/// calling thread. Rethrows the first exception any item raised; remaining
/// items are still drained (each worker stops picking up new work once a
/// failure is recorded).
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

/// Maps `fn` over `items` in parallel; result i is fn(items[i]) — ordered,
/// deterministic output independent of thread count.
template <typename In, typename Fn>
[[nodiscard]] auto parallel_map(const std::vector<In>& items, unsigned threads, Fn fn)
    -> std::vector<decltype(fn(items[std::size_t{0}]))> {
  std::vector<decltype(fn(items[std::size_t{0}]))> out(items.size());
  parallel_for(items.size(), threads,
               [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

}  // namespace csr::driver
