#include "driver/sweep.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "benchmarks/benchmarks.hpp"
#include "codegen/batch_emitter.hpp"
#include "codegen/nested.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "codegen/unfolded_retimed.hpp"
#include "codesize/md_model.hpp"
#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/io.hpp"
#include "dfg/iteration_bound.hpp"
#include "driver/cell_exec.hpp"
#include "driver/scheduler.hpp"
#include "loopir/pipeline.hpp"
#include "mdfg/builders.hpp"
#include "mdfg/io.hpp"
#include "native/batch.hpp"
#include "native/engine.hpp"
#include "observe/observe.hpp"
#include "retiming/exact.hpp"
#include "retiming/md_retiming.hpp"
#include "retiming/opt.hpp"
#include "schedule/modulo.hpp"
#include "schedule/rotation.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/journal.hpp"
#include "unfolding/unfold.hpp"
#include "vm/batch.hpp"
#include "vm/equivalence.hpp"

namespace csr::driver {

bool transform_uses_factor(Transform transform) {
  switch (transform) {
    case Transform::kOriginal:
    case Transform::kRetimed:
    case Transform::kRetimedCsr:
      return false;
    default:
      return true;
  }
}

bool transform_supports_nested(Transform transform) {
  switch (transform) {
    case Transform::kOriginal:
    case Transform::kRetimed:
    case Transform::kRetimedCsr:
      return true;
    default:
      return false;
  }
}

bool is_nested_benchmark(const std::string& name) {
  return mdfg::find_md_benchmark(name) != nullptr;
}

std::vector<SweepCell> SweepGrid::cells() const {
  std::vector<SweepCell> out;
  for (const std::string& benchmark : benchmarks) {
    if (is_nested_benchmark(benchmark)) {
      // Nested benchmarks sweep the shapes axis (n = rows·cols) over the
      // nested-supported transforms; the factor axis does not apply.
      for (const LoopShape& shape : shapes) {
        for (const Engine engine : engines) {
          for (const ExecEngine exec : exec_engines) {
            for (const Transform t : transforms) {
              if (!transform_supports_nested(t)) continue;
              SweepCell cell{benchmark, engine, exec, t, 1, shape.rows * shape.cols};
              cell.rows = shape.rows;
              cell.cols = shape.cols;
              out.push_back(std::move(cell));
            }
          }
        }
      }
      continue;
    }
    for (const std::int64_t n : trip_counts) {
      for (const Engine engine : engines) {
        for (const ExecEngine exec : exec_engines) {
          for (const Transform t : transforms) {
            if (!transform_uses_factor(t)) {
              out.push_back(SweepCell{benchmark, engine, exec, t, 1, n});
            }
          }
          for (const int f : factors) {
            for (const Transform t : transforms) {
              if (transform_uses_factor(t)) {
                out.push_back(SweepCell{benchmark, engine, exec, t, f, n});
              }
            }
          }
        }
      }
    }
  }
  return out;
}

namespace {

DataFlowGraph make_benchmark(const std::string& name) {
  for (const auto& info : benchmarks::all_graphs()) {
    if (info.name == name) return info.factory();
  }
  throw InvalidArgument("unknown benchmark '" + name + "'");
}

struct EngineOutcome {
  bool ok = false;
  Retiming retiming{0};
  std::int64_t period = 0;  ///< cycle period of the retimed graph
  /// Certified minimum period, filled only when the engine itself proved it
  /// (kOptExact) — saves evaluate_cell a second exact solve for the gap.
  std::optional<std::int64_t> exact_period;
};

EngineOutcome run_engine(Engine engine, const DataFlowGraph& g,
                         const ResourceModel& machine) {
  EngineOutcome out;
  switch (engine) {
    case Engine::kOptRetiming: {
      const OptimalRetiming opt = minimum_period_retiming(g);
      out = {true, opt.retiming.normalized(), opt.period, std::nullopt};
      break;
    }
    case Engine::kRotation: {
      const RotationResult rot = rotation_schedule(g, machine);
      out = {true, rot.retiming.normalized(), rot.period, std::nullopt};
      break;
    }
    case Engine::kModulo: {
      const auto ms = modulo_schedule(g, machine);
      if (!ms) break;
      out = {true, retiming_from_modulo(g, *ms).normalized(), ms->initiation_interval,
             std::nullopt};
      break;
    }
    case Engine::kOptExact: {
      const ExactRetiming exact = exact_optimal_retiming(g);
      out = {true, exact.retiming.normalized(), exact.period, exact.period};
      break;
    }
  }
  return out;
}

/// Achieved cycle period minus the certified exact minimum of the graph the
/// engine actually retimed (integer cycle periods on both sides; ≥ 0 by
/// optimality of the exact engine). kOptExact carries its own certificate;
/// the others pay one extra exact solve — a handful of Bellman–Ford runs.
std::int64_t optimality_gap_of(const EngineOutcome& eng, const DataFlowGraph& g) {
  const std::int64_t exact =
      eng.exact_period ? *eng.exact_period : exact_minimum_period(g);
  return eng.period - exact;
}

void infeasible(SweepResult& res, const std::string& why) {
  res.feasible = false;
  res.error = why;
}

/// Deterministic per-(cell, attempt) jitter in [0.5, 1.0): reproducible runs
/// beat true randomness here, and hashing decorrelates concurrent retries.
double backoff_jitter(const SweepCell& cell, int attempt) {
  const std::uint64_t h = ContentHasher()
                              .field(cell.benchmark)
                              .field(to_string(cell.transform))
                              .field(cell.factor)
                              .field(cell.n)
                              .field(attempt)
                              .value();
  return 0.5 + 0.5 * static_cast<double>(h >> 11) / 9007199254740992.0;  // 2^53
}

void backoff_sleep(const SweepCell& cell, int attempt, const RetryPolicy& policy) {
  double seconds = policy.backoff_base * std::pow(2.0, attempt - 1);
  seconds = std::min(seconds, policy.backoff_max);
  seconds *= backoff_jitter(cell, attempt);
  if (seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

// --- journal payload codec --------------------------------------------------
//
// Payload: kPayloadVersion plus the deterministic result fields, joined by
// 0x1F unit separators; string fields escape backslash and the separator so
// arbitrary diagnostics round-trip. The outer journal layer handles line
// framing and checksums.

// v2: appended optimality_gap. v3: appended measured_size (and cells now
// execute the peephole-optimized program, so older payloads describe a
// different run). Old journals fail the version check and the affected cells
// simply re-execute — never a silent misparse.
constexpr std::string_view kPayloadVersion = "sweep-v3";

std::string field_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\x1f') {
      out += "\\u";
    } else {
      out += c;
    }
  }
  return out;
}

bool field_unescape(const std::string& s, std::string& out) {
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i == s.size()) return false;
    if (s[i] == '\\') {
      out += '\\';
    } else if (s[i] == 'u') {
      out += '\x1f';
    } else {
      return false;
    }
  }
  return true;
}

std::vector<std::string> split_fields(const std::string& payload) {
  std::vector<std::string> fields;
  std::string current;
  for (const char c : payload) {
    if (c == '\x1f') {
      fields.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(current);
  return fields;
}

bool parse_i64(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

bool parse_bool(const std::string& s, bool& out) {
  if (s == "1") {
    out = true;
  } else if (s == "0") {
    out = false;
  } else {
    return false;
  }
  return true;
}

/// The sweep layer's slice of the metric catalogue (docs/OBSERVABILITY.md),
/// registered once and cached — the hot path only touches atomics.
struct SweepMetrics {
  observe::Counter& cells_total;
  observe::Counter& cells_executed;
  observe::Counter& cache_hits;
  observe::Counter& budget_expired;
  observe::Counter& fallbacks;
  observe::Counter& retries;
  observe::Histogram& cell_seconds;

  static SweepMetrics& get() {
    static SweepMetrics metrics = [] {
      auto& reg = observe::MetricsRegistry::global();
      return SweepMetrics{
          reg.counter("csr_sweep_cells_total", "Cells requested across sweep runs"),
          reg.counter("csr_sweep_cells_executed_total", "Cells evaluated (not cached)"),
          reg.counter("csr_sweep_cache_hits_total", "Cells replayed from a journal"),
          reg.counter("csr_sweep_budget_expired_total",
                      "Cells left unevaluated by a cell budget"),
          reg.counter("csr_sweep_fallbacks_total",
                      "Native cells degraded to VM verification"),
          reg.counter("csr_sweep_retries_total", "Native attempts beyond the first"),
          reg.histogram("csr_sweep_cell_seconds", observe::latency_seconds_bounds(),
                        "Wall time of one cell evaluation"),
      };
    }();
    return metrics;
  }
};

}  // namespace

std::string_view journal_payload_version() { return kPayloadVersion; }

std::string journal_key(const SweepCell& cell, const SweepOptions& options) {
  // Key the graph by content, not name: if a benchmark's definition ever
  // changes, its journal entries must stop matching. Benchmark definitions
  // are immutable within a process, so the (expensive) build + serialize
  // runs once per name — journal_key is on the serving tier's per-request
  // hot path, where rebuilding the graph per call dominated the cache hit.
  std::string dfg_text;
  {
    static std::mutex mutex;
    static std::unordered_map<std::string, std::string> texts;
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = texts.find(cell.benchmark);
    if (it != texts.end()) {
      dfg_text = it->second;
    } else {
      if (const mdfg::MdBenchmarkInfo* md = mdfg::find_md_benchmark(cell.benchmark)) {
        dfg_text = to_text(md->factory());
      } else {
        try {
          dfg_text = to_text(make_benchmark(cell.benchmark));
        } catch (const std::exception&) {
          dfg_text = "unknown-benchmark";
        }
      }
      texts.emplace(cell.benchmark, dfg_text);
    }
  }
  // One shared helper (support/hash.hpp) renders the key for every consumer
  // — the on-disk journal and the serve layer's in-memory result cache — so
  // the two can never drift. The field framing below is pinned by
  // tests/serve_service_test.cpp and by every existing journal file.
  std::vector<std::string> fields{std::string(kPayloadVersion),
                                  cell.benchmark,
                                  dfg_text,
                                  std::string(to_string(cell.engine)),
                                  std::string(to_string(cell.exec)),
                                  std::string(to_string(cell.transform)),
                                  std::to_string(cell.factor),
                                  std::to_string(cell.n),
                                  options.verify ? "1" : "0",
                                  options.machine.description()};
  // Nested (2-D) cells append their shape; classic 1-D cells keep the exact
  // ten-field framing above, so every pre-nested journal key — and the serve
  // tier's pinned expectations — stay byte-identical.
  if (cell.rows > 0) {
    fields.push_back(std::to_string(cell.rows));
    fields.push_back(std::to_string(cell.cols));
  }
  return content_key('c', fields);
}

std::string to_journal_payload(const SweepResult& r) {
  const char sep = '\x1f';
  std::string out(kPayloadVersion);
  const auto add = [&](const std::string& field) {
    out += sep;
    out += field;
  };
  add(r.feasible ? "1" : "0");
  add(field_escape(r.error));
  add(r.skipped ? "1" : "0");
  add(field_escape(r.skip_reason));
  add(field_escape(r.iteration_bound));
  add(std::to_string(r.period.num()));
  add(std::to_string(r.period.den()));
  add(std::to_string(r.depth));
  add(std::to_string(r.registers));
  add(std::to_string(r.code_size));
  add(std::to_string(r.predicted_size));
  add(r.verified ? "1" : "0");
  add(r.discipline_ok ? "1" : "0");
  add(std::to_string(r.exec_statements));
  add(r.engine_fallback ? "1" : "0");
  add(field_escape(r.fallback_reason));
  add(std::to_string(r.optimality_gap));
  add(std::to_string(r.measured_size));
  return out;
}

bool from_journal_payload(const std::string& payload, const SweepCell& cell,
                          SweepResult& result) {
  const std::vector<std::string> f = split_fields(payload);
  if (f.size() != 19 || f[0] != kPayloadVersion) return false;
  SweepResult r;
  r.cell = cell;
  std::int64_t period_num = 0;
  std::int64_t period_den = 1;
  std::int64_t depth = 0;
  if (!parse_bool(f[1], r.feasible) || !field_unescape(f[2], r.error) ||
      !parse_bool(f[3], r.skipped) || !field_unescape(f[4], r.skip_reason) ||
      !field_unescape(f[5], r.iteration_bound) || !parse_i64(f[6], period_num) ||
      !parse_i64(f[7], period_den) || !parse_i64(f[8], depth) ||
      !parse_i64(f[9], r.registers) || !parse_i64(f[10], r.code_size) ||
      !parse_i64(f[11], r.predicted_size) || !parse_bool(f[12], r.verified) ||
      !parse_bool(f[13], r.discipline_ok) || !parse_i64(f[14], r.exec_statements) ||
      !parse_bool(f[15], r.engine_fallback) ||
      !field_unescape(f[16], r.fallback_reason) ||
      !parse_i64(f[17], r.optimality_gap) ||
      !parse_i64(f[18], r.measured_size)) {
    return false;
  }
  if (period_den <= 0 || depth < INT32_MIN || depth > INT32_MAX) return false;
  try {
    r.period = Rational(period_num, period_den);
  } catch (const std::exception&) {
    return false;
  }
  r.depth = static_cast<int>(depth);
  result = std::move(r);
  return true;
}

namespace {

MdDataFlowGraph make_md_benchmark(const std::string& name) {
  const mdfg::MdBenchmarkInfo* info = mdfg::find_md_benchmark(name);
  if (info == nullptr) throw InvalidArgument("unknown nested benchmark '" + name + "'");
  return info->factory();
}

/// The 2-D prepare path: vector-delay retiming through the projection
/// engine, then the row-major lowering onto the existing LoopIR. The
/// lowered program *is* a 1-D program over the linearized graph, so
/// prep.graph is that linearized DFG and verification, batching and
/// coalescing run the unchanged 1-D machinery (verify_cell's expected
/// state — original_program(prep.graph, n) — equals the nested original
/// nest by the linearization theorem, codegen/nested.hpp).
PreparedCell prepare_nested_cell(const SweepCell& cell, const SweepOptions& options) {
  PreparedCell prep;
  SweepResult& res = prep.res;
  res.cell = cell;
  try {
    if (cell.rows < 1 || cell.cols < 1) {
      return infeasible(res, "nested cell needs rows >= 1 and cols >= 1"), prep;
    }
    if (cell.n != cell.rows * cell.cols) {
      return infeasible(res, "nested cell needs n == rows*cols"), prep;
    }
    const MdDataFlowGraph g = make_md_benchmark(cell.benchmark);
    const DataFlowGraph lin = linearized(g, cell.cols);
    const auto bound = iteration_bound(lin);
    res.iteration_bound = bound ? bound->to_string() : "-";
    const std::int64_t n = cell.n;

    LoopProgram program;
    switch (cell.transform) {
      case Transform::kOriginal:
        program = nested_original_program(g, cell.rows, cell.cols);
        res.period = Rational(cycle_period(lin));
        res.predicted_size = md_original_size(g);
        break;

      case Transform::kRetimed:
      case Transform::kRetimedCsr: {
        MdOptimalRetiming md;
        switch (cell.engine) {
          case Engine::kOptRetiming:
            md = md_minimum_period_retiming(g);
            res.optimality_gap = md.period - md_exact_minimum_period(g);
            break;
          case Engine::kOptExact:
            md = md_exact_optimal_retiming(g);
            res.optimality_gap = 0;  // the exact engine certifies its period
            break;
          case Engine::kRotation:
          case Engine::kModulo:
            return infeasible(res, "engine not supported for nested (2-D) cells"),
                   prep;
        }
        res.period = Rational(md.period);
        const Retiming col = md.retiming.col_retiming();
        res.depth = col.max_value();
        res.registers = md_registers_required(md.retiming);
        if (cell.cols < md.min_cols) {
          return infeasible(res,
                            "cols < retiming min_cols (" +
                                std::to_string(md.min_cols) + ")"),
                 prep;
        }
        if (n <= res.depth) return infeasible(res, "trip count <= pipeline depth"), prep;
        if (cell.transform == Transform::kRetimed) {
          program = nested_retimed_program(g, md.retiming, cell.rows, cell.cols);
          res.predicted_size = predicted_md_retimed_size(g, md.retiming);
        } else {
          program = nested_retimed_csr_program(g, md.retiming, cell.rows, cell.cols);
          res.predicted_size = predicted_md_retimed_csr_size(g, md.retiming);
        }
        break;
      }

      default:
        return infeasible(res, "transform not supported for nested (2-D) cells"),
               prep;
    }

    res.code_size = program.code_size();
    PipelineResult optimized = optimize_pipeline(program);
    res.measured_size = optimized.program.code_size();
    prep.program = std::move(optimized.program);
    prep.graph = lin;
    prep.arrays = array_names(lin);
    prep.runnable = true;
  } catch (const std::exception& e) {
    res.feasible = false;
    res.error = e.what();
  }
  (void)options;
  return prep;
}

}  // namespace

// The two cell phases below are public (driver/cell_exec.hpp) so callers
// other than the sweep scheduler — notably the serving tier's cross-request
// coalescer — can group prepared cells by batch shape and verify whole
// groups with one kernel invocation.

PreparedCell prepare_cell(const SweepCell& cell, const SweepOptions& options) {
  if (cell.rows > 0 || cell.cols > 0 || is_nested_benchmark(cell.benchmark)) {
    return prepare_nested_cell(cell, options);
  }
  PreparedCell prep;
  SweepResult& res = prep.res;
  res.cell = cell;
  try {
    const DataFlowGraph g = make_benchmark(cell.benchmark);
    const auto bound = iteration_bound(g);
    res.iteration_bound = bound ? bound->to_string() : "-";
    const std::int64_t n = cell.n;
    const int f = cell.factor;

    LoopProgram program;
    switch (cell.transform) {
      case Transform::kOriginal:
        program = original_program(g, n);
        res.period = Rational(cycle_period(g));
        res.predicted_size = original_size(g);
        break;

      case Transform::kRetimed:
      case Transform::kRetimedCsr: {
        const EngineOutcome eng = run_engine(cell.engine, g, options.machine);
        if (!eng.ok) return infeasible(res, "engine found no schedule"), prep;
        res.period = Rational(eng.period);
        res.optimality_gap = optimality_gap_of(eng, g);
        res.depth = eng.retiming.max_value();
        res.registers = registers_required(eng.retiming);
        if (n <= res.depth) return infeasible(res, "trip count <= pipeline depth"), prep;
        if (cell.transform == Transform::kRetimed) {
          program = retimed_program(g, eng.retiming, n);
          res.predicted_size = predicted_retimed_size(g, eng.retiming);
        } else {
          program = retimed_csr_program(g, eng.retiming, n);
          res.predicted_size = predicted_retimed_csr_size(g, eng.retiming);
        }
        break;
      }

      case Transform::kUnfolded:
      case Transform::kUnfoldedCsr:
        res.period = Rational(cycle_period(unfold(g, f)), f);
        if (cell.transform == Transform::kUnfolded) {
          program = unfolded_program(g, f, n);
          res.predicted_size = predicted_unfolded_size(g, f, n);
        } else {
          program = unfolded_csr_program(g, f, n);
          res.registers = 1;  // the single remainder register
          res.predicted_size = predicted_unfolded_csr_size(g, f);
        }
        break;

      case Transform::kRetimedUnfolded:
      case Transform::kRetimedUnfoldedCsr: {
        const EngineOutcome eng = run_engine(cell.engine, g, options.machine);
        if (!eng.ok) return infeasible(res, "engine found no schedule"), prep;
        res.period = Rational(cycle_period(unfold(apply_retiming(g, eng.retiming), f)), f);
        res.optimality_gap = optimality_gap_of(eng, g);
        res.depth = eng.retiming.max_value();
        res.registers = registers_required(eng.retiming);
        if (n <= res.depth) return infeasible(res, "trip count <= pipeline depth"), prep;
        if (cell.transform == Transform::kRetimedUnfolded) {
          program = retimed_unfolded_program(g, eng.retiming, f, n);
          res.predicted_size = predicted_retimed_unfolded_size(g, eng.retiming, f, n);
        } else {
          program = retimed_unfolded_csr_program(g, eng.retiming, f, n);
          res.predicted_size = predicted_retimed_unfolded_csr_size(g, eng.retiming, f);
        }
        break;
      }

      case Transform::kUnfoldedRetimed:
      case Transform::kUnfoldedRetimedCsr: {
        const Unfolding u(g, f);
        const EngineOutcome eng = run_engine(cell.engine, u.graph(), options.machine);
        if (!eng.ok) return infeasible(res, "engine found no schedule"), prep;
        res.period = Rational(eng.period, f);
        res.optimality_gap = optimality_gap_of(eng, u.graph());
        res.depth = eng.retiming.max_value();
        res.registers = registers_required_unfolded(u, eng.retiming);
        if (n / f <= res.depth) {
          return infeasible(res, "need more than M'_r full unfolded trips"), prep;
        }
        if (cell.transform == Transform::kUnfoldedRetimed) {
          program = unfolded_retimed_program(u, eng.retiming, n);
          res.predicted_size = predicted_unfolded_retimed_size(u, eng.retiming, n);
        } else {
          program = unfolded_retimed_csr_program(u, eng.retiming, n);
          res.predicted_size = predicted_unfolded_retimed_csr_size(u, eng.retiming);
        }
        break;
      }
    }

    res.code_size = program.code_size();

    // Run the fixpoint peephole pipeline and account the *measured* size
    // next to the closed-form prediction. Verification executes the
    // optimized program against the original loop's expected state, so every
    // verified cell doubles as a live optimizer differential — across the
    // VM, the map interpreter and the native C emitter alike.
    PipelineResult optimized = optimize_pipeline(program);
    res.measured_size = optimized.program.code_size();
    prep.program = std::move(optimized.program);
    prep.graph = g;
    prep.arrays = array_names(g);
    prep.runnable = true;
  } catch (const std::exception& e) {
    res.feasible = false;
    res.error = e.what();
  }
  return prep;
}

void verify_cell(PreparedCell& prep, const SweepOptions& options) {
  if (!prep.runnable || !options.verify) return;
  SweepResult& res = prep.res;
  const SweepCell& cell = res.cell;
  const LoopProgram& program = prep.program;
  try {
    const std::vector<std::string>& arrays = prep.arrays;
    const std::int64_t n = cell.n;
    // The expected state always comes from the fast VM on the original
    // loop, so non-VM cells are genuine cross-engine differentials.
    const Machine expected = run_program(original_program(prep.graph, n));

    const auto verify_on_vm = [&](ExecMode mode) {
      const auto start = std::chrono::steady_clock::now();
      const Machine actual = run_program(program, mode);
      res.exec_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      res.exec_statements = actual.executed_statements();
      res.verified = diff_observable_state(expected, actual, arrays, n).empty();
      res.discipline_ok = check_write_discipline(actual, arrays, n).empty();
    };

    switch (cell.exec) {
      case ExecEngine::kVm:
        verify_on_vm(ExecMode::kFast);
        break;
      case ExecEngine::kMap:
        verify_on_vm(ExecMode::kReference);
        break;
      case ExecEngine::kNative: {
        // Retry / timeout / degradation policy: every compile runs under
        // a subprocess deadline; transient failures back off and retry;
        // a cell that exhausts its attempts is verified on the VM with
        // the native failure preserved as its diagnostic. A broken or
        // hung toolchain can cost a cell time, never abort the sweep.
        native::CompileOptions copts;
        copts.deadline_seconds = options.retry.compile_deadline;
        const int max_attempts = std::max(1, options.retry.max_attempts);
        native::NativeOutcome out;
        int attempt = 1;
        for (;; ++attempt) {
          out = native::run_native(program, copts);
          if (out.ok() || attempt >= max_attempts) break;
          backoff_sleep(cell, attempt, options.retry);
        }
        res.retries = attempt - 1;
        if (out.ok()) {
          res.exec_seconds = out.run_seconds;
          res.exec_statements = out.result.executed_statements();
          res.verified =
              diff_observable_state(MachineView(expected), out.result, arrays, n)
                  .empty();
          res.discipline_ok = check_write_discipline(out.result, arrays, n).empty();
        } else if (options.retry.fallback_to_vm) {
          res.engine_fallback = true;
          res.fallback_reason = out.diagnostic;
          verify_on_vm(ExecMode::kFast);
        } else {
          // The pre-fallback contract: a missing or broken host compiler
          // is a property of the machine, not of the cell — report the
          // cell skipped, keep it feasible.
          res.skipped = true;
          res.skip_reason = out.diagnostic;
        }
        break;
      }
    }
  } catch (const std::exception& e) {
    res.feasible = false;
    res.error = e.what();
  }
}

bool prepared_batchable(const PreparedCell& prep, const SweepOptions& options) {
  return prep.runnable && options.verify &&
         prep.res.cell.exec != ExecEngine::kMap;
}

std::string prepared_batch_key(const PreparedCell& prep) {
  std::string key(to_string(prep.res.cell.exec));
  key += '|';
  key += batch_shape_key(prep.program);
  return key;
}

bool execute_prepared_batch(const std::vector<PreparedCell*>& lanes_p,
                            const SweepOptions& options) {
  if (lanes_p.empty()) return true;
  observe::Span batch_span("driver", "batch_execute");
  const SweepCell& first = lanes_p.front()->res.cell;
  batch_span.arg("exec", to_string(first.exec))
      .arg("lanes", static_cast<std::uint64_t>(lanes_p.size()));
  std::vector<LoopProgram> lanes;
  lanes.reserve(lanes_p.size());
  for (const PreparedCell* prep : lanes_p) lanes.push_back(prep->program);

  // Fills exactly the fields verify_cell's engine switch fills; the
  // expected state still comes from the fast VM on the original loop.
  const auto verify_lane = [&](PreparedCell& prep, const StateView& actual,
                               std::int64_t executed, double seconds) {
    SweepResult& res = prep.res;
    const std::int64_t n = res.cell.n;
    const Machine expected = run_program(original_program(prep.graph, n));
    res.exec_seconds = seconds;
    res.exec_statements = executed;
    res.verified =
        diff_observable_state(MachineView(expected), actual, prep.arrays, n)
            .empty();
    res.discipline_ok = check_write_discipline(actual, prep.arrays, n).empty();
  };

  try {
    if (first.exec == ExecEngine::kVm) {
      const auto start = std::chrono::steady_clock::now();
      const std::vector<Machine> machines = run_program_batch(lanes);
      const double share =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count() /
          static_cast<double>(lanes.size());
      for (std::size_t k = 0; k < lanes_p.size(); ++k) {
        verify_lane(*lanes_p[k], MachineView(machines[k]),
                    machines[k].executed_statements(), share);
      }
      return true;
    }
    native::CompileOptions copts;
    copts.deadline_seconds = options.retry.compile_deadline;
    const int max_attempts = std::max(1, options.retry.max_attempts);
    native::BatchOutcome out;
    int attempt = 1;
    for (;; ++attempt) {
      out = native::run_native_batch(lanes, copts);
      if (out.ok() || attempt >= max_attempts) break;
      backoff_sleep(first, attempt, options.retry);
    }
    if (!out.ok()) return false;
    const double share = out.run_seconds / static_cast<double>(lanes.size());
    for (std::size_t k = 0; k < lanes_p.size(); ++k) {
      verify_lane(*lanes_p[k], out.lanes[k], out.lanes[k].executed_statements(),
                  share);
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

SweepResult evaluate_cell(const SweepCell& cell, const SweepOptions& options) {
  SweepMetrics& metrics = SweepMetrics::get();
  observe::Span span("driver", "evaluate_cell");
  span.arg("benchmark", cell.benchmark)
      .arg("engine", to_string(cell.engine))
      .arg("exec", to_string(cell.exec))
      .arg("transform", to_string(cell.transform))
      .arg("factor", cell.factor)
      .arg("n", cell.n);
  observe::ScopedTimer cell_timer(metrics.cell_seconds);
  PreparedCell prep = prepare_cell(cell, options);
  verify_cell(prep, options);
  return std::move(prep.res);
}

namespace {

/// Batched execution of the pending (non-cached) cells, the
/// SweepOptions::batch_width > 1 path of run_cells:
///
///   * **Phase A (prepare)** — generate + peephole-optimize every pending
///     cell on the work-stealing pool; the cell budget applies here, so a
///     prepared cell is an executed cell. Cells that cannot join a batch
///     (map engine, verify off, infeasible/errored) finish entirely in this
///     phase, exactly as evaluate_cell would have run them.
///   * **Phase B (group)** — deterministic grouping of prepared cells by
///     (execution engine, batch shape key); each group splits into batches
///     of at most batch_width lanes in grid order.
///   * **Phase C (execute)** — one batched kernel invocation per batch
///     (native SoA kernel / batched superinstruction VM) with per-lane
///     readback and verification. A batch-level failure degrades to
///     per-lane single-cell verification — with its full retry and
///     VM-fallback semantics — so batching can never lose a cell.
///
/// Result slots and journal payloads receive exactly the deterministic
/// fields a single-cell run would have produced (the `batch` ctest label
/// holds this byte-for-byte).
void run_pending_batched(const std::vector<SweepCell>& cells,
                         const SweepOptions& options,
                         const std::vector<std::size_t>& pending,
                         const std::vector<std::string>& keys,
                         ResultJournal* journal, const StealOptions& steal,
                         StealStats& run, std::vector<SweepResult>& results) {
  SweepMetrics& metrics = SweepMetrics::get();
  auto& reg = observe::MetricsRegistry::global();
  static observe::Counter& group_counter =
      reg.counter("csr_batch_groups_total",
                  "Shape-compatible batch groups formed by the sweep");
  static observe::Counter& batched_cells =
      reg.counter("csr_batch_cells_total",
                  "Cells verified through a batched kernel invocation");
  static observe::Counter& single_fallbacks =
      reg.counter("csr_batch_single_fallback_total",
                  "Batch-grouped cells degraded to single-cell verification");

  observe::Span span("driver", "batch_sweep");
  span.arg("width", static_cast<std::uint64_t>(options.batch_width))
      .arg("pending", static_cast<std::uint64_t>(pending.size()));

  std::vector<PreparedCell> prepared(pending.size());
  std::vector<char> batchable(pending.size(), 0);
  {
    observe::Span prep_span("driver", "batch_prepare");
    run = work_steal_for(
        pending.size(), steal, [&](std::size_t j, const TaskStats& task) {
          const std::size_t i = pending[j];
          const SweepCell& cell = cells[i];
          observe::Span cell_span("driver", "evaluate_cell");
          cell_span.arg("benchmark", cell.benchmark)
              .arg("engine", to_string(cell.engine))
              .arg("exec", to_string(cell.exec))
              .arg("transform", to_string(cell.transform))
              .arg("factor", cell.factor)
              .arg("n", cell.n);
          observe::ScopedTimer cell_timer(metrics.cell_seconds);
          PreparedCell prep = prepare_cell(cell, options);
          prep.res.worker = task.worker;
          prep.res.queue_depth = task.queue_depth;
          prep.res.worker_steals = task.worker_steals;
          prep.res.stolen = task.stolen;
          if (prepared_batchable(prep, options)) {
            batchable[j] = 1;
          } else {
            verify_cell(prep, options);  // the map engine has no batch path
            if (journal != nullptr) {
              journal->append(keys[i], to_journal_payload(prep.res));
            }
            results[i] = prep.res;
          }
          prepared[j] = std::move(prep);
        });
  }

  // Grid order in, grid order out: groups form in first-occurrence order
  // and each keeps its lanes in pending order, so batch composition is
  // deterministic for any thread count.
  std::map<std::string, std::size_t> group_ids;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t j = 0; j < pending.size(); ++j) {
    if (batchable[j] == 0) continue;
    const std::string key = prepared_batch_key(prepared[j]);
    const auto [it, inserted] = group_ids.emplace(key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(j);
  }
  std::vector<std::vector<std::size_t>> batches;
  for (const auto& group : groups) {
    for (std::size_t at = 0; at < group.size(); at += options.batch_width) {
      const auto begin = group.begin() + static_cast<std::ptrdiff_t>(at);
      const auto end =
          group.begin() + static_cast<std::ptrdiff_t>(
                              std::min(group.size(), at + options.batch_width));
      batches.emplace_back(begin, end);
    }
  }
  group_counter.increment(groups.size());
  span.arg("groups", static_cast<std::uint64_t>(groups.size()))
      .arg("batches", static_cast<std::uint64_t>(batches.size()));

  const auto finish_lane = [&](std::size_t j) {
    const std::size_t i = pending[j];
    if (journal != nullptr) {
      journal->append(keys[i], to_journal_payload(prepared[j].res));
    }
    results[i] = std::move(prepared[j].res);
  };

  const auto run_batch = [&](const std::vector<std::size_t>& lanes_j) {
    std::vector<PreparedCell*> lanes;
    lanes.reserve(lanes_j.size());
    for (const std::size_t j : lanes_j) lanes.push_back(&prepared[j]);
    const bool ok = execute_prepared_batch(lanes, options);
    if (ok) {
      batched_cells.increment(lanes_j.size());
    } else {
      // Per-lane degradation: single-cell verification owns retry, VM
      // fallback and skip semantics, so the lanes end up exactly as an
      // unbatched run would have left them.
      single_fallbacks.increment(lanes_j.size());
      for (const std::size_t j : lanes_j) verify_cell(prepared[j], options);
    }
    for (const std::size_t j : lanes_j) finish_lane(j);
  };

  StealOptions batch_steal = steal;
  batch_steal.budget = 0;  // the cell budget was consumed in phase A
  work_steal_for(batches.size(), batch_steal,
                 [&](std::size_t b, const TaskStats&) { run_batch(batches[b]); });
}

}  // namespace

namespace detail {

std::vector<SweepResult> run_cells(const std::vector<SweepCell>& cells,
                                   const SweepOptions& options, SweepStats* stats) {
  SweepMetrics& metrics = SweepMetrics::get();
  observe::Span sweep_span("driver", "run_sweep");
  sweep_span.arg("cells", static_cast<std::uint64_t>(cells.size()))
      .arg("threads", options.threads)
      .arg("journaled", !options.journal_path.empty());

  SweepStats local_stats;
  SweepStats& s = stats != nullptr ? *stats : local_stats;
  s = SweepStats{};
  s.total_cells = cells.size();

  std::vector<SweepResult> results(cells.size());

  ResultJournal journal;
  const bool journaled =
      !options.journal_path.empty() && journal.open(options.journal_path);
  if (journaled) s.journal_dropped = journal.dropped_records();

  // Replay phase: cached cells are filled in directly; everything else
  // becomes a pending task for the scheduler.
  std::vector<std::string> keys(cells.size());
  std::vector<std::size_t> pending;
  pending.reserve(cells.size());
  {
    observe::Span replay_span("driver", "journal_replay");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (journaled) {
        keys[i] = journal_key(cells[i], options);
        if (const auto payload = journal.lookup(keys[i]);
            payload && from_journal_payload(*payload, cells[i], results[i])) {
          results[i].from_cache = true;
          ++s.cache_hits;
          continue;
        }
      }
      // Pre-mark as unevaluated so budget-expired cells still carry their
      // cell identity into exports; execution overwrites the whole slot.
      results[i].cell = cells[i];
      results[i].evaluated = false;
      pending.push_back(i);
    }
    replay_span.arg("cache_hits", static_cast<std::uint64_t>(s.cache_hits))
        .arg("pending", static_cast<std::uint64_t>(pending.size()));
  }

  StealOptions steal;
  steal.threads = options.threads;
  steal.budget = options.cell_budget;
  steal.seed = options.steal_seed;
  StealStats run;
  if (options.batch_width > 1) {
    run_pending_batched(cells, options, pending, keys,
                        journaled ? &journal : nullptr, steal, run, results);
  } else {
    run = work_steal_for(
        pending.size(), steal, [&](std::size_t j, const TaskStats& task) {
          const std::size_t i = pending[j];
          SweepResult r = evaluate_cell(cells[i], options);
          r.worker = task.worker;
          r.queue_depth = task.queue_depth;
          r.worker_steals = task.worker_steals;
          r.stolen = task.stolen;
          if (journaled) {
            // Appended (and flushed) as each cell completes, so a sweep
            // killed at any point resumes from every cell that finished.
            journal.append(keys[i], to_journal_payload(r));
          }
          results[i] = std::move(r);
        });
  }

  s.executed = run.executed;
  s.steal_ops = run.steal_ops;
  for (const std::size_t i : pending) {
    const SweepResult& r = results[i];
    if (!r.evaluated) {
      ++s.budget_expired;
      continue;
    }
    s.retries += static_cast<std::size_t>(r.retries);
    if (r.engine_fallback) ++s.fallbacks;
  }

  // Mirror the run's accounting into the global registry so --metrics-out
  // (and any scraper) sees the same numbers SweepStats reports.
  metrics.cells_total.increment(s.total_cells);
  metrics.cells_executed.increment(s.executed);
  metrics.cache_hits.increment(s.cache_hits);
  metrics.budget_expired.increment(s.budget_expired);
  metrics.fallbacks.increment(s.fallbacks);
  metrics.retries.increment(s.retries);
  return results;
}

}  // namespace detail

}  // namespace csr::driver
