#include "driver/sweep.hpp"

#include <chrono>
#include <exception>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "codegen/unfolded_retimed.hpp"
#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "driver/thread_pool.hpp"
#include "native/engine.hpp"
#include "retiming/opt.hpp"
#include "schedule/modulo.hpp"
#include "schedule/rotation.hpp"
#include "support/error.hpp"
#include "unfolding/unfold.hpp"
#include "vm/equivalence.hpp"

namespace csr::driver {

std::string_view to_string(Engine engine) {
  switch (engine) {
    case Engine::kOptRetiming:
      return "opt-retiming";
    case Engine::kRotation:
      return "rotation";
    case Engine::kModulo:
      return "modulo";
  }
  return "?";
}

std::string_view to_string(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kVm:
      return "vm";
    case ExecEngine::kMap:
      return "map";
    case ExecEngine::kNative:
      return "native";
  }
  return "?";
}

std::string_view to_string(Transform transform) {
  switch (transform) {
    case Transform::kOriginal:
      return "original";
    case Transform::kRetimed:
      return "retimed";
    case Transform::kRetimedCsr:
      return "retimed_csr";
    case Transform::kUnfolded:
      return "unfolded";
    case Transform::kUnfoldedCsr:
      return "unfolded_csr";
    case Transform::kRetimedUnfolded:
      return "retimed_unfolded";
    case Transform::kRetimedUnfoldedCsr:
      return "retimed_unfolded_csr";
    case Transform::kUnfoldedRetimed:
      return "unfolded_retimed";
    case Transform::kUnfoldedRetimedCsr:
      return "unfolded_retimed_csr";
  }
  return "?";
}

bool transform_uses_factor(Transform transform) {
  switch (transform) {
    case Transform::kOriginal:
    case Transform::kRetimed:
    case Transform::kRetimedCsr:
      return false;
    default:
      return true;
  }
}

std::vector<SweepCell> SweepGrid::cells() const {
  std::vector<SweepCell> out;
  for (const std::string& benchmark : benchmarks) {
    for (const std::int64_t n : trip_counts) {
      for (const Engine engine : engines) {
        for (const ExecEngine exec : exec_engines) {
          for (const Transform t : transforms) {
            if (!transform_uses_factor(t)) {
              out.push_back(SweepCell{benchmark, engine, exec, t, 1, n});
            }
          }
          for (const int f : factors) {
            for (const Transform t : transforms) {
              if (transform_uses_factor(t)) {
                out.push_back(SweepCell{benchmark, engine, exec, t, f, n});
              }
            }
          }
        }
      }
    }
  }
  return out;
}

namespace {

DataFlowGraph make_benchmark(const std::string& name) {
  for (const auto& info : benchmarks::all_graphs()) {
    if (info.name == name) return info.factory();
  }
  throw InvalidArgument("unknown benchmark '" + name + "'");
}

struct EngineOutcome {
  bool ok = false;
  Retiming retiming{0};
  std::int64_t period = 0;  ///< cycle period of the retimed graph
};

EngineOutcome run_engine(Engine engine, const DataFlowGraph& g,
                         const ResourceModel& machine) {
  EngineOutcome out;
  switch (engine) {
    case Engine::kOptRetiming: {
      const OptimalRetiming opt = minimum_period_retiming(g);
      out = {true, opt.retiming.normalized(), opt.period};
      break;
    }
    case Engine::kRotation: {
      const RotationResult rot = rotation_schedule(g, machine);
      out = {true, rot.retiming.normalized(), rot.period};
      break;
    }
    case Engine::kModulo: {
      const auto ms = modulo_schedule(g, machine);
      if (!ms) break;
      out = {true, retiming_from_modulo(g, *ms).normalized(), ms->initiation_interval};
      break;
    }
  }
  return out;
}

void infeasible(SweepResult& res, const std::string& why) {
  res.feasible = false;
  res.error = why;
}

}  // namespace

SweepResult evaluate_cell(const SweepCell& cell, const SweepOptions& options) {
  SweepResult res;
  res.cell = cell;
  try {
    const DataFlowGraph g = make_benchmark(cell.benchmark);
    const auto bound = iteration_bound(g);
    res.iteration_bound = bound ? bound->to_string() : "-";
    const std::int64_t n = cell.n;
    const int f = cell.factor;

    LoopProgram program;
    switch (cell.transform) {
      case Transform::kOriginal:
        program = original_program(g, n);
        res.period = Rational(cycle_period(g));
        res.predicted_size = original_size(g);
        break;

      case Transform::kRetimed:
      case Transform::kRetimedCsr: {
        const EngineOutcome eng = run_engine(cell.engine, g, options.machine);
        if (!eng.ok) return infeasible(res, "engine found no schedule"), res;
        res.period = Rational(eng.period);
        res.depth = eng.retiming.max_value();
        res.registers = registers_required(eng.retiming);
        if (n <= res.depth) return infeasible(res, "trip count <= pipeline depth"), res;
        if (cell.transform == Transform::kRetimed) {
          program = retimed_program(g, eng.retiming, n);
          res.predicted_size = predicted_retimed_size(g, eng.retiming);
        } else {
          program = retimed_csr_program(g, eng.retiming, n);
          res.predicted_size = predicted_retimed_csr_size(g, eng.retiming);
        }
        break;
      }

      case Transform::kUnfolded:
      case Transform::kUnfoldedCsr:
        res.period = Rational(cycle_period(unfold(g, f)), f);
        if (cell.transform == Transform::kUnfolded) {
          program = unfolded_program(g, f, n);
          res.predicted_size = predicted_unfolded_size(g, f, n);
        } else {
          program = unfolded_csr_program(g, f, n);
          res.registers = 1;  // the single remainder register
          res.predicted_size = predicted_unfolded_csr_size(g, f);
        }
        break;

      case Transform::kRetimedUnfolded:
      case Transform::kRetimedUnfoldedCsr: {
        const EngineOutcome eng = run_engine(cell.engine, g, options.machine);
        if (!eng.ok) return infeasible(res, "engine found no schedule"), res;
        res.period = Rational(cycle_period(unfold(apply_retiming(g, eng.retiming), f)), f);
        res.depth = eng.retiming.max_value();
        res.registers = registers_required(eng.retiming);
        if (n <= res.depth) return infeasible(res, "trip count <= pipeline depth"), res;
        if (cell.transform == Transform::kRetimedUnfolded) {
          program = retimed_unfolded_program(g, eng.retiming, f, n);
          res.predicted_size = predicted_retimed_unfolded_size(g, eng.retiming, f, n);
        } else {
          program = retimed_unfolded_csr_program(g, eng.retiming, f, n);
          res.predicted_size = predicted_retimed_unfolded_csr_size(g, eng.retiming, f);
        }
        break;
      }

      case Transform::kUnfoldedRetimed:
      case Transform::kUnfoldedRetimedCsr: {
        const Unfolding u(g, f);
        const EngineOutcome eng = run_engine(cell.engine, u.graph(), options.machine);
        if (!eng.ok) return infeasible(res, "engine found no schedule"), res;
        res.period = Rational(eng.period, f);
        res.depth = eng.retiming.max_value();
        res.registers = registers_required_unfolded(u, eng.retiming);
        if (n / f <= res.depth) {
          return infeasible(res, "need more than M'_r full unfolded trips"), res;
        }
        if (cell.transform == Transform::kUnfoldedRetimed) {
          program = unfolded_retimed_program(u, eng.retiming, n);
          res.predicted_size = predicted_unfolded_retimed_size(u, eng.retiming, n);
        } else {
          program = unfolded_retimed_csr_program(u, eng.retiming, n);
          res.predicted_size = predicted_unfolded_retimed_csr_size(u, eng.retiming);
        }
        break;
      }
    }

    res.code_size = program.code_size();
    if (options.verify) {
      const std::vector<std::string> arrays = array_names(g);
      // The expected state always comes from the fast VM on the original
      // loop, so non-VM cells are genuine cross-engine differentials.
      const Machine expected = run_program(original_program(g, n));
      switch (cell.exec) {
        case ExecEngine::kVm:
        case ExecEngine::kMap: {
          const ExecMode mode = cell.exec == ExecEngine::kVm
                                    ? ExecMode::kFast
                                    : ExecMode::kReference;
          const auto start = std::chrono::steady_clock::now();
          const Machine actual = run_program(program, mode);
          res.exec_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
          res.exec_statements = actual.executed_statements();
          res.verified = diff_observable_state(expected, actual, arrays, n).empty();
          res.discipline_ok = check_write_discipline(actual, arrays, n).empty();
          break;
        }
        case ExecEngine::kNative: {
          const native::NativeOutcome out = native::run_native(program);
          if (!out.ok()) {
            // A missing or broken host compiler is a property of the machine,
            // not of the cell: report it as skipped, keep the cell feasible.
            res.skipped = true;
            res.skip_reason = out.diagnostic;
            break;
          }
          res.exec_seconds = out.run_seconds;
          res.exec_statements = out.result.executed_statements();
          res.verified =
              diff_observable_state(MachineView(expected), out.result, arrays, n)
                  .empty();
          res.discipline_ok = check_write_discipline(out.result, arrays, n).empty();
          break;
        }
      }
    }
  } catch (const std::exception& e) {
    res.feasible = false;
    res.error = e.what();
  }
  return res;
}

std::vector<SweepResult> run_sweep(const SweepGrid& grid, const SweepOptions& options) {
  const std::vector<SweepCell> cells = grid.cells();
  std::vector<SweepResult> results(cells.size());
  parallel_for(cells.size(), options.threads,
               [&](std::size_t i) { results[i] = evaluate_cell(cells[i], options); });
  return results;
}

}  // namespace csr::driver
