#pragma once

/// \file cell_exec.hpp
/// The two halves of one sweep cell, exposed as a public API.
///
/// `evaluate_cell` (sweep.hpp) is the fused convenience path; this header
/// splits it at the seam the batched executor has always used internally:
///
///   * **prepare_cell** — build the graph, run the pipeline engine, generate
///     the program, run the fixpoint peephole optimizer, account sizes. The
///     result is a PreparedCell whose program is ready to execute.
///   * **verify_cell** — run the verifying execution engine (VM / map /
///     native with retry + fallback) over a prepared program and fill the
///     verification fields.
///
/// Splitting the phases publicly is what lets callers *other than* the sweep
/// scheduler group prepared cells for batched execution. The serving tier
/// coalesces prepared cells of distinct concurrent requests by
/// `prepared_batch_key` and verifies whole groups through
/// `execute_prepared_batch` — one SoA kernel (or one batched
/// superinstruction VM run) serving several requests, with per-lane failure
/// degradation back to `verify_cell`'s retry/VM-fallback semantics
/// (src/serve/coalesce.hpp). Results are byte-identical to single-cell
/// execution for any grouping (the `batch` ctest label holds this).

#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "driver/sweep.hpp"
#include "loopir/program.hpp"

namespace csr::driver {

/// A cell after the generation phase: its (peephole-optimized) program plus
/// everything the verification phase needs.
struct PreparedCell {
  SweepResult res;
  DataFlowGraph graph;
  std::vector<std::string> arrays;
  LoopProgram program;  ///< the optimized program verification executes
  /// True when a program was generated and verification can run; false for
  /// infeasible/errored cells (res carries the diagnosis).
  bool runnable = false;
};

/// Phase 1 of a cell: graph → engine → program → peephole pipeline → size
/// accounting. Never throws — failures land in `res.error`.
[[nodiscard]] PreparedCell prepare_cell(const SweepCell& cell,
                                        const SweepOptions& options);

/// Phase 2 of a cell: runs the verifying execution engine over the prepared
/// program and fills the verification fields (incl. native retry, deadline
/// and VM-fallback policy). No-op for unrunnable cells or verify-less
/// sweeps.
void verify_cell(PreparedCell& prep, const SweepOptions& options);

/// True when `prep` can join a batched kernel run under `options`: it is
/// runnable, the sweep verifies, and the execution engine has a batch path
/// (the map interpreter does not).
[[nodiscard]] bool prepared_batchable(const PreparedCell& prep,
                                      const SweepOptions& options);

/// Grouping key for batched execution: the cell's execution engine plus the
/// program's batch shape key (codegen/batch_emitter.hpp). Two prepared
/// cells with equal keys may execute as lanes of one batch kernel.
/// Meaningless for cells where !prepared_batchable.
[[nodiscard]] std::string prepared_batch_key(const PreparedCell& prep);

/// One batched kernel invocation over `lanes` — every lane must satisfy
/// prepared_batchable and share one prepared_batch_key. Native lanes run
/// one SoA batch kernel (with the retry policy's compile deadline and
/// backoff); VM lanes run the batched superinstruction path. On success the
/// verification fields of every lane are filled exactly as verify_cell
/// would have, and true is returned. On failure nothing is guaranteed about
/// the lanes' verification fields and false is returned — the caller
/// degrades each lane individually through verify_cell, which owns the full
/// retry/VM-fallback/skip semantics.
[[nodiscard]] bool execute_prepared_batch(const std::vector<PreparedCell*>& lanes,
                                          const SweepOptions& options);

/// The journal payload codec version ("sweep-v3"): part of every journal
/// key, advertised by the serving tier's GET /v1/version.
[[nodiscard]] std::string_view journal_payload_version();

}  // namespace csr::driver
