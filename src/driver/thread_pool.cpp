#include "driver/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace csr::driver {

unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  if (threads == 0) threads = default_thread_count();
  if (count == 0) return;
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  if (threads > count) threads = static_cast<unsigned>(count);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace csr::driver
