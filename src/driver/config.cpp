#include "driver/config.hpp"

namespace csr::driver {

SweepRun run_sweep(const SweepConfig& config) {
  SweepRun run;
  run.results = detail::run_cells(config.cells(), config.options(), &run.stats);
  return run;
}

}  // namespace csr::driver
