#include "driver/scheduler.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "driver/thread_pool.hpp"
#include "observe/observe.hpp"
#include "support/rng.hpp"

namespace csr::driver {

namespace {

/// One worker's deque. Mutex-protected rather than lock-free: sweep tasks
/// are milliseconds-to-seconds coarse, so contention on these locks is
/// noise, and a mutex keeps the steal-half transfer trivially correct.
struct WorkerDeque {
  std::mutex m;
  std::deque<std::size_t> q;
};

/// Scheduler metrics (docs/OBSERVABILITY.md). Queue depth buckets are task
/// counts, not seconds, hence the dedicated power-of-two edges.
struct SchedulerMetrics {
  observe::Counter& steals;
  observe::Counter& tasks_stolen;
  observe::Counter& tasks_executed;
  observe::Histogram& queue_depth;

  static SchedulerMetrics& get() {
    static SchedulerMetrics metrics = [] {
      auto& reg = observe::MetricsRegistry::global();
      return SchedulerMetrics{
          reg.counter("csr_scheduler_steals_total", "Steal-half operations"),
          reg.counter("csr_scheduler_tasks_stolen_total",
                      "Tasks migrated between worker deques"),
          reg.counter("csr_scheduler_tasks_executed_total",
                      "Tasks run by the work-stealing pool"),
          reg.histogram("csr_scheduler_queue_depth",
                        {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0},
                        "Worker deque depth observed after each task pop"),
      };
    }();
    return metrics;
  }
};

}  // namespace

StealStats work_steal_for(
    std::size_t count, const StealOptions& options,
    const std::function<void(std::size_t, const TaskStats&)>& fn) {
  StealStats stats;
  if (count == 0) return stats;
  SchedulerMetrics& metrics = SchedulerMetrics::get();
  std::size_t budget = options.budget == 0 ? count : options.budget;
  if (budget > count) budget = count;
  unsigned threads = options.threads == 0 ? default_thread_count() : options.threads;
  if (threads > count) threads = static_cast<unsigned>(count);

  observe::Span run_span("scheduler", "work_steal_for");
  run_span.arg("tasks", static_cast<std::uint64_t>(count))
      .arg("threads", threads)
      .arg("budget", static_cast<std::uint64_t>(budget));

  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < budget; ++i) {
      TaskStats ts;
      ts.queue_depth = count - i - 1;
      ++stats.executed;
      metrics.tasks_executed.increment();
      metrics.queue_depth.observe(static_cast<double>(ts.queue_depth));
      fn(i, ts);
    }
    return stats;
  }

  std::vector<WorkerDeque> deques(threads);
  // Block distribution seeds each worker with a contiguous index range, so
  // with zero steals the pool degenerates to a cache-friendly static split.
  for (unsigned w = 0; w < threads; ++w) {
    const std::size_t lo = count * w / threads;
    const std::size_t hi = count * (w + 1) / threads;
    for (std::size_t i = lo; i < hi; ++i) deques[w].q.push_back(i);
  }

  // Per-worker victim orders, permuted by the seed: the steal order is an
  // explicit input so tests can assert results do not depend on it.
  std::vector<std::vector<unsigned>> victim_order(threads);
  for (unsigned w = 0; w < threads; ++w) {
    std::vector<unsigned>& order = victim_order[w];
    for (unsigned v = 0; v < threads; ++v) {
      if (v != w) order.push_back(v);
    }
    SplitMix64 rng(options.seed * 0x9E3779B97F4A7C15ULL + w + 1);
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
  }

  // `stolen[i]` is only written/read under the lock of the deque currently
  // holding task i, so plain bytes are race-free.
  std::vector<std::uint8_t> stolen(count, 0);

  std::atomic<std::int64_t> budget_left{static_cast<std::int64_t>(budget)};
  std::atomic<std::size_t> popped{0};
  std::atomic<std::uint64_t> executed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::uint64_t> steal_ops(threads, 0);
  std::vector<std::uint64_t> tasks_stolen(threads, 0);

  const auto worker = [&](unsigned w) {
    observe::Span worker_span("scheduler", "worker");
    worker_span.arg("worker", w);
    // Per-worker slots, so counters need no synchronization.
    std::uint64_t& my_steals = steal_ops[w];
    while (!failed.load(std::memory_order_relaxed)) {
      // The shared atomic cell budget: every execution claims one unit
      // up front, so at most `budget` tasks run no matter how indices
      // migrate between deques.
      if (budget_left.fetch_sub(1, std::memory_order_relaxed) <= 0) {
        budget_left.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::size_t task = 0;
      TaskStats ts;
      bool have_task = false;
      while (!have_task) {
        {
          const std::lock_guard<std::mutex> lock(deques[w].m);
          if (!deques[w].q.empty()) {
            task = deques[w].q.front();
            deques[w].q.pop_front();
            ts.queue_depth = deques[w].q.size();
            have_task = true;
          }
        }
        if (have_task) break;
        // Steal-half: take the back half of the first non-empty victim, in
        // the worker's permuted victim order.
        std::vector<std::size_t> loot;
        for (const unsigned v : victim_order[w]) {
          const std::lock_guard<std::mutex> lock(deques[v].m);
          const std::size_t k = deques[v].q.size();
          if (k == 0) continue;
          const std::size_t take = (k + 1) / 2;
          loot.assign(deques[v].q.end() - static_cast<std::ptrdiff_t>(take),
                      deques[v].q.end());
          deques[v].q.erase(deques[v].q.end() - static_cast<std::ptrdiff_t>(take),
                            deques[v].q.end());
          for (const std::size_t i : loot) stolen[i] = 1;
          break;
        }
        if (!loot.empty()) {
          ++my_steals;
          tasks_stolen[w] += loot.size();
          metrics.steals.increment();
          metrics.tasks_stolen.increment(loot.size());
          const std::lock_guard<std::mutex> lock(deques[w].m);
          deques[w].q.insert(deques[w].q.begin(), loot.begin(), loot.end());
          continue;
        }
        // Every deque looked empty. If all tasks have been popped, no work
        // will ever reappear; otherwise some tasks are in a steal transit
        // or still queued behind a lock — spin politely.
        if (popped.load(std::memory_order_acquire) >= count ||
            failed.load(std::memory_order_relaxed)) {
          budget_left.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::this_thread::yield();
      }
      popped.fetch_add(1, std::memory_order_release);
      ts.worker = w;
      ts.stolen = stolen[task] != 0;
      ts.worker_steals = my_steals;
      executed.fetch_add(1, std::memory_order_relaxed);
      metrics.tasks_executed.increment();
      metrics.queue_depth.observe(static_cast<double>(ts.queue_depth));
      try {
        fn(task, ts);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned w = 1; w < threads; ++w) pool.emplace_back(worker, w);
  worker(0);
  for (std::thread& t : pool) t.join();

  stats.executed = executed.load();
  for (unsigned w = 0; w < threads; ++w) {
    stats.steal_ops += steal_ops[w];
    stats.tasks_stolen += tasks_stolen[w];
  }
  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

}  // namespace csr::driver
