#pragma once

/// \file export.hpp
/// Deterministic serialization of sweep results. Both exporters walk the
/// result vector in order, so a sweep run with any thread count produces
/// byte-identical output (run_sweep() already guarantees grid-order
/// results). The CSV format matches the historical csr_results.csv layout;
/// the JSON export carries every SweepResult field for downstream tooling.

#include <string>
#include <vector>

#include "driver/sweep.hpp"

namespace csr::driver {

/// CSV with header `benchmark,transform,factor,n,iteration_bound,period,
/// depth,registers,size,verified`. Infeasible cells are skipped — the file
/// lists achieved configurations, like the paper's tables — and so are
/// budget-expired cells (`evaluated == false`), which carry no measurements.
/// `verified` is "yes"/"NO".
[[nodiscard]] std::string to_csv(const std::vector<SweepResult>& results);

/// Knobs for the JSON export. Timing is off by default so that serial and
/// parallel sweeps of the same grid stay byte-identical; benches that want
/// throughput rows opt in.
struct JsonOptions {
  /// Emit the per-run observability fields (exec_seconds, from_cache,
  /// retries, worker, queue_depth, worker_steals, stolen). They are noisy /
  /// scheduling-dependent, so the default export stays byte-deterministic
  /// across thread counts, steal orders and journal warmth.
  bool include_timing = false;
};

/// JSON array of objects, one per cell (including infeasible ones, with
/// their `error`, and skipped ones, with their `skip_reason`). All
/// deterministic fields of SweepResult are present — including
/// `engine_fallback`/`fallback_reason` and `evaluated`; keys are emitted in a
/// fixed order. The observability fields appear only under
/// JsonOptions::include_timing.
[[nodiscard]] std::string to_json(const std::vector<SweepResult>& results,
                                  const JsonOptions& options = {});

}  // namespace csr::driver
