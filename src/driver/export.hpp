#pragma once

/// \file export.hpp
/// Deterministic serialization of sweep results. Both exporters walk the
/// result vector in order, so a sweep run with any thread count produces
/// byte-identical output (run_sweep() already guarantees grid-order
/// results). The CSV format matches the historical csr_results.csv layout
/// (column table: export_schema.hpp); the JSON export carries every
/// SweepResult field for downstream tooling.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "driver/export_schema.hpp"
#include "driver/sweep.hpp"
#include "support/enum_names.hpp"

namespace csr::driver {

/// Output format of the export tools, parsed from the command line via
/// parse_export_format().
enum class ExportFormat {
  kCsv,
  kJson,
};

}  // namespace csr::driver

namespace csr {

template <>
struct EnumNames<driver::ExportFormat> {
  static constexpr std::pair<driver::ExportFormat, std::string_view> entries[] = {
      {driver::ExportFormat::kCsv, "csv"},
      {driver::ExportFormat::kJson, "json"},
  };
};

}  // namespace csr

namespace csr::driver {

[[nodiscard]] constexpr std::string_view to_string(ExportFormat format) {
  return enum_name(format);
}
[[nodiscard]] constexpr std::optional<ExportFormat> parse_export_format(
    std::string_view name) {
  return parse_enum<ExportFormat>(name);
}

/// Shared knobs of both exporters. Timing is off by default so that serial
/// and parallel sweeps of the same grid stay byte-identical; benches that
/// want throughput rows opt in.
struct ExportOptions {
  /// Emit the per-run observability fields (exec_seconds, from_cache,
  /// retries, worker, queue_depth, worker_steals, stolen) in the JSON
  /// export. They are noisy / scheduling-dependent, so the default export
  /// stays byte-deterministic across thread counts, steal orders, journal
  /// warmth — and tracing on vs off.
  bool include_timing = false;
};

/// CSV with the export_schema.hpp header. Infeasible cells are skipped — the
/// file lists achieved configurations, like the paper's tables — and so are
/// budget-expired cells (`evaluated == false`), which carry no measurements.
/// `verified` is "yes"/"NO".
[[nodiscard]] std::string to_csv(const std::vector<SweepResult>& results,
                                 const ExportOptions& options = {});

/// JSON array of objects, one per cell (including infeasible ones, with
/// their `error`, and skipped ones, with their `skip_reason`). All
/// deterministic fields of SweepResult are present — including
/// `engine_fallback`/`fallback_reason` and `evaluated`; keys are emitted in
/// the export_schema.hpp order. The observability fields appear only under
/// ExportOptions::include_timing.
[[nodiscard]] std::string to_json(const std::vector<SweepResult>& results,
                                  const ExportOptions& options = {});

}  // namespace csr::driver
