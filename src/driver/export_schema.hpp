#pragma once

/// \file export_schema.hpp
/// The single source of truth for the exporters' column/key layout. The CSV
/// header literal used to be duplicated (and hand-maintained) in export.cpp,
/// the driver tests and the bench tools; everyone now derives it from this
/// table, so a schema change is one edit and every consumer follows.

#include <string>
#include <string_view>

namespace csr::driver {

/// Columns of the CSV export, in emission order. This is the historical
/// csr_results.csv layout — the byte-determinism contract pins it; new
/// columns append (optimality_gap was added with the exact engine so the
/// pre-existing columns stay byte-identical).
inline constexpr std::string_view kCsvColumns[] = {
    "benchmark", "transform", "factor",    "n",    "iteration_bound",
    "period",    "depth",     "registers", "size", "verified",
    "optimality_gap", "measured_size", "loop_dims", "rows", "cols",
};

/// The CSV header line, trailing newline included:
/// "benchmark,transform,...,verified\n".
[[nodiscard]] inline std::string csv_header() {
  std::string out;
  for (const std::string_view column : kCsvColumns) {
    if (!out.empty()) out += ',';
    out += column;
  }
  out += '\n';
  return out;
}

/// Keys of the JSON export's deterministic prefix, in emission order. The
/// observability keys (exec_seconds, from_cache, retries, worker,
/// queue_depth, worker_steals, stolen) follow only under
/// ExportOptions::include_timing.
inline constexpr std::string_view kJsonKeys[] = {
    "benchmark",     "engine",         "exec_engine",     "transform",
    "factor",        "n",              "feasible",        "error",
    "skipped",       "skip_reason",    "iteration_bound", "period",
    "depth",         "registers",      "code_size",       "predicted_size",
    "verified",      "discipline_ok",  "exec_statements", "engine_fallback",
    "fallback_reason", "evaluated",    "optimality_gap",  "measured_size",
    "loop_dims",     "rows",           "cols",
};

}  // namespace csr::driver
