#pragma once

/// \file sweep.hpp
/// The parallel design-space sweep engine. The paper's evaluation — and
/// every bench in this repo — is a cross product
///
///     (benchmark graph) × (pipeline engine) × (execution engine)
///       × (transformation order) × (unfolding factor f) × (trip count n)
///
/// evaluated cell by cell: generate the program, execute it on the cell's
/// execution engine, check equivalence against the original loop, and
/// account code size. SweepGrid declares the product and the result vector
/// is always in grid order — so CSV/JSON exports are byte-identical no
/// matter how many threads ran the sweep.
///
/// **Entry point:** `run_sweep(const SweepConfig&)` in driver/config.hpp
/// (or through the umbrella header api/csr.hpp). The pre-SweepConfig
/// grid/options overloads went through a full `[[deprecated]]` release and
/// have been removed.
///
/// Three production-hardening layers sit between the grid and the results
/// (docs/DRIVER.md has the full design):
///
///   * **Work-stealing execution** (scheduler.hpp): per-worker deques with
///     steal-half balancing, because a native-compile cell costs orders of
///     magnitude more than a VM cell. Bounded by the shared atomic cell
///     budget in SweepOptions::cell_budget, which turns one run into an
///     incremental slice of the grid.
///   * **Persistent result cache** (SweepOptions::journal_path): every
///     completed cell is appended to a crash-safe on-disk journal keyed by
///     a content hash of (DFG, transform, engines, parameters). Re-running
///     the same grid replays cached cells and executes only the delta —
///     a sweep killed mid-run resumes instead of restarting.
///   * **Retry / timeout / fallback** (RetryPolicy): native-engine cells
///     run their compiler subprocess under a deadline, retry transient
///     failures with jittered exponential backoff, and finally degrade to
///     the VM engine with the failure preserved as a per-cell diagnostic —
///     a hung or broken toolchain can never abort a sweep.
///
/// Every phase is instrumented through src/observe/ (spans per sweep, cell,
/// engine run; counters and latency histograms in the global
/// MetricsRegistry) — docs/OBSERVABILITY.md catalogues both.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "schedule/resources.hpp"
#include "support/enum_names.hpp"
#include "support/rational.hpp"

namespace csr::driver {

/// Software-pipelining engine used to obtain the retiming of retimed
/// transforms (ignored by the pure-unfolding ones).
enum class Engine {
  kOptRetiming,  ///< resource-oblivious minimum-period retiming (the paper's)
  kRotation,     ///< rotation scheduling under the resource model
  kModulo,       ///< iterative modulo scheduling under the resource model
  kOptExact,     ///< exact branch-and-bound optimum (retiming/exact.hpp)
};

/// Execution engine a cell's transformed program runs on for verification —
/// the three engines of the differential harness (docs/ENGINES.md). The
/// expected state always comes from the fast VM running the original loop,
/// so a kMap cell cross-checks map-vs-VM and a kNative cell VM-vs-native.
enum class ExecEngine {
  kVm,      ///< the VM's interned fast path (ExecMode::kFast)
  kMap,     ///< the map-backed reference interpreter (ExecMode::kReference)
  kNative,  ///< compiled C via src/native/ (degrades to the VM on failure)
};

/// Transformation order / output form of one cell, mirroring the columns of
/// Tables 1–4: expanded (prologue/epilogue) forms and their CSR reductions.
enum class Transform {
  kOriginal,
  kRetimed,
  kRetimedCsr,
  kUnfolded,
  kUnfoldedCsr,
  kRetimedUnfolded,
  kRetimedUnfoldedCsr,
  kUnfoldedRetimed,
  kUnfoldedRetimedCsr,
};

}  // namespace csr::driver

namespace csr {

// Name tables (support/enum_names.hpp): the single source of truth for both
// printing and parsing of every driver enum.

template <>
struct EnumNames<driver::Engine> {
  static constexpr std::pair<driver::Engine, std::string_view> entries[] = {
      {driver::Engine::kOptRetiming, "opt-retiming"},
      {driver::Engine::kRotation, "rotation"},
      {driver::Engine::kModulo, "modulo"},
      {driver::Engine::kOptExact, "opt-exact"},
  };
};

template <>
struct EnumNames<driver::ExecEngine> {
  static constexpr std::pair<driver::ExecEngine, std::string_view> entries[] = {
      {driver::ExecEngine::kVm, "vm"},
      {driver::ExecEngine::kMap, "map"},
      {driver::ExecEngine::kNative, "native"},
  };
};

template <>
struct EnumNames<driver::Transform> {
  static constexpr std::pair<driver::Transform, std::string_view> entries[] = {
      {driver::Transform::kOriginal, "original"},
      {driver::Transform::kRetimed, "retimed"},
      {driver::Transform::kRetimedCsr, "retimed_csr"},
      {driver::Transform::kUnfolded, "unfolded"},
      {driver::Transform::kUnfoldedCsr, "unfolded_csr"},
      {driver::Transform::kRetimedUnfolded, "retimed_unfolded"},
      {driver::Transform::kRetimedUnfoldedCsr, "retimed_unfolded_csr"},
      {driver::Transform::kUnfoldedRetimed, "unfolded_retimed"},
      {driver::Transform::kUnfoldedRetimedCsr, "unfolded_retimed_csr"},
  };
};

}  // namespace csr

namespace csr::driver {

[[nodiscard]] constexpr std::string_view to_string(Engine engine) {
  return enum_name(engine);
}
[[nodiscard]] constexpr std::string_view to_string(ExecEngine engine) {
  return enum_name(engine);
}
[[nodiscard]] constexpr std::string_view to_string(Transform transform) {
  return enum_name(transform);
}

/// Round-trip parsers: parse_engine(to_string(e)) == e for every enumerator;
/// unknown names yield nullopt (tests/enum_names_test.cpp).
[[nodiscard]] constexpr std::optional<Engine> parse_engine(std::string_view name) {
  return parse_enum<Engine>(name);
}
[[nodiscard]] constexpr std::optional<ExecEngine> parse_exec_engine(
    std::string_view name) {
  return parse_enum<ExecEngine>(name);
}
[[nodiscard]] constexpr std::optional<Transform> parse_transform(
    std::string_view name) {
  return parse_enum<Transform>(name);
}

/// True for transforms with an unfolding-factor dimension (f > 1 meaningful).
[[nodiscard]] bool transform_uses_factor(Transform transform);

/// True for the transforms the nested (2-D) lowering supports: original,
/// retimed and retimed-CSR. Unfolding a nest needs a 2-D unfolding theory
/// the model doesn't have yet, so factor-full transforms are 1-D only.
[[nodiscard]] bool transform_supports_nested(Transform transform);

/// True when `name` is a nested benchmark (mdfg::md_benchmarks()); such
/// cells route through the 2-D prepare path and carry rows/cols.
[[nodiscard]] bool is_nested_benchmark(const std::string& name);

/// A 2-D iteration-space shape, the nested family's analogue of the
/// trip-count axis (n = rows·cols).
struct LoopShape {
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  friend bool operator==(const LoopShape&, const LoopShape&) = default;
};

/// One point of the cross product.
struct SweepCell {
  std::string benchmark;  ///< name in benchmarks::all_graphs() or mdfg::md_benchmarks()
  Engine engine = Engine::kOptRetiming;
  ExecEngine exec = ExecEngine::kVm;
  Transform transform = Transform::kOriginal;
  int factor = 1;
  std::int64_t n = 101;
  /// 2-D iteration-space shape for nested benchmarks; (0,0) marks a classic
  /// 1-D cell. Nested cells always satisfy n == rows·cols.
  std::int64_t rows = 0;
  std::int64_t cols = 0;
};

/// Everything measured for a cell. `feasible` is false when the
/// configuration cannot be generated (e.g. unfold-then-retime with
/// n/f ≤ M'_r, or an engine that found no schedule); `error` carries the
/// exception text when evaluation threw. `skipped` is true for feasible
/// cells whose execution engine is unavailable and whose retry policy
/// disabled VM fallback — the diagnostic lands in `skip_reason` and the
/// sweep carries on.
struct SweepResult {
  SweepCell cell;
  bool feasible = true;
  std::string error;
  bool skipped = false;     ///< execution engine unavailable; see skip_reason
  std::string skip_reason;  ///< toolchain diagnostic for skipped cells
  std::string iteration_bound;  ///< "-" for acyclic graphs
  Rational period;              ///< iteration period of the cell's form
  int depth = 0;                ///< pipeline depth M_r
  std::int64_t registers = 0;   ///< conditional registers
  std::int64_t code_size = 0;   ///< generated program's instruction count
  std::int64_t predicted_size = -1;  ///< closed-form model; -1 = no formula
  /// Instruction count after the fixpoint peephole pipeline
  /// (loopir/pipeline.hpp) ran over the generated program — the *measured*
  /// size the verifying execution actually ran, vs. the closed-form
  /// `predicted_size`. Never exceeds `code_size`; −1 ("-" in CSV) when no
  /// codegen ran (infeasible / unevaluated cells).
  std::int64_t measured_size = -1;
  bool verified = false;             ///< equivalent to the original loop
  bool discipline_ok = false;        ///< write-discipline check passed
  /// Statements the cell's engine executed while verifying (0 unverified).
  std::int64_t exec_statements = 0;

  /// True when a native cell exhausted its retry budget and was verified on
  /// the VM instead; the final native failure is kept in fallback_reason.
  /// Deterministic for a given host+policy, so part of the default export
  /// and of the journal payload.
  bool engine_fallback = false;
  std::string fallback_reason;

  /// False when the run's cell budget expired before this cell executed —
  /// the cell was neither evaluated nor journaled. CSV skips such rows.
  bool evaluated = true;

  /// Cycle period achieved by the cell's engine minus the certified exact
  /// minimum (retiming/exact.hpp) of the graph the engine retimed — 0 means
  /// provably period-optimal. −1 for engine-less transforms (original /
  /// pure unfolding) and infeasible cells; exported as "-" in CSV.
  std::int64_t optimality_gap = -1;

  // --- per-run observability, never journaled, exported only under
  // ExportOptions::include_timing (they would break byte-determinism).
  // Aggregates of the same facts live in observe::MetricsRegistry ----------
  /// Wall time of the verifying execution (engine run only; excludes the
  /// expected-state run and, for native, compilation).
  double exec_seconds = 0.0;
  bool from_cache = false;  ///< replayed from the journal, not executed
  int retries = 0;          ///< native attempts beyond the first
  unsigned worker = 0;      ///< scheduler worker that ran the cell
  std::size_t queue_depth = 0;    ///< worker's deque depth after the pop
  std::uint64_t worker_steals = 0;  ///< steals that worker had performed
  bool stolen = false;            ///< cell migrated deques before running
};

/// Retry / timeout / degradation policy for native-engine cells. Backoff
/// before attempt k (k ≥ 2) is min(backoff_max, backoff_base·2^(k−2))
/// scaled by a deterministic per-cell jitter in [0.5, 1.0].
struct RetryPolicy {
  int max_attempts = 3;            ///< native attempts before giving up
  double compile_deadline = 20.0;  ///< seconds per compiler subprocess; 0 = none
  double backoff_base = 0.02;      ///< seconds
  double backoff_max = 0.5;        ///< seconds
  /// After the attempts are exhausted: true = verify the cell on the VM and
  /// record the native failure in fallback_reason; false = mark the cell
  /// skipped (the pre-journal behavior, still used by availability tests).
  bool fallback_to_vm = true;
};

struct SweepOptions {
  unsigned threads = 1;  ///< 0 = one per hardware thread
  bool verify = true;    ///< run VM equivalence + write discipline per cell
  /// Resource model for the resource-constrained engines.
  ResourceModel machine = ResourceModel::adders_and_multipliers(2, 2);
  RetryPolicy retry;
  /// Non-empty = persistent result cache: completed cells are appended to
  /// this journal and replayed (not re-executed) by later runs.
  std::string journal_path;
  /// Max cells executed this run, shared across all workers (0 = all).
  /// Budget-expired cells come back with `evaluated == false`.
  std::size_t cell_budget = 0;
  /// Permutes each worker's steal-victim order; results never depend on it.
  std::uint64_t steal_seed = 0;
  /// Maximum lanes per batched kernel invocation. At the default 1 every
  /// cell executes alone (the historical path). Above 1, cells that share
  /// an execution engine and a batch shape (codegen/batch_emitter.hpp) —
  /// same DFG/variant, differing only in trip count — are verified in
  /// groups: native cells through one SoA batch kernel, VM cells through
  /// the superinstruction path. Per-cell results, journal payloads and
  /// deterministic exports are byte-identical to a single-cell run for any
  /// width; journal_key deliberately excludes the width so batched and
  /// unbatched runs share cache entries.
  std::size_t batch_width = 1;
};

/// Aggregate accounting of one sweep run. Mirrored into the global
/// MetricsRegistry (csr_sweep_* counters) when a run completes.
struct SweepStats {
  std::size_t total_cells = 0;
  std::size_t executed = 0;        ///< cells evaluated by this run
  std::size_t cache_hits = 0;      ///< cells replayed from the journal
  std::size_t budget_expired = 0;  ///< cells left unevaluated by the budget
  std::size_t fallbacks = 0;       ///< native cells degraded to the VM
  std::size_t retries = 0;         ///< total native retry attempts
  std::uint64_t steal_ops = 0;     ///< scheduler steal-half operations
  std::size_t journal_dropped = 0; ///< corrupt journal records ignored
};

/// The declarative grid. cells() enumerates the product in deterministic
/// grid order: benchmark → n → engine → execution engine → factor-less
/// transforms (in list order) → factor × factor-full transforms — matching
/// the row order of the paper's tables and of csr_results.csv (whose layout
/// is preserved by the single-element exec_engines default).
struct SweepGrid {
  std::vector<std::string> benchmarks;
  std::vector<std::int64_t> trip_counts = {101};
  /// Iteration-space shapes for nested (2-D) benchmarks, which sweep over
  /// shapes instead of trip_counts (their n is rows·cols) and over the
  /// nested-supported transforms only. 1-D benchmarks ignore this axis.
  /// The default inner trip count covers every bundled benchmark's
  /// min_cols under both MD engines (opt-exact lifts can need cols ≥ 19).
  std::vector<LoopShape> shapes = {{8, 24}};
  std::vector<Engine> engines = {Engine::kOptRetiming};
  std::vector<ExecEngine> exec_engines = {ExecEngine::kVm};
  std::vector<Transform> transforms = {
      Transform::kOriginal,           Transform::kRetimed,
      Transform::kRetimedCsr,         Transform::kUnfolded,
      Transform::kUnfoldedCsr,        Transform::kRetimedUnfolded,
      Transform::kRetimedUnfoldedCsr, Transform::kUnfoldedRetimed,
      Transform::kUnfoldedRetimedCsr,
  };
  std::vector<int> factors = {2, 3, 4};

  [[nodiscard]] std::vector<SweepCell> cells() const;
};

/// Evaluates one cell: build the graph, run the engine, generate the
/// program, measure and (optionally) verify. Never throws — failures land
/// in SweepResult::error.
[[nodiscard]] SweepResult evaluate_cell(const SweepCell& cell,
                                        const SweepOptions& options);

namespace detail {
/// The canonical sweep executor behind every public entry point
/// (work-stealing, journal-cached, retried — everything SweepOptions
/// describes). Result slot i always corresponds to cells[i]. Prefer
/// run_sweep(const SweepConfig&) from driver/config.hpp.
[[nodiscard]] std::vector<SweepResult> run_cells(const std::vector<SweepCell>& cells,
                                                 const SweepOptions& options,
                                                 SweepStats* stats = nullptr);
}  // namespace detail

// --- journal plumbing (exposed for tests and tooling) ----------------------

/// Content-hash cache key of a cell under `options`: hashes the benchmark
/// DFG's full text serialization (not just its name), the transform/engine
/// axes, parameters, the verify flag and a codec version — any semantic
/// change to inputs or payload format invalidates old journals.
[[nodiscard]] std::string journal_key(const SweepCell& cell,
                                      const SweepOptions& options);

/// Serializes the deterministic fields of a result as a journal payload.
[[nodiscard]] std::string to_journal_payload(const SweepResult& result);

/// Parses a payload back into `result` (cell fields are taken from `cell`).
/// Returns false on malformed or version-mismatched payloads.
[[nodiscard]] bool from_journal_payload(const std::string& payload,
                                        const SweepCell& cell, SweepResult& result);

}  // namespace csr::driver
