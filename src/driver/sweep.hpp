#pragma once

/// \file sweep.hpp
/// The parallel design-space sweep engine. The paper's evaluation — and
/// every bench in this repo — is a cross product
///
///     (benchmark graph) × (pipeline engine) × (execution engine)
///       × (transformation order) × (unfolding factor f) × (trip count n)
///
/// evaluated cell by cell: generate the program, execute it on the cell's
/// execution engine, check equivalence against the original loop, and
/// account code size. SweepGrid declares the product, run_sweep() evaluates
/// its cells on a thread pool, and the result vector is always in grid order
/// — so CSV/JSON exports are byte-identical no matter how many threads ran
/// the sweep.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "schedule/resources.hpp"
#include "support/rational.hpp"

namespace csr::driver {

/// Software-pipelining engine used to obtain the retiming of retimed
/// transforms (ignored by the pure-unfolding ones).
enum class Engine {
  kOptRetiming,  ///< resource-oblivious minimum-period retiming (the paper's)
  kRotation,     ///< rotation scheduling under the resource model
  kModulo,       ///< iterative modulo scheduling under the resource model
};

/// Execution engine a cell's transformed program runs on for verification —
/// the three engines of the differential harness (docs/ENGINES.md). The
/// expected state always comes from the fast VM running the original loop,
/// so a kMap cell cross-checks map-vs-VM and a kNative cell VM-vs-native.
enum class ExecEngine {
  kVm,      ///< the VM's interned fast path (ExecMode::kFast)
  kMap,     ///< the map-backed reference interpreter (ExecMode::kReference)
  kNative,  ///< compiled C via src/native/ (skipped if no host compiler)
};

/// Transformation order / output form of one cell, mirroring the columns of
/// Tables 1–4: expanded (prologue/epilogue) forms and their CSR reductions.
enum class Transform {
  kOriginal,
  kRetimed,
  kRetimedCsr,
  kUnfolded,
  kUnfoldedCsr,
  kRetimedUnfolded,
  kRetimedUnfoldedCsr,
  kUnfoldedRetimed,
  kUnfoldedRetimedCsr,
};

[[nodiscard]] std::string_view to_string(Engine engine);
[[nodiscard]] std::string_view to_string(ExecEngine engine);
[[nodiscard]] std::string_view to_string(Transform transform);
/// True for transforms with an unfolding-factor dimension (f > 1 meaningful).
[[nodiscard]] bool transform_uses_factor(Transform transform);

/// One point of the cross product.
struct SweepCell {
  std::string benchmark;  ///< name in benchmarks::all_graphs()
  Engine engine = Engine::kOptRetiming;
  ExecEngine exec = ExecEngine::kVm;
  Transform transform = Transform::kOriginal;
  int factor = 1;
  std::int64_t n = 101;
};

/// Everything measured for a cell. `feasible` is false when the
/// configuration cannot be generated (e.g. unfold-then-retime with
/// n/f ≤ M'_r, or an engine that found no schedule); `error` carries the
/// exception text when evaluation threw. `skipped` is true for feasible
/// cells whose execution engine is unavailable on this host (e.g.
/// exec=native without a working C compiler) — the diagnostic lands in
/// `skip_reason` and the sweep carries on.
struct SweepResult {
  SweepCell cell;
  bool feasible = true;
  std::string error;
  bool skipped = false;     ///< execution engine unavailable; see skip_reason
  std::string skip_reason;  ///< toolchain diagnostic for skipped cells
  std::string iteration_bound;  ///< "-" for acyclic graphs
  Rational period;              ///< iteration period of the cell's form
  int depth = 0;                ///< pipeline depth M_r
  std::int64_t registers = 0;   ///< conditional registers
  std::int64_t code_size = 0;   ///< generated program's instruction count
  std::int64_t predicted_size = -1;  ///< closed-form model; -1 = no formula
  bool verified = false;             ///< equivalent to the original loop
  bool discipline_ok = false;        ///< write-discipline check passed
  /// Statements the cell's engine executed while verifying (0 unverified).
  std::int64_t exec_statements = 0;
  /// Wall time of that execution (engine run only; excludes the expected-
  /// state run and, for native, compilation). Non-deterministic — exported
  /// only when JsonOptions::include_timing is set.
  double exec_seconds = 0.0;
};

struct SweepOptions {
  unsigned threads = 1;  ///< 0 = one per hardware thread
  bool verify = true;    ///< run VM equivalence + write discipline per cell
  /// Resource model for the resource-constrained engines.
  ResourceModel machine = ResourceModel::adders_and_multipliers(2, 2);
};

/// The declarative grid. cells() enumerates the product in deterministic
/// grid order: benchmark → n → engine → execution engine → factor-less
/// transforms (in list order) → factor × factor-full transforms — matching
/// the row order of the paper's tables and of csr_results.csv (whose layout
/// is preserved by the single-element exec_engines default).
struct SweepGrid {
  std::vector<std::string> benchmarks;
  std::vector<std::int64_t> trip_counts = {101};
  std::vector<Engine> engines = {Engine::kOptRetiming};
  std::vector<ExecEngine> exec_engines = {ExecEngine::kVm};
  std::vector<Transform> transforms = {
      Transform::kOriginal,           Transform::kRetimed,
      Transform::kRetimedCsr,         Transform::kRetimedUnfolded,
      Transform::kRetimedUnfoldedCsr, Transform::kUnfoldedRetimed,
      Transform::kUnfoldedRetimedCsr,
  };
  std::vector<int> factors = {2, 3, 4};

  [[nodiscard]] std::vector<SweepCell> cells() const;
};

/// Evaluates one cell: build the graph, run the engine, generate the
/// program, measure and (optionally) verify. Never throws — failures land
/// in SweepResult::error.
[[nodiscard]] SweepResult evaluate_cell(const SweepCell& cell,
                                        const SweepOptions& options);

/// Evaluates every cell of the grid on `options.threads` workers. Results
/// are in cells() order regardless of thread count.
[[nodiscard]] std::vector<SweepResult> run_sweep(const SweepGrid& grid,
                                                 const SweepOptions& options = {});

}  // namespace csr::driver
