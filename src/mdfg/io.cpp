#include "mdfg/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/text.hpp"

namespace csr {

void write_text(std::ostream& os, const MdDataFlowGraph& g) {
  os << "mdfg " << (g.name().empty() ? "unnamed" : g.name()) << '\n';
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "node " << g.node(v).name << ' ' << g.node(v).time << '\n';
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const MdEdge& edge = g.edge(e);
    os << "edge " << g.node(edge.from).name << ' ' << g.node(edge.to).name << ' '
       << edge.delay.row << ' ' << edge.delay.col << '\n';
  }
}

std::string to_text(const MdDataFlowGraph& g) {
  std::ostringstream os;
  write_text(os, g);
  return os.str();
}

namespace {

[[noreturn]] void parse_fail(int line, const std::string& message) {
  std::ostringstream os;
  os << "line " << line << ": " << message;
  throw ParseError(os.str());
}

int parse_int(const std::string& token, int line) {
  try {
    std::size_t pos = 0;
    const int value = std::stoi(token, &pos);
    if (pos != token.size()) parse_fail(line, "trailing characters in integer '" + token + "'");
    return value;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    parse_fail(line, "expected integer, got '" + token + "'");
  }
}

}  // namespace

MdDataFlowGraph read_md_text(std::istream& is) {
  MdDataFlowGraph g;
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const auto tokens = split_ws(stripped);
    const std::string& kind = tokens.front();
    if (kind == "mdfg") {
      if (saw_header) parse_fail(line_no, "duplicate 'mdfg' header");
      if (tokens.size() != 2) parse_fail(line_no, "expected: mdfg <name>");
      g.set_name(tokens[1]);
      saw_header = true;
    } else if (kind == "node") {
      if (tokens.size() != 3) parse_fail(line_no, "expected: node <name> <time>");
      g.add_node(tokens[1], parse_int(tokens[2], line_no));
    } else if (kind == "edge") {
      if (tokens.size() != 5) {
        parse_fail(line_no, "expected: edge <from> <to> <d_row> <d_col>");
      }
      const auto from = g.find_node(tokens[1]);
      const auto to = g.find_node(tokens[2]);
      if (!from) parse_fail(line_no, "unknown node '" + tokens[1] + "'");
      if (!to) parse_fail(line_no, "unknown node '" + tokens[2] + "'");
      g.add_edge(*from, *to,
                 MdDelay{parse_int(tokens[3], line_no), parse_int(tokens[4], line_no)});
    } else {
      parse_fail(line_no, "unknown directive '" + kind + "'");
    }
  }
  if (!saw_header) throw ParseError("missing 'mdfg <name>' header");
  return g;
}

MdDataFlowGraph parse_md_text(const std::string& text) {
  std::istringstream is(text);
  return read_md_text(is);
}

}  // namespace csr
