#pragma once

/// \file io.hpp
/// The textual exchange format for multidimensional data-flow graphs,
/// mirroring dfg/io.hpp with a vector-delay edge directive:
///
///     # comment
///     mdfg <name>
///     node <name> <time>
///     edge <from> <to> <d_row> <d_col>
///
/// Nodes must be declared before the edges that use them; d_col may be
/// negative when d_row ≥ 1 (lexicographic legality). The `mdfg` header
/// keeps the two formats unambiguous — a .mdfg file can never parse as a
/// 1-D .dfg file or vice versa.

#include <iosfwd>
#include <string>

#include "mdfg/graph.hpp"

namespace csr {

/// Serializes `g` in the text format above.
[[nodiscard]] std::string to_text(const MdDataFlowGraph& g);
void write_text(std::ostream& os, const MdDataFlowGraph& g);

/// Parses the text format. Throws ParseError with a line number on
/// malformed input and InvalidArgument for structurally illegal graphs
/// (through the MdDataFlowGraph builders).
[[nodiscard]] MdDataFlowGraph parse_md_text(const std::string& text);
[[nodiscard]] MdDataFlowGraph read_md_text(std::istream& is);

}  // namespace csr
