#include "mdfg/random.hpp"

#include <string>

#include "support/check.hpp"

namespace csr::mdfg {

namespace {

/// A delay vector for a row-carried edge: row ≥ 1, col ∈ [−max, max].
MdDelay row_carried(SplitMix64& rng, int max_delay) {
  return MdDelay{static_cast<int>(rng.uniform(1, max_delay)),
                 static_cast<int>(rng.uniform(-max_delay, max_delay))};
}

/// A lex-non-negative delay for a forward edge.
MdDelay forward_delay(SplitMix64& rng, const RandomMdfgOptions& options) {
  if (rng.bernoulli(options.zero_delay_prob)) return MdDelay{0, 0};
  if (rng.bernoulli(options.row_carried_prob)) {
    return row_carried(rng, options.max_delay);
  }
  return MdDelay{0, static_cast<int>(rng.uniform(1, options.max_delay))};
}

}  // namespace

MdDataFlowGraph random_mdfg(SplitMix64& rng, const RandomMdfgOptions& options) {
  CSR_REQUIRE(options.min_nodes >= 2, "random MDFG needs at least 2 nodes");
  CSR_REQUIRE(options.min_nodes <= options.max_nodes, "min_nodes > max_nodes");
  CSR_REQUIRE(options.max_delay >= 1, "max_delay must be >= 1");
  CSR_REQUIRE(options.max_time >= 1, "max_time must be >= 1");

  const std::size_t n = static_cast<std::size_t>(
      rng.uniform(static_cast<std::int64_t>(options.min_nodes),
                  static_cast<std::int64_t>(options.max_nodes)));
  MdDataFlowGraph g("random2d");
  for (std::size_t i = 0; i < n; ++i) {
    g.add_node("V" + std::to_string(i),
               static_cast<int>(rng.uniform(1, options.max_time)));
  }

  bool has_back_edge = false;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      if (u < v && rng.bernoulli(options.forward_edge_prob)) {
        g.add_edge(u, v, forward_delay(rng, options));
      } else if (u > v && rng.bernoulli(options.backward_edge_prob)) {
        // Backward edges are always row-carried so every cycle has total
        // row delay ≥ 1 — the full-parallelism guarantee the property
        // tests rely on.
        g.add_edge(u, v, row_carried(rng, options.max_delay));
        has_back_edge = true;
      }
    }
  }

  if (options.ensure_connected) {
    for (NodeId v = 0; v + 1 < n; ++v) {
      if (g.out_edges(v).empty() && g.in_edges(v).empty()) {
        g.add_edge(v, v + 1, forward_delay(rng, options));
      }
    }
  }

  if (options.ensure_cyclic && !has_back_edge) {
    // Close a row-carried cycle over the first/last nodes.
    g.add_edge(static_cast<NodeId>(n - 1), 0, row_carried(rng, options.max_delay));
  }

  CSR_ENSURE(g.is_legal(), "random generator produced an illegal MDFG");
  return g;
}

}  // namespace csr::mdfg
