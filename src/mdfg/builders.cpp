#include "mdfg/builders.hpp"

#include "support/check.hpp"

namespace csr::mdfg {

MdDataFlowGraph conv3x3() {
  MdDataFlowGraph g("conv3x3");
  // Row-recursive source: the scan line being filtered depends on the
  // previous line (e.g. a separable pre-pass), which makes the graph cyclic
  // without constraining the inner loop.
  const NodeId src = g.add_node("SRC");
  g.add_edge(src, src, 1, 0);
  // Nine taps y(r,c) = Σ w_ij · x(r−i, c−j): src→M_ij with delay (i,j).
  NodeId m[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      m[i][j] = g.add_node("M" + std::to_string(i) + std::to_string(j));
      g.add_edge(src, m[i][j], i, j);
    }
  }
  // Balanced 8-adder accumulation tree.
  const NodeId s1 = g.add_node("S1");
  g.add_edge(m[0][0], s1, 0, 0);
  g.add_edge(m[0][1], s1, 0, 0);
  const NodeId s2 = g.add_node("S2");
  g.add_edge(m[0][2], s2, 0, 0);
  g.add_edge(m[1][0], s2, 0, 0);
  const NodeId s3 = g.add_node("S3");
  g.add_edge(m[1][1], s3, 0, 0);
  g.add_edge(m[1][2], s3, 0, 0);
  const NodeId s4 = g.add_node("S4");
  g.add_edge(m[2][0], s4, 0, 0);
  g.add_edge(m[2][1], s4, 0, 0);
  const NodeId t1 = g.add_node("T1");
  g.add_edge(s1, t1, 0, 0);
  g.add_edge(s2, t1, 0, 0);
  const NodeId t2 = g.add_node("T2");
  g.add_edge(s3, t2, 0, 0);
  g.add_edge(s4, t2, 0, 0);
  const NodeId t3 = g.add_node("T3");
  g.add_edge(t1, t3, 0, 0);
  g.add_edge(t2, t3, 0, 0);
  const NodeId y = g.add_node("Y");
  g.add_edge(t3, y, 0, 0);
  g.add_edge(m[2][2], y, 0, 0);
  CSR_ENSURE(g.node_count() == 18, "conv3x3 must have 18 nodes");
  CSR_ENSURE(g.is_legal(), "conv3x3 must be legal");
  return g;
}

MdDataFlowGraph jacobi5() {
  MdDataFlowGraph g("jacobi5");
  // u(t,x) = c1·(u(t−1,x−1) + u(t−1,x)) + c2·(u(t−1,x+1) + u(t−2,x)),
  // row = sweep t, col = site x. The (1,−1) tap reads the *next* site of
  // the previous sweep — lexicographically legal because the whole previous
  // row is finished before row t starts.
  const NodeId u = g.add_node("U");
  const NodeId a1 = g.add_node("A1");
  g.add_edge(u, a1, 1, 1);
  g.add_edge(u, a1, 1, 0);
  const NodeId a2 = g.add_node("A2");
  g.add_edge(u, a2, 1, -1);
  g.add_edge(u, a2, 2, 0);
  const NodeId m1 = g.add_node("M1");
  g.add_edge(a1, m1, 0, 0);
  const NodeId m2 = g.add_node("M2");
  g.add_edge(a2, m2, 0, 0);
  g.add_edge(m1, u, 0, 0);
  g.add_edge(m2, u, 0, 0);
  // Smoothed output tap o(t,x) = u(t,x) + u(t,x−1).
  const NodeId o = g.add_node("O");
  g.add_edge(u, o, 0, 0);
  g.add_edge(u, o, 0, 1);
  CSR_ENSURE(g.node_count() == 6, "jacobi5 must have 6 nodes");
  CSR_ENSURE(g.is_legal(), "jacobi5 must be legal");
  return g;
}

MdDataFlowGraph iir2d() {
  MdDataFlowGraph g("iir2d");
  // y(r,c) = (x(r,c) + cx·x(r,c−1))
  //        + b01·y(r,c−1) + b10·y(r−1,c) + b11·y(r−1,c−1),
  // with a frame-recursive input x. The y→M01→A1→y cycle carries one
  // column delay over three unit-time nodes: inner period ≥ 3, full
  // parallelism impossible.
  const NodeId x = g.add_node("X");
  g.add_edge(x, x, 1, 0);
  const NodeId mx = g.add_node("MX");
  g.add_edge(x, mx, 0, 1);
  const NodeId a0 = g.add_node("A0");
  g.add_edge(x, a0, 0, 0);
  g.add_edge(mx, a0, 0, 0);
  const NodeId y = g.add_node("Y");
  const NodeId m01 = g.add_node("M01");
  g.add_edge(y, m01, 0, 1);
  const NodeId m10 = g.add_node("M10");
  g.add_edge(y, m10, 1, 0);
  const NodeId m11 = g.add_node("M11");
  g.add_edge(y, m11, 1, 1);
  const NodeId a1 = g.add_node("A1");
  g.add_edge(a0, a1, 0, 0);
  g.add_edge(m01, a1, 0, 0);
  const NodeId a2 = g.add_node("A2");
  g.add_edge(m10, a2, 0, 0);
  g.add_edge(m11, a2, 0, 0);
  g.add_edge(a1, y, 0, 0);
  g.add_edge(a2, y, 0, 0);
  CSR_ENSURE(g.node_count() == 9, "iir2d must have 9 nodes");
  CSR_ENSURE(g.is_legal(), "iir2d must be legal");
  return g;
}

MdDataFlowGraph tline2d() {
  MdDataFlowGraph g("tline2d");
  // Discretized transmission line (row = time step, col = line section).
  // Forward wave f(r,c) = s(r,c) + α·f(r,c−2): a zero-row cycle with *two*
  // columns of delay over two edges — retiming moves one delay onto
  // MF→F and the cycle becomes fully parallel. Backward wave reflects off
  // the previous time step.
  const NodeId s = g.add_node("S");
  g.add_edge(s, s, 1, 0);
  const NodeId mf = g.add_node("MF");
  const NodeId f = g.add_node("F");
  g.add_edge(f, mf, 0, 2);
  g.add_edge(mf, f, 0, 0);
  g.add_edge(s, f, 0, 0);
  const NodeId mb = g.add_node("MB");
  g.add_edge(f, mb, 1, 0);
  const NodeId b = g.add_node("B");
  g.add_edge(mb, b, 0, 0);
  g.add_edge(b, b, 1, 1);
  const NodeId v = g.add_node("V");
  g.add_edge(f, v, 0, 0);
  g.add_edge(b, v, 0, 1);
  CSR_ENSURE(g.node_count() == 6, "tline2d must have 6 nodes");
  CSR_ENSURE(g.is_legal(), "tline2d must be legal");
  return g;
}

const std::vector<MdBenchmarkInfo>& md_benchmarks() {
  static const std::vector<MdBenchmarkInfo> graphs = {
      {"conv3x3", conv3x3},
      {"jacobi5", jacobi5},
      {"iir2d", iir2d},
      {"tline2d", tline2d},
  };
  return graphs;
}

const MdBenchmarkInfo* find_md_benchmark(std::string_view name) {
  for (const MdBenchmarkInfo& info : md_benchmarks()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

}  // namespace csr::mdfg
