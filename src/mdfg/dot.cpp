#include "mdfg/dot.hpp"

#include <ostream>
#include <sstream>

#include "support/text.hpp"

namespace csr {

void write_dot(std::ostream& os, const MdDataFlowGraph& g) {
  os << "digraph \"" << dot_escape(g.name().empty() ? "mdfg" : g.name()) << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const Node& n = g.node(v);
    os << "  n" << v << " [label=\"" << dot_escape(n.name);
    if (n.time != 1) os << "\\nt=" << n.time;
    os << "\"];\n";
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const MdEdge& edge = g.edge(e);
    os << "  n" << edge.from << " -> n" << edge.to;
    if (!(edge.delay == MdDelay{0, 0})) {
      os << " [label=\"(" << edge.delay.row << ',' << edge.delay.col << ")D\"]";
    }
    os << ";\n";
  }
  os << "}\n";
}

std::string to_dot(const MdDataFlowGraph& g) {
  std::ostringstream os;
  write_dot(os, g);
  return os.str();
}

}  // namespace csr
