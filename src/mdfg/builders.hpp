#pragma once

/// \file builders.hpp
/// The nested-loop (2-D) benchmark family: multidimensional data-flow
/// graphs for classic image/stencil/2-D-filter kernels, built from their
/// textbook signal-flow structure the same way src/benchmarks/ builds the
/// paper's 1-D DSP filters. Node names follow the same HLS convention the
/// resource model uses ('M*' multipliers, everything else adders); all
/// graphs are unit-time.
///
/// The family is chosen to cover the interesting legality/parallelism
/// regimes of multidimensional retiming (retiming/md_retiming.hpp):
///   * conv3x3  — feed-forward with row-carried input recursion: fully
///     parallelizable (period 1);
///   * jacobi5  — all feedback row-carried, including negative column
///     components (reads from earlier rows): fully parallelizable;
///   * iir2d    — a genuine inner-loop (0,1) recursion: full parallelism is
///     provably impossible, the engine certifies the minimum period instead;
///   * tline2d  — an inner-loop recursion with two columns of slack whose
///     zero-row cycle *can* be fully parallelized by redistributing the
///     column delays.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "mdfg/graph.hpp"

namespace csr::mdfg {

/// 3×3 convolution (image filter) — 18 nodes. A row-recursive source
/// feeding nine taps src→M_ij with delay (i,j), summed by an 8-adder tree.
/// Every cycle is row-carried, so retiming reaches period 1.
[[nodiscard]] MdDataFlowGraph conv3x3();

/// Jacobi / 5-point stencil, time-marching form (row = sweep, col = site) —
/// 6 nodes. State updates from (1,1),(1,0),(1,−1),(2,0) taps — note the
/// negative column component, a read from the already-computed previous
/// row — plus a (0,1) output smoothing tap. Fully parallelizable.
[[nodiscard]] MdDataFlowGraph jacobi5();

/// First-quadrant 2-D IIR section — 9 nodes. Feedback taps y(r,c−1),
/// y(r−1,c), y(r−1,c−1) and an FIR input pair. The (0,1) feedback cycle
/// spans three unit-time nodes with only one column delay, so the minimum
/// achievable inner period is 3 (vs. cycle period 4 original) and full
/// parallelism is impossible — the engine proves the bound.
[[nodiscard]] MdDataFlowGraph iir2d();

/// Transmission-line section (forward/backward travelling waves) — 6
/// nodes. The forward-wave recursion carries delay (0,2) over a two-edge
/// cycle, so redistributing one column delay makes every edge lex-positive:
/// retiming achieves full parallelism on a zero-row cycle.
[[nodiscard]] MdDataFlowGraph tline2d();

struct MdBenchmarkInfo {
  std::string name;
  std::function<MdDataFlowGraph()> factory;
};

/// The nested benchmark family, in the order above.
[[nodiscard]] const std::vector<MdBenchmarkInfo>& md_benchmarks();

/// Registry lookup; nullptr for unknown names. The sweep driver uses this
/// to route nested benchmark names through the 2-D prepare path.
[[nodiscard]] const MdBenchmarkInfo* find_md_benchmark(std::string_view name);

}  // namespace csr::mdfg
