#pragma once

/// \file random.hpp
/// Random legal MDFG generation for property-based tests, mirroring
/// dfg/random.hpp. Legality is guaranteed by construction: forward edges
/// (in a random topological order) carry lex-non-negative vectors, while
/// backward edges always carry row delay ≥ 1 — so every cycle is
/// row-carried, which also guarantees (retiming/md_retiming.hpp) that full
/// parallelism is achievable on every generated graph. Row-carried edges
/// may carry *negative* column components, exercising the lexicographic
/// corner of the legality checker.

#include "mdfg/graph.hpp"
#include "support/rng.hpp"

namespace csr::mdfg {

struct RandomMdfgOptions {
  std::size_t min_nodes = 3;
  std::size_t max_nodes = 10;
  /// Probability of each forward pair (u before v) receiving an edge.
  double forward_edge_prob = 0.3;
  /// Probability of each backward pair receiving a (row-delayed) edge.
  double backward_edge_prob = 0.15;
  /// Maximum magnitude of either delay component.
  int max_delay = 2;
  /// Probability that a forward edge carries delay (0,0).
  double zero_delay_prob = 0.6;
  /// Probability that a delayed edge is row-carried (vs. column-carried);
  /// row-carried delays draw their column component from
  /// [−max_delay, max_delay].
  double row_carried_prob = 0.5;
  /// Maximum node computation time (1 = unit-time graphs).
  int max_time = 1;
  /// Ensure the result contains at least one (row-carried) cycle.
  bool ensure_cyclic = true;
  /// Ensure weak connectivity by chaining consecutive nodes when needed.
  bool ensure_connected = true;
};

/// Generates a random legal MDFG. Node names are V0, V1, ...
[[nodiscard]] MdDataFlowGraph random_mdfg(SplitMix64& rng,
                                          const RandomMdfgOptions& options = {});

}  // namespace csr::mdfg
