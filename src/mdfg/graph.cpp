#include "mdfg/graph.hpp"

#include <algorithm>
#include <numeric>

#include "dfg/algorithms.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

NodeId MdDataFlowGraph::add_node(std::string name, int time) {
  CSR_REQUIRE(!name.empty(), "node name must be non-empty");
  CSR_REQUIRE(time >= 1, "node computation time must be >= 1");
  CSR_REQUIRE(!find_node(name).has_value(), "duplicate node name: " + name);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), time});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

EdgeId MdDataFlowGraph::add_edge(NodeId from, NodeId to, MdDelay delay) {
  CSR_REQUIRE(from < nodes_.size(), "edge source out of range");
  CSR_REQUIRE(to < nodes_.size(), "edge target out of range");
  CSR_REQUIRE(lex_nonneg(delay), "edge delay vector must be lexicographically >= (0,0)");
  CSR_REQUIRE(from != to || lex_positive(delay),
              "self-loop requires a lexicographically positive delay");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(MdEdge{from, to, delay});
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

const Node& MdDataFlowGraph::node(NodeId id) const {
  CSR_EXPECT(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const MdEdge& MdDataFlowGraph::edge(EdgeId id) const {
  CSR_EXPECT(id < edges_.size(), "edge id out of range");
  return edges_[id];
}

void MdDataFlowGraph::set_delay(EdgeId e, MdDelay delay) {
  CSR_EXPECT(e < edges_.size(), "edge id out of range");
  CSR_REQUIRE(lex_nonneg(delay), "edge delay vector must be lexicographically >= (0,0)");
  edges_[e].delay = delay;
}

const std::vector<EdgeId>& MdDataFlowGraph::out_edges(NodeId v) const {
  CSR_EXPECT(v < nodes_.size(), "node id out of range");
  return out_[v];
}

const std::vector<EdgeId>& MdDataFlowGraph::in_edges(NodeId v) const {
  CSR_EXPECT(v < nodes_.size(), "node id out of range");
  return in_[v];
}

std::optional<NodeId> MdDataFlowGraph::find_node(std::string_view name) const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].name == name) return id;
  }
  return std::nullopt;
}

std::int64_t MdDataFlowGraph::total_time() const {
  return std::accumulate(nodes_.begin(), nodes_.end(), std::int64_t{0},
                         [](std::int64_t acc, const Node& n) { return acc + n.time; });
}

bool MdDataFlowGraph::unit_time() const {
  return std::all_of(nodes_.begin(), nodes_.end(),
                     [](const Node& n) { return n.time == 1; });
}

std::vector<std::string> MdDataFlowGraph::validate() const {
  std::vector<std::string> problems;
  for (const MdEdge& e : edges_) {
    if (!lex_nonneg(e.delay)) {
      problems.push_back("lexicographically negative delay on edge " +
                         nodes_[e.from].name + "->" + nodes_[e.to].name);
    }
  }
  // A cycle of all-(0,0) edges is the only way a cycle's total delay can be
  // (0,0): lex-non-negative vectors are (≥1, *) or (0, ≥0), so a mixed sum
  // is lex-positive. Detect it on the 1-D shadow graph whose zero-delay
  // edges are exactly the (0,0) edges.
  DataFlowGraph shadow(name_);
  for (const Node& n : nodes_) shadow.add_node(n.name, n.time);
  bool shadow_ok = true;
  for (const MdEdge& e : edges_) {
    if (!lex_nonneg(e.delay)) {
      shadow_ok = false;  // can't map a lex-negative vector onto d >= 0
      continue;
    }
    if (e.from == e.to && e.delay == MdDelay{0, 0}) {
      shadow_ok = false;  // the shadow graph rejects zero-delay self-loops
      problems.push_back("(0,0)-delay self-loop on node " + nodes_[e.from].name);
      continue;
    }
    shadow.add_edge(e.from, e.to, e.delay == MdDelay{0, 0} ? 0 : 1);
  }
  if (shadow_ok && has_zero_delay_cycle(shadow)) {
    problems.emplace_back("(0,0)-delay cycle (nest is not schedulable)");
  }
  return problems;
}

std::vector<NodeId> MdDataFlowGraph::node_ids() const {
  std::vector<NodeId> ids(nodes_.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  return ids;
}

DataFlowGraph linearized(const MdDataFlowGraph& g, std::int64_t cols) {
  CSR_REQUIRE(cols >= 1, "linearization needs cols >= 1");
  DataFlowGraph out(g.name());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.add_node(g.node(v).name, g.node(v).time);
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const MdEdge& edge = g.edge(e);
    const std::int64_t d = edge.delay.row * cols + edge.delay.col;
    if (d < 0 || d > INT32_MAX) {
      throw InvalidArgument("linearized delay out of range on edge " +
                            g.node(edge.from).name + "->" + g.node(edge.to).name +
                            " at cols=" + std::to_string(cols));
    }
    out.add_edge(edge.from, edge.to, static_cast<int>(d));
  }
  return out;
}

}  // namespace csr
