#pragma once

/// \file graph.hpp
/// The multidimensional data-flow graph (MDFG) of the vector-delay retiming
/// literature (Passos–Sha; Elloumi et al., PAPERS.md): G = <V, E, d, t>
/// where every edge carries a two-component *delay vector*
/// d(e) = (d_row, d_col). An edge u→v with delay (i, j) means iteration
/// (r, c) of v consumes the value produced by iteration (r−i, c−j) of u —
/// the uniform dependence distances of a two-level perfect loop nest
/// (row = outer loop, col = inner loop).
///
/// Legality is *lexicographic*: every delay vector must be ≥ (0,0) in
/// lexicographic order — d_row ≥ 1 (the dependence is carried by the outer
/// loop; the column component may then be negative, a read from an earlier,
/// fully computed row), or d_row = 0 ∧ d_col ≥ 0 (carried by the inner loop
/// or intra-iteration). Row-major execution respects exactly these
/// dependences, which is what lets the nested lowering (codegen/nested.hpp)
/// reuse the 1-D LoopIR unchanged. A cycle of all-(0,0) edges is
/// unschedulable, same as a zero-delay cycle in the 1-D model.
///
/// Like DataFlowGraph this is a plain value type: multidimensional retiming
/// is a transformation producing new graphs.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace csr {

/// A 2-D delay vector (d_row, d_col) — the dependence distance of an edge.
struct MdDelay {
  int row = 0;
  int col = 0;

  friend bool operator==(const MdDelay&, const MdDelay&) = default;
};

/// d ≥ (0,0) lexicographically: row ≥ 1, or row = 0 ∧ col ≥ 0.
[[nodiscard]] constexpr bool lex_nonneg(const MdDelay& d) {
  return d.row > 0 || (d.row == 0 && d.col >= 0);
}

/// d > (0,0) lexicographically: row ≥ 1, or row = 0 ∧ col ≥ 1. An edge with
/// a lex-positive delay imposes no intra-iteration ordering — when *every*
/// edge is lex-positive the nest is fully parallel (period 1 on unit-time
/// graphs).
[[nodiscard]] constexpr bool lex_positive(const MdDelay& d) {
  return d.row > 0 || (d.row == 0 && d.col > 0);
}

/// A dependence edge u→v with delay vector d(e).
struct MdEdge {
  NodeId from = 0;
  NodeId to = 0;
  MdDelay delay;
};

class MdDataFlowGraph {
 public:
  MdDataFlowGraph() = default;
  explicit MdDataFlowGraph(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a node with computation time `time` (≥ 1). Node names must be
  /// unique and non-empty: they become array names in lowered loop code.
  NodeId add_node(std::string name, int time = 1);

  /// Adds an edge u→v with a lex-non-negative delay vector. Self-loops
  /// require a lex-positive delay (a (0,0) self-loop could never be
  /// scheduled).
  EdgeId add_edge(NodeId from, NodeId to, MdDelay delay);
  EdgeId add_edge(NodeId from, NodeId to, int row, int col) {
    return add_edge(from, to, MdDelay{row, col});
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const MdEdge& edge(EdgeId id) const;

  /// Replaces the delay vector of `e`; used by retiming application.
  void set_delay(EdgeId e, MdDelay delay);

  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId v) const;
  [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId v) const;

  [[nodiscard]] std::optional<NodeId> find_node(std::string_view name) const;

  /// Σ_v t(v).
  [[nodiscard]] std::int64_t total_time() const;

  /// True when every node has unit computation time.
  [[nodiscard]] bool unit_time() const;

  /// Structural validation: named problems, empty when the graph is legal.
  /// A legal MDFG has lex-non-negative delay vectors and no cycle of
  /// all-(0,0) edges.
  [[nodiscard]] std::vector<std::string> validate() const;

  [[nodiscard]] bool is_legal() const { return validate().empty(); }

  [[nodiscard]] std::vector<NodeId> node_ids() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<MdEdge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

/// The row-major linearization of `g` at inner trip count `cols`: the 1-D
/// DFG with the same nodes and one edge per MDFG edge carrying delay
/// d_row·cols + d_col. Iterating that 1-D graph for rows·cols trips is
/// exactly the row-major execution of the 2-D nest (iteration (r,c) ↦ flat
/// index r·cols + c), which is what the nested lowering and the sweep
/// verifier run. Throws InvalidArgument when some linearized delay is
/// negative — i.e. when `cols` is too small for a row-carried edge's
/// negative column component.
[[nodiscard]] DataFlowGraph linearized(const MdDataFlowGraph& g, std::int64_t cols);

}  // namespace csr
