#pragma once

/// \file dot.hpp
/// Graphviz DOT rendering of multidimensional data-flow graphs. Delay
/// vectors are drawn as "(r,c)D" edge labels; non-unit computation times
/// are appended to the node label. Labels go through support's dot_escape
/// so arbitrary node names always produce parseable DOT (shared with the
/// 1-D exporter in dfg/dot.cpp).

#include <iosfwd>
#include <string>

#include "mdfg/graph.hpp"

namespace csr {

/// Writes `g` to `os` in DOT syntax.
void write_dot(std::ostream& os, const MdDataFlowGraph& g);

/// DOT text for `g`.
[[nodiscard]] std::string to_dot(const MdDataFlowGraph& g);

}  // namespace csr
