#include "serve/coalesce.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "observe/observe.hpp"

namespace csr::serve {

namespace {

struct CoalesceMetrics {
  observe::Counter& batches;
  observe::Counter& lanes;
  observe::Counter& cross_request;
  observe::Counter& failed;

  static CoalesceMetrics& get() {
    static CoalesceMetrics metrics = [] {
      auto& reg = observe::MetricsRegistry::global();
      return CoalesceMetrics{
          reg.counter("csr_serve_coalesce_batches_total",
                      "Cross-request batch kernel runs"),
          reg.counter("csr_serve_coalesce_lanes_total",
                      "Cells verified through cross-request batches"),
          reg.counter("csr_serve_coalesce_cross_request_total",
                      "Batches mixing lanes of distinct requests"),
          reg.counter("csr_serve_coalesce_failed_total",
                      "Batches degraded to per-lane verification"),
      };
    }();
    return metrics;
  }
};

}  // namespace

CellCoalescer::CellCoalescer(std::size_t max_lanes,
                             std::function<void()> batch_hook)
    : max_lanes_(std::max<std::size_t>(2, max_lanes)),
      batch_hook_(std::move(batch_hook)),
      runner_([this] { runner_loop(); }) {}

CellCoalescer::~CellCoalescer() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  runner_cv_.notify_all();
  if (runner_.joinable()) runner_.join();
}

void CellCoalescer::execute(const std::vector<driver::PreparedCell*>& lanes,
                            const driver::SweepOptions& options) {
  if (lanes.empty()) return;
  Submission submission;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    submission.remaining = lanes.size();
    for (driver::PreparedCell* cell : lanes) {
      buckets_[driver::prepared_batch_key(*cell)].push_back(
          Lane{cell, &submission, &options});
    }
  }
  runner_cv_.notify_one();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return submission.remaining == 0; });
}

std::size_t CellCoalescer::pending_lanes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t lanes = 0;
  for (const auto& [key, bucket] : buckets_) lanes += bucket.size();
  return lanes;
}

void CellCoalescer::runner_loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      runner_cv_.wait(lock, [&] { return stopping_ || !buckets_.empty(); });
      if (buckets_.empty()) {
        if (stopping_) return;
        continue;
      }
    }

    // The hook runs between the wake and the collection, outside the lock,
    // so a test hook can hold the runner without stalling submitters —
    // arrivals during the hook land in the buckets and join the batch
    // collected right after it returns. It must run HERE (not at loop top):
    // the wake may race a multi-lane staging, and collecting before the
    // hook would split the staged lanes into partial batches.
    if (batch_hook_) batch_hook_();

    std::vector<Lane> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (buckets_.empty()) continue;
      // Deepest bucket first: the fullest batch amortizes best, and a
      // steady mixed load still drains every key because executed lanes
      // leave their bucket.
      auto deepest = buckets_.begin();
      for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
        if (it->second.size() > deepest->second.size()) deepest = it;
      }
      std::deque<Lane>& bucket = deepest->second;
      const std::size_t take = std::min(max_lanes_, bucket.size());
      batch.assign(bucket.begin(), bucket.begin() + static_cast<std::ptrdiff_t>(take));
      bucket.erase(bucket.begin(), bucket.begin() + static_cast<std::ptrdiff_t>(take));
      if (bucket.empty()) buckets_.erase(deepest);
    }

    run_batch(batch);

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (const Lane& lane : batch) --lane.submission->remaining;
    }
    done_cv_.notify_all();
  }
}

void CellCoalescer::run_batch(const std::vector<Lane>& batch) {
  CoalesceMetrics& metrics = CoalesceMetrics::get();
  observe::Span span("serve", "coalesce_batch");
  span.arg("lanes", static_cast<std::uint64_t>(batch.size()));

  std::set<const Submission*> requests;
  for (const Lane& lane : batch) requests.insert(lane.submission);
  const bool cross = requests.size() > 1;
  span.arg("requests", static_cast<std::uint64_t>(requests.size()));

  bool ok = false;
  if (batch.size() == 1) {
    // A lone lane gains nothing from the batch ABI; the single-cell path
    // shares its compile cache with offline sweeps.
    driver::verify_cell(*batch.front().cell, *batch.front().options);
    ok = true;
  } else {
    // The batch runs under the tightest participating deadline: no lane may
    // hold the kernel alive past its own request's budget. Lanes with more
    // budget re-verify individually if the tight deadline kills the batch.
    driver::SweepOptions options = *batch.front().options;
    double deadline = 0;
    for (const Lane& lane : batch) {
      const double d = lane.options->retry.compile_deadline;
      if (d > 0) deadline = deadline > 0 ? std::min(deadline, d) : d;
    }
    options.retry.compile_deadline = deadline;

    std::vector<driver::PreparedCell*> cells;
    cells.reserve(batch.size());
    for (const Lane& lane : batch) cells.push_back(lane.cell);
    ok = driver::execute_prepared_batch(cells, options);
    if (!ok) {
      failed_batches_.fetch_add(1, std::memory_order_relaxed);
      metrics.failed.increment();
      for (const Lane& lane : batch) {
        driver::verify_cell(*lane.cell, *lane.options);
      }
    }
  }

  batches_run_.fetch_add(1, std::memory_order_relaxed);
  lanes_run_.fetch_add(batch.size(), std::memory_order_relaxed);
  metrics.batches.increment();
  metrics.lanes.increment(batch.size());
  if (cross) {
    cross_request_batches_.fetch_add(1, std::memory_order_relaxed);
    metrics.cross_request.increment();
  }
  span.arg("ok", ok);
}

}  // namespace csr::serve
