#pragma once

/// \file service.hpp
/// The query service behind the HTTP endpoints: request body → SweepConfig →
/// cached / coalesced / deadline-bounded execution → export bytes. This
/// layer is socket-free (the server in server.hpp is a thin transport over
/// it), which is what lets the cache, single-flight and deadline semantics
/// be tested in-process without a port.
///
/// The serving pipeline per query (docs/SERVING.md):
///
///   1. **Parse + validate** the JSON body onto driver::SweepConfig. Syntax
///      errors are 400; semantically invalid fields (unknown engine names,
///      non-positive factors, too many cells) are 422.
///   2. **Cell cache.** Every cell of the request grid is looked up in the
///      sharded LRU (cache.hpp) under its driver::journal_key — the *same*
///      content hash the persistent journal uses, via the one shared helper
///      in support/hash.hpp, so online and offline results can never alias
///      differently. Hits are journal payloads replayed through
///      from_journal_payload, exactly like a warm offline re-run.
///   3. **Single flight.** Cache-missing work runs under a request-level
///      content key; concurrent identical queries share one computation
///      (single_flight.hpp).
///   4. **Deadline.** A request deadline (deadline_ms) bounds the compute:
///      expired before execution → 504; otherwise the remaining budget is
///      propagated into the existing RetryPolicy's compile deadline so a
///      native-engine cell cannot out-live its request.
///   5. **Persist + render.** Executed cells are appended to the journal
///      (when configured) and inserted into the cache; the full result
///      vector — in deterministic grid order — is rendered through the
///      shared exporters, so a served body is byte-identical to the offline
///      `run_sweep` export for the same cells.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "driver/config.hpp"
#include "driver/export.hpp"
#include "serve/cache.hpp"
#include "serve/single_flight.hpp"
#include "support/journal.hpp"

namespace csr::serve {

struct ServiceOptions {
  /// Persistent journal: warm-starts the cache at boot and absorbs every
  /// newly executed cell. Empty = in-memory cache only.
  std::string journal_path;
  std::size_t cache_capacity = 1 << 16;  ///< total cached cells
  std::size_t cache_shards = 16;
  /// Ceiling on cells() per request — admission control against a single
  /// query that expands to a galaxy-sized grid.
  std::size_t max_cells_per_request = 4096;

  /// Execution knobs applied to every query (the request body controls the
  /// grid axes and `verify`; the machine model and thread budget are
  /// operator policy, not caller policy).
  unsigned sweep_threads = 0;  ///< 0 = one per hardware thread
  /// Lanes per batched kernel invocation (SweepOptions::batch_width).
  /// Results are byte-identical at any width, so this is pure operator
  /// throughput policy — it never enters journal or cache keys.
  std::size_t sweep_batch_width = 1;
  driver::RetryPolicy retry;
  ResourceModel machine = ResourceModel::adders_and_multipliers(2, 2);

  /// Test hook: runs inside the single-flight leader's computation, before
  /// the sweep. The hammer and drain tests use it to hold a computation
  /// open deterministically. Never set in production.
  std::function<void()> compute_hook;
};

/// One parsed query.
struct Query {
  driver::SweepConfig config;
  driver::ExportFormat format = driver::ExportFormat::kJson;
  double deadline_seconds = 0;  ///< 0 = none
};

/// Outcome of one query execution, transport-agnostic: the server maps
/// `status` onto the HTTP response line.
struct QueryResult {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::string error;         ///< non-empty iff status != 200
  std::size_t cells = 0;     ///< grid size of the request
  std::size_t cache_hits = 0;  ///< cells served from the LRU
  bool coalesced = false;    ///< result shared from a concurrent identical query
};

/// Parses a /v1/sweep JSON body. Returns the query or a 400/422 QueryResult
/// explaining the rejection.
[[nodiscard]] std::optional<Query> parse_query(const std::string& body,
                                               QueryResult* rejection);

class SweepService {
 public:
  explicit SweepService(ServiceOptions options);

  /// Executes one parsed query through cache + single-flight + driver.
  [[nodiscard]] QueryResult execute(const Query& query);

  /// Convenience: parse_query + execute.
  [[nodiscard]] QueryResult handle(const std::string& body);

  // --- introspection (tests, /healthz, stats) ------------------------------
  /// Underlying run_sweep invocations so far — the single-flight hammer
  /// test's "exactly one sweep per unique key" is asserted against this.
  [[nodiscard]] std::uint64_t sweeps_executed() const {
    return sweeps_executed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t cached_cells() const { return cache_.size(); }
  [[nodiscard]] std::size_t warm_started_cells() const { return warm_started_; }
  /// Queries currently blocked on another query's computation.
  [[nodiscard]] std::size_t inflight_waiters() const { return flights_.waiters(); }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  /// The driver options a query runs under: the operator's execution policy
  /// plus the caller's `verify` flag — exactly the fields journal_key hashes.
  [[nodiscard]] driver::SweepOptions sweep_options(const Query& query) const;

  QueryResult compute(const Query& query, const std::vector<driver::SweepCell>& cells,
                      std::chrono::steady_clock::time_point start);

  ServiceOptions options_;
  ShardedLruCache cache_;
  SingleFlight<QueryResult> flights_;
  ResultJournal journal_;
  bool journaled_ = false;
  std::size_t warm_started_ = 0;
  std::atomic<std::uint64_t> sweeps_executed_{0};
};

}  // namespace csr::serve
