#pragma once

/// \file service.hpp
/// The query service behind the HTTP endpoints: request body → SweepConfig →
/// cached / coalesced / deadline-bounded execution → export bytes. This
/// layer is socket-free (the reactor in server.hpp is a thin transport over
/// it), which is what lets the cache, single-flight, coalescing and deadline
/// semantics be tested in-process without a port.
///
/// The serving pipeline per query (docs/SERVING.md):
///
///   1. **Response memo.** A bounded LRU from exact request-body bytes to
///      rendered 200 bodies of fully-cached queries. Results are
///      deterministic and content-keyed, so a memoized body can never go
///      stale — the memo turns a warm repeated query into one hash lookup,
///      cheap enough for the reactor's event threads to serve inline
///      (try_fast).
///   2. **Parse + validate** the JSON body onto driver::SweepConfig. Syntax
///      errors are 400; semantically invalid fields (unknown engine names,
///      non-positive factors, too many cells) are 422. All rejections carry
///      the typed error envelope (errors.hpp).
///   3. **Cell cache.** Every cell of the request grid is looked up in the
///      sharded LRU (cache.hpp) under its driver::journal_key — the *same*
///      content hash the persistent journal uses, via the one shared helper
///      in support/hash.hpp, so online and offline results can never alias
///      differently. Hits are journal payloads replayed through
///      from_journal_payload, exactly like a warm offline re-run.
///   4. **Single flight.** Cache-missing work runs under a request-level
///      content key; concurrent identical queries share one computation
///      (single_flight.hpp).
///   5. **Cross-request coalescing.** The cache-missing delta, when small
///      enough, is split into prepare/verify phases; batchable prepared
///      cells join per-shape buckets shared with *other* in-flight requests
///      and execute as lanes of one batch kernel (coalesce.hpp). Large
///      deltas run through the parallel sweep scheduler instead. Either
///      way the journal keys — and therefore the cache — are identical.
///   6. **Deadline.** A request deadline (deadline_ms) bounds the compute:
///      expired before execution → 504; otherwise the remaining budget is
///      propagated into the existing RetryPolicy's compile deadline so a
///      native-engine cell cannot out-live its request.
///   7. **Persist + render.** Executed cells are appended to the journal
///      (when configured) and inserted into the cache; the full result
///      vector — in deterministic grid order — is rendered through the
///      shared exporters, so a served body is byte-identical to the offline
///      `run_sweep` export for the same cells.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driver/config.hpp"
#include "driver/export.hpp"
#include "serve/cache.hpp"
#include "serve/coalesce.hpp"
#include "serve/single_flight.hpp"
#include "support/journal.hpp"

namespace csr::serve {

class ServerConfig;  // config.hpp — the fluent builder over these options

struct ServiceOptions {
  /// Persistent journal: warm-starts the cache at boot and absorbs every
  /// newly executed cell. Empty = in-memory cache only.
  std::string journal_path;
  std::size_t cache_capacity = 1 << 16;  ///< total cached cells
  std::size_t cache_shards = 16;
  /// Rendered-response memo entries (request body → 200 body of a
  /// fully-cached query); 0 disables the memo fast path.
  std::size_t memo_capacity = 8192;
  /// Ceiling on cells() per request — admission control against a single
  /// query that expands to a galaxy-sized grid.
  std::size_t max_cells_per_request = 4096;

  /// Execution knobs applied to every query (the request body controls the
  /// grid axes and `verify`; the machine model and thread budget are
  /// operator policy, not caller policy).
  unsigned sweep_threads = 0;  ///< 0 = one per hardware thread
  /// Lanes per batched kernel invocation (SweepOptions::batch_width).
  /// Results are byte-identical at any width, so this is pure operator
  /// throughput policy — it never enters journal or cache keys.
  std::size_t sweep_batch_width = 1;
  /// Cross-request coalescing: batchable prepared cells of distinct
  /// concurrent queries share batch kernel runs. Takes effect only when
  /// sweep_batch_width > 1 (width 1 means the operator disabled batching).
  bool coalesce = true;
  /// Queries whose cache-missing delta exceeds this bypass the coalescer
  /// and run through the parallel sweep scheduler.
  std::size_t coalesce_cell_limit = 64;
  driver::RetryPolicy retry;
  ResourceModel machine = ResourceModel::adders_and_multipliers(2, 2);

  /// Test hook: runs inside the single-flight leader's computation, before
  /// the sweep. The hammer and drain tests use it to hold a computation
  /// open deterministically. Never set in production.
  std::function<void()> compute_hook;
  /// Test hook: runs in the coalescer's runner thread before each bucket
  /// collection (CellCoalescer's batch_hook). Never set in production.
  std::function<void()> batch_hook;
};

/// One parsed query.
struct Query {
  driver::SweepConfig config;
  driver::ExportFormat format = driver::ExportFormat::kJson;
  double deadline_seconds = 0;  ///< 0 = none
};

/// Outcome of one query execution, transport-agnostic: the server maps
/// `status` onto the HTTP response line. Non-200 bodies are the typed error
/// envelope (errors.hpp); `code` carries the envelope's machine-readable
/// slug.
struct QueryResult {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::string code;          ///< envelope error code; empty iff status == 200
  std::string error;         ///< human message; non-empty iff status != 200
  std::size_t cells = 0;     ///< grid size of the request
  std::size_t cache_hits = 0;  ///< cells served from the LRU
  bool coalesced = false;    ///< result shared from a concurrent identical query
};

/// Parses a /v1/sweep JSON body. Returns the query or a 400/422 QueryResult
/// explaining the rejection.
[[nodiscard]] std::optional<Query> parse_query(const std::string& body,
                                               QueryResult* rejection);

class SweepService {
 public:
  explicit SweepService(ServiceOptions options);
  /// The one construction path the daemon, tests and bench share.
  explicit SweepService(const ServerConfig& config);

  /// Executes one parsed query through cache + single-flight + driver.
  [[nodiscard]] QueryResult execute(const Query& query);

  /// Convenience: parse_query + execute.
  [[nodiscard]] QueryResult handle(const std::string& body);

  /// The reactor's inline path: serves the query entirely from the response
  /// memo, a parse rejection, or an all-cells-cached render — no compute
  /// pool, no sweep. True = `*out` holds the answer. False = the query is a
  /// cache miss; `*query` holds the parsed form for the compute pool (so the
  /// body is parsed once).
  [[nodiscard]] bool try_fast(const std::string& body, Query* query,
                              QueryResult* out);

  // --- introspection (tests, /healthz, stats) ------------------------------
  /// Underlying compute invocations (run_sweep or coalesced execution) so
  /// far — the single-flight hammer test's "exactly one sweep per unique
  /// key" is asserted against this.
  [[nodiscard]] std::uint64_t sweeps_executed() const {
    return sweeps_executed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t cached_cells() const { return cache_.size(); }
  [[nodiscard]] std::size_t warm_started_cells() const { return warm_started_; }
  /// Queries currently blocked on another query's computation.
  [[nodiscard]] std::size_t inflight_waiters() const { return flights_.waiters(); }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  /// The cross-request coalescer; null when disabled (coalesce == false or
  /// sweep_batch_width <= 1).
  [[nodiscard]] const CellCoalescer* coalescer() const {
    return coalescer_.get();
  }

 private:
  /// The driver options a query runs under: the operator's execution policy
  /// plus the caller's `verify` flag — exactly the fields journal_key hashes.
  [[nodiscard]] driver::SweepOptions sweep_options(const Query& query) const;

  /// All cells cached → renders into *out (true); any miss → false.
  [[nodiscard]] bool try_cached(const Query& query, QueryResult* out);

  QueryResult compute(const Query& query, const std::vector<driver::SweepCell>& cells,
                      std::chrono::steady_clock::time_point start);

  /// Executes the cache-missing delta through the cross-request coalescer:
  /// prepare on this thread, batchable lanes through shared batch kernels,
  /// the rest through verify_cell.
  void compute_coalesced(const std::vector<driver::SweepCell>& cells,
                         const std::vector<std::size_t>& missing,
                         const driver::SweepOptions& options,
                         std::vector<driver::SweepResult>& results);

  ServiceOptions options_;
  ShardedLruCache cache_;
  std::unique_ptr<ShardedLruCache> memo_;  ///< null when memo_capacity == 0
  std::unique_ptr<CellCoalescer> coalescer_;
  SingleFlight<QueryResult> flights_;
  ResultJournal journal_;
  bool journaled_ = false;
  std::size_t warm_started_ = 0;
  std::atomic<std::uint64_t> sweeps_executed_{0};
};

}  // namespace csr::serve
