#pragma once

/// \file config.hpp
/// The stable serve API: one configuration object for the whole tier.
///
/// ServerConfig consolidates what used to be scattered across
/// ServiceOptions, ServerOptions and a dozen csr_serve flags into a single
/// fluent builder mirroring driver::SweepConfig — the daemon, the tests and
/// the bench harness all construct the tier the same way:
///
///     ServerConfig config = ServerConfig()
///                               .port(0)
///                               .event_threads(2)
///                               .journal("serve.journal")
///                               .batch_width(8)
///                               .coalesce(true);
///     SweepService service(config);
///     Server server(service, config);
///
/// Like SweepConfig over SweepGrid/SweepOptions, the underlying value
/// structs (ServiceOptions for the query service, ReactorOptions for the
/// transport) stay public and are reachable through service()/reactor() for
/// migration and tests; the builder is the construction path.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "serve/http.hpp"
#include "serve/service.hpp"

namespace csr::serve {

/// Transport policy for the epoll reactor (server.hpp). Everything about
/// *what* a query means stays in ServiceOptions.
struct ReactorOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;  ///< 0 = ephemeral; see Server::port()
  /// Bind with SO_REUSEPORT so `cluster` sibling processes (tools/csr_serve
  /// --cluster N) can share the port; the kernel load-balances accepts.
  bool reuse_port = false;
  /// Event-loop threads: each runs its own epoll instance; connections are
  /// pinned to the loop that accepted them. 0 = one per hardware thread,
  /// capped at 4 (event loops are I/O-bound; compute happens in the pool).
  unsigned event_threads = 0;
  /// Compute-pool threads executing cache-missing /v1/sweep queries.
  /// 0 = one per hardware thread.
  unsigned compute_threads = 0;
  /// Ceiling on queries queued or executing in the compute pool; beyond it
  /// new sweep requests are shed with a 503 envelope + Retry-After without
  /// touching the pool. Socket I/O itself is never queued.
  std::size_t max_inflight = 256;
  /// Ceiling on open connections across all loops; accepts beyond it are
  /// answered 503 and closed.
  std::size_t max_connections = 4096;
  int retry_after_seconds = 1;  ///< advertised on every shed 503
  HttpLimits http_limits;
  /// epoll_wait tick — bounds how long drain/stop can go unnoticed by an
  /// otherwise idle loop, and the signal thread's poll granularity.
  int poll_interval_ms = 200;
};

/// Fluent, value-semantic description of the whole serving tier. Every
/// setter returns *this; all fields have working defaults.
class ServerConfig {
 public:
  ServerConfig() = default;

  // --- network -------------------------------------------------------------
  ServerConfig& host(std::string h) {
    reactor_.host = std::move(h);
    return *this;
  }
  ServerConfig& port(std::uint16_t p) {
    reactor_.port = p;
    return *this;
  }
  ServerConfig& reuse_port(bool enabled) {
    reactor_.reuse_port = enabled;
    return *this;
  }
  ServerConfig& max_connections(std::size_t n) {
    reactor_.max_connections = n;
    return *this;
  }

  // --- reactor threading ---------------------------------------------------
  ServerConfig& event_threads(unsigned n) {
    reactor_.event_threads = n;
    return *this;
  }
  ServerConfig& compute_threads(unsigned n) {
    reactor_.compute_threads = n;
    return *this;
  }
  ServerConfig& max_inflight(std::size_t n) {
    reactor_.max_inflight = n;
    return *this;
  }
  ServerConfig& retry_after(int seconds) {
    reactor_.retry_after_seconds = seconds;
    return *this;
  }
  ServerConfig& http_limits(HttpLimits limits) {
    reactor_.http_limits = limits;
    return *this;
  }
  ServerConfig& poll_interval_ms(int ms) {
    reactor_.poll_interval_ms = ms;
    return *this;
  }

  // --- cache + journal -----------------------------------------------------
  ServerConfig& journal(std::string path) {
    service_.journal_path = std::move(path);
    return *this;
  }
  ServerConfig& cache_capacity(std::size_t cells) {
    service_.cache_capacity = cells;
    return *this;
  }
  ServerConfig& cache_shards(std::size_t shards) {
    service_.cache_shards = shards;
    return *this;
  }
  /// Rendered-response memo entries (0 disables the memo fast path).
  ServerConfig& memo_capacity(std::size_t entries) {
    service_.memo_capacity = entries;
    return *this;
  }

  // --- query execution policy ----------------------------------------------
  ServerConfig& max_cells_per_request(std::size_t cells) {
    service_.max_cells_per_request = cells;
    return *this;
  }
  ServerConfig& sweep_threads(unsigned n) {
    service_.sweep_threads = n;
    return *this;
  }
  /// Lanes per batched kernel invocation (byte-identical at any width).
  ServerConfig& batch_width(std::size_t width) {
    service_.sweep_batch_width = width;
    return *this;
  }
  /// Cross-request cell batching: concurrent queries whose prepared cells
  /// share (exec engine, batch shape) coalesce into one batch kernel run.
  /// Requires batch_width > 1 to take effect.
  ServerConfig& coalesce(bool enabled) {
    service_.coalesce = enabled;
    return *this;
  }
  /// Queries whose cache-missing delta exceeds this many cells bypass the
  /// coalescer and run through the parallel sweep scheduler instead.
  ServerConfig& coalesce_cell_limit(std::size_t cells) {
    service_.coalesce_cell_limit = cells;
    return *this;
  }
  ServerConfig& retry(driver::RetryPolicy policy) {
    service_.retry = policy;
    return *this;
  }
  ServerConfig& machine(ResourceModel model) {
    service_.machine = std::move(model);
    return *this;
  }

  // --- test hooks (never set in production) --------------------------------
  ServerConfig& compute_hook(std::function<void()> hook) {
    service_.compute_hook = std::move(hook);
    return *this;
  }
  ServerConfig& batch_hook(std::function<void()> hook) {
    service_.batch_hook = std::move(hook);
    return *this;
  }

  // --- views ---------------------------------------------------------------
  [[nodiscard]] ServiceOptions& service() { return service_; }
  [[nodiscard]] const ServiceOptions& service() const { return service_; }
  [[nodiscard]] ReactorOptions& reactor() { return reactor_; }
  [[nodiscard]] const ReactorOptions& reactor() const { return reactor_; }

 private:
  ServiceOptions service_;
  ReactorOptions reactor_;
};

}  // namespace csr::serve
