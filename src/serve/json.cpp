#include "serve/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <utility>

namespace csr::serve {

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value, std::optional<std::int64_t> exact,
                            bool int_out_of_range) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.double_ = value;
  v.int_ = exact;
  v.int_out_of_range_ = int_out_of_range;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  std::optional<JsonValue> run(JsonError* error) {
    JsonValue value;
    if (!parse_value(value, 0)) {
      report(error);
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after the JSON value");
      report(error);
      return std::nullopt;
    }
    return value;
  }

 private:
  void report(JsonError* error) const {
    if (error != nullptr) *error = JsonError{message_, error_pos_};
  }

  bool fail(std::string message) {
    if (message_.empty()) {
      message_ = std::move(message);
      error_pos_ = pos_;
    }
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > max_depth_) return fail("nesting depth limit exceeded");
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!consume_literal("null")) return false;
        out = JsonValue::null();
        return true;
      case 't':
        if (!consume_literal("true")) return false;
        out = JsonValue::boolean(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return false;
        out = JsonValue::boolean(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::string(std::move(s));
        return true;
      }
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = JsonValue::array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      items.push_back(std::move(item));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or ']' in array");
      }
    }
    out = JsonValue::array(std::move(items));
    return true;
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = JsonValue::object(std::move(members));
      return true;
    }
    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key string");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      members[std::move(key)] = std::move(value);  // last writer wins
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or '}' in object");
      }
    }
    out = JsonValue::object(std::move(members));
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (++pos_ >= text_.size()) return fail("unterminated escape");
        switch (text_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (!append_unicode_escape(out)) return false;
            break;
          }
          default:
            return fail("invalid escape character");
        }
        ++pos_;
        continue;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      out += static_cast<char>(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  /// pos_ is at the 'u'; decodes \uXXXX (and surrogate pairs) to UTF-8,
  /// leaving pos_ on the final consumed hex digit.
  bool append_unicode_escape(std::string& out) {
    std::uint32_t code = 0;
    if (!read_hex4(code)) return false;
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: require the paired low surrogate.
      if (pos_ + 2 >= text_.size() || text_[pos_ + 1] != '\\' ||
          text_[pos_ + 2] != 'u') {
        return fail("unpaired surrogate escape");
      }
      pos_ += 2;
      std::uint32_t low = 0;
      if (!read_hex4(low)) return false;
      if (low < 0xDC00 || low > 0xDFFF) return fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      return fail("unpaired surrogate escape");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return true;
  }

  /// pos_ is at 'u'; reads 4 hex digits, leaving pos_ on the last one.
  bool read_hex4(std::uint32_t& out) {
    if (pos_ + 4 >= text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 1; i <= 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      pos_ = start;
      return fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("digits required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("digits required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    const std::string literal(text_.substr(start, pos_ - start));
    errno = 0;
    const double value = std::strtod(literal.c_str(), nullptr);
    if (errno == ERANGE) return fail("number out of range");
    std::optional<std::int64_t> exact;
    bool int_out_of_range = false;
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long as_ll = std::strtoll(literal.c_str(), &end, 10);
      if (errno == ERANGE) {
        // strtoll clamped to LLONG_MIN/MAX — do NOT surface the clamped
        // value as exact. Record the overflow so consumers that need an
        // exact integer can reject with a typed "out of range" error.
        int_out_of_range = true;
      } else if (errno == 0 && end != nullptr && *end == '\0') {
        exact = as_ll;
      }
    }
    out = JsonValue::number(value, exact, int_out_of_range);
    return true;
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  std::string message_;
  std::size_t error_pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, JsonError* error,
                                    std::size_t max_depth) {
  return Parser(text, max_depth).run(error);
}

}  // namespace csr::serve
