#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "benchmarks/benchmarks.hpp"
#include "driver/cell_exec.hpp"
#include "mdfg/builders.hpp"
#include "observe/observe.hpp"
#include "serve/config.hpp"
#include "serve/errors.hpp"
#include "serve/json.hpp"
#include "support/hash.hpp"

namespace csr::serve {

namespace {

/// The serve layer's slice of the metric catalogue (docs/OBSERVABILITY.md).
struct ServeMetrics {
  observe::Counter& queries;
  observe::Counter& query_errors;
  observe::Counter& coalesced;
  observe::Counter& deadline_expired;
  observe::Counter& cells;
  observe::Counter& cell_cache_hits;
  observe::Counter& sweeps;
  observe::Counter& memo_hits;
  observe::Counter& fast_served;
  observe::Histogram& query_seconds;
  observe::Gauge& cache_entries;

  static ServeMetrics& get() {
    static ServeMetrics metrics = [] {
      auto& reg = observe::MetricsRegistry::global();
      return ServeMetrics{
          reg.counter("csr_serve_queries_total", "Sweep queries executed"),
          reg.counter("csr_serve_query_errors_total",
                      "Queries rejected or failed (non-200 outcomes)"),
          reg.counter("csr_serve_coalesced_total",
                      "Queries that shared a concurrent identical computation"),
          reg.counter("csr_serve_deadline_expired_total",
                      "Queries that hit their deadline before executing"),
          reg.counter("csr_serve_cells_total", "Cells requested across queries"),
          reg.counter("csr_serve_cell_cache_hits_total",
                      "Cells served from the in-memory result cache"),
          reg.counter("csr_serve_sweeps_total",
                      "Underlying compute invocations (cache-missing work)"),
          reg.counter("csr_serve_memo_hits_total",
                      "Queries answered from the rendered-response memo"),
          reg.counter("csr_serve_fast_served_total",
                      "Queries served inline on an event thread (memo, "
                      "rejection, or all-cells-cached)"),
          reg.histogram("csr_serve_query_seconds",
                        observe::latency_seconds_bounds(),
                        "Wall time of one query, cache hits included"),
          reg.gauge("csr_serve_cache_entries", "Cells in the serve result cache"),
      };
    }();
    return metrics;
  }
};

QueryResult reject(int status, std::string why) {
  QueryResult r;
  r.status = status;
  r.content_type = "application/json";
  r.code = std::string(error_code(status));
  r.body = error_body(r.code, why);
  r.error = std::move(why);
  return r;
}

/// Reads a JSON array of strings into `out`; false (with rejection) on
/// wrong shapes.
bool read_string_array(const JsonValue& value, std::string_view key,
                       std::vector<std::string>& out, QueryResult* rejection) {
  if (!value.is_array()) {
    *rejection = reject(422, std::string(key) + " must be an array of strings");
    return false;
  }
  out.clear();
  for (const JsonValue& item : value.as_array()) {
    if (!item.is_string()) {
      *rejection = reject(422, std::string(key) + " must be an array of strings");
      return false;
    }
    out.push_back(item.as_string());
  }
  return true;
}

bool read_int_array(const JsonValue& value, std::string_view key,
                    std::vector<std::int64_t>& out, QueryResult* rejection) {
  if (!value.is_array()) {
    *rejection = reject(422, std::string(key) + " must be an array of integers");
    return false;
  }
  out.clear();
  for (const JsonValue& item : value.as_array()) {
    const auto exact = item.is_number() ? item.as_int() : std::nullopt;
    if (!exact) {
      if (item.is_number() && item.int_out_of_range()) {
        *rejection = reject(422, std::string(key) +
                                     " contains an integer out of range "
                                     "(does not fit a signed 64-bit value)");
      } else {
        *rejection = reject(422, std::string(key) + " must be an array of integers");
      }
      return false;
    }
    out.push_back(*exact);
  }
  return true;
}

/// Parses an array of enum names through the shared EnumNames tables.
template <typename Enum>
bool read_enum_array(const JsonValue& value, std::string_view key,
                     std::vector<Enum>& out, QueryResult* rejection) {
  std::vector<std::string> names;
  if (!read_string_array(value, key, names, rejection)) return false;
  out.clear();
  for (const std::string& name : names) {
    const auto parsed = parse_enum<Enum>(name);
    if (!parsed) {
      *rejection = reject(422, "unknown " + std::string(key) + " value '" + name +
                                   "' (see docs/SERVING.md for the vocabulary)");
      return false;
    }
    out.push_back(*parsed);
  }
  return true;
}

/// Renders `results` into `out` through the shared exporters.
void render_result(driver::ExportFormat format,
                   const std::vector<driver::SweepResult>& results,
                   QueryResult* out) {
  if (format == driver::ExportFormat::kCsv) {
    out->content_type = "text/csv";
    out->body = driver::to_csv(results);
  } else {
    out->content_type = "application/json";
    out->body = driver::to_json(results);
  }
}

}  // namespace

std::optional<Query> parse_query(const std::string& body, QueryResult* rejection) {
  JsonError error;
  const auto parsed = parse_json(body, &error);
  if (!parsed) {
    *rejection = reject(400, "invalid JSON at byte " + std::to_string(error.offset) +
                                 ": " + error.message);
    return std::nullopt;
  }
  if (!parsed->is_object()) {
    *rejection = reject(422, "request body must be a JSON object");
    return std::nullopt;
  }

  Query query;
  driver::SweepGrid& grid = query.config.grid();

  const JsonValue* benchmarks = parsed->get("benchmarks");
  if (benchmarks == nullptr) {
    *rejection = reject(422, "missing required field 'benchmarks'");
    return std::nullopt;
  }
  if (!read_string_array(*benchmarks, "benchmarks", grid.benchmarks, rejection)) {
    return std::nullopt;
  }
  if (grid.benchmarks.empty()) {
    *rejection = reject(422, "'benchmarks' must name at least one graph");
    return std::nullopt;
  }
  // Reject unknown graphs up front: the sweep engine would dutifully emit
  // an error row per cell, but for a query API a typo is a caller error,
  // not a result.
  for (const std::string& name : grid.benchmarks) {
    const auto& graphs = benchmarks::all_graphs();
    const bool known = std::any_of(
        graphs.begin(), graphs.end(),
        [&](const benchmarks::BenchmarkInfo& info) { return info.name == name; }) ||
        mdfg::find_md_benchmark(name) != nullptr;
    if (!known) {
      *rejection = reject(422, "unknown benchmark '" + name +
                                   "' (GET /v1/benchmarks lists the vocabulary)");
      return std::nullopt;
    }
  }

  if (const JsonValue* v = parsed->get("trip_counts"); v != nullptr) {
    if (!read_int_array(*v, "trip_counts", grid.trip_counts, rejection)) {
      return std::nullopt;
    }
  }
  if (const JsonValue* v = parsed->get("shapes"); v != nullptr) {
    // Nested (2-D) benchmarks sweep [rows, cols] shapes instead of
    // trip_counts; 1-D benchmarks in the same query ignore this axis.
    if (!v->is_array()) {
      *rejection = reject(422, "shapes must be an array of [rows, cols] pairs");
      return std::nullopt;
    }
    grid.shapes.clear();
    for (const JsonValue& item : v->as_array()) {
      std::vector<std::int64_t> pair;
      if (!item.is_array() || !read_int_array(item, "shapes", pair, rejection) ||
          pair.size() != 2) {
        *rejection = reject(422, "shapes must be an array of [rows, cols] pairs");
        return std::nullopt;
      }
      if (pair[0] < 1 || pair[1] < 1) {
        *rejection = reject(422, "shapes entries need rows >= 1 and cols >= 1");
        return std::nullopt;
      }
      grid.shapes.push_back(driver::LoopShape{pair[0], pair[1]});
    }
    if (grid.shapes.empty()) {
      *rejection = reject(422, "shapes must name at least one [rows, cols] pair");
      return std::nullopt;
    }
  }
  if (const JsonValue* v = parsed->get("engines"); v != nullptr) {
    if (!read_enum_array(*v, "engines", grid.engines, rejection)) return std::nullopt;
  }
  if (const JsonValue* v = parsed->get("exec_engines"); v != nullptr) {
    if (!read_enum_array(*v, "exec_engines", grid.exec_engines, rejection)) {
      return std::nullopt;
    }
  }
  if (const JsonValue* v = parsed->get("transforms"); v != nullptr) {
    if (!read_enum_array(*v, "transforms", grid.transforms, rejection)) {
      return std::nullopt;
    }
  }
  if (const JsonValue* v = parsed->get("factors"); v != nullptr) {
    std::vector<std::int64_t> factors;
    if (!read_int_array(*v, "factors", factors, rejection)) return std::nullopt;
    grid.factors.clear();
    for (const std::int64_t f : factors) {
      if (f < 2 || f > 64) {
        *rejection = reject(422, "factors must be in [2, 64]");
        return std::nullopt;
      }
      grid.factors.push_back(static_cast<int>(f));
    }
  }
  if (const JsonValue* v = parsed->get("verify"); v != nullptr) {
    if (!v->is_bool()) {
      *rejection = reject(422, "'verify' must be a boolean");
      return std::nullopt;
    }
    query.config.verify(v->as_bool());
  }
  if (const JsonValue* v = parsed->get("format"); v != nullptr) {
    const auto format = v->is_string()
                            ? driver::parse_export_format(v->as_string())
                            : std::nullopt;
    if (!format) {
      *rejection = reject(422, "'format' must be \"csv\" or \"json\"");
      return std::nullopt;
    }
    query.format = *format;
  }
  if (const JsonValue* v = parsed->get("deadline_ms"); v != nullptr) {
    if (!v->is_number() || v->as_double() < 0) {
      *rejection = reject(422, "'deadline_ms' must be a non-negative number");
      return std::nullopt;
    }
    query.deadline_seconds = v->as_double() / 1000.0;
  }
  return query;
}

SweepService::SweepService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards) {
  if (options_.memo_capacity > 0) {
    memo_ = std::make_unique<ShardedLruCache>(options_.memo_capacity,
                                              options_.cache_shards);
  }
  if (options_.coalesce && options_.sweep_batch_width > 1) {
    coalescer_ = std::make_unique<CellCoalescer>(options_.sweep_batch_width,
                                                 options_.batch_hook);
  }
  if (!options_.journal_path.empty()) {
    journaled_ = journal_.open(options_.journal_path);
    if (journaled_) {
      // Warm start: every journaled cell becomes a cache entry, so a
      // restarted server answers yesterday's queries without re-executing
      // them. Keys are shared with the journal by construction.
      for (auto& [key, payload] : journal_.snapshot()) {
        cache_.put(key, std::move(payload));
        ++warm_started_;
      }
    }
  }
  ServeMetrics::get().cache_entries.set(static_cast<std::int64_t>(cache_.size()));
}

SweepService::SweepService(const ServerConfig& config)
    : SweepService(config.service()) {}

driver::SweepOptions SweepService::sweep_options(const Query& query) const {
  driver::SweepOptions opts;
  opts.threads = options_.sweep_threads;
  opts.batch_width = options_.sweep_batch_width;
  opts.verify = query.config.options().verify;
  opts.machine = options_.machine;
  opts.retry = options_.retry;
  return opts;
}

QueryResult SweepService::handle(const std::string& body) {
  QueryResult rejection;
  const auto query = parse_query(body, &rejection);
  if (!query) {
    ServeMetrics::get().query_errors.increment();
    return rejection;
  }
  return execute(*query);
}

bool SweepService::try_fast(const std::string& body, Query* query,
                            QueryResult* out) {
  ServeMetrics& metrics = ServeMetrics::get();
  if (memo_ != nullptr) {
    if (const auto hit = memo_->get(body)) {
      // Memo values are the rendered body prefixed by one format byte.
      metrics.queries.increment();
      metrics.memo_hits.increment();
      metrics.fast_served.increment();
      out->status = 200;
      out->content_type = hit->front() == 'c' ? "text/csv" : "application/json";
      out->body = hit->substr(1);
      out->cells = out->cache_hits = 1;  // memo implies a full cache hit
      return true;
    }
  }

  QueryResult rejection;
  auto parsed = parse_query(body, &rejection);
  if (!parsed) {
    metrics.queries.increment();
    metrics.query_errors.increment();
    metrics.fast_served.increment();
    *out = rejection;
    return true;
  }
  *query = std::move(*parsed);

  if (try_cached(*query, out)) {
    metrics.fast_served.increment();
    if (memo_ != nullptr && out->status == 200) {
      std::string value(
          1, query->format == driver::ExportFormat::kCsv ? 'c' : 'j');
      value += out->body;
      memo_->put(body, std::move(value));
    }
    return true;
  }
  return false;
}

bool SweepService::try_cached(const Query& query, QueryResult* out) {
  const std::vector<driver::SweepCell> cells = query.config.cells();
  if (cells.empty() || cells.size() > options_.max_cells_per_request) {
    return false;  // execute() owns the rejection (and its metrics)
  }
  const driver::SweepOptions sweep_opts = sweep_options(query);
  std::vector<driver::SweepResult> results(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string key = driver::journal_key(cells[i], sweep_opts);
    const auto payload = cache_.get(key);
    if (!payload || !driver::from_journal_payload(*payload, cells[i], results[i])) {
      return false;
    }
    results[i].from_cache = true;
  }
  ServeMetrics& metrics = ServeMetrics::get();
  metrics.queries.increment();
  metrics.cells.increment(cells.size());
  metrics.cell_cache_hits.increment(cells.size());
  out->status = 200;
  out->cells = cells.size();
  out->cache_hits = cells.size();
  render_result(query.format, results, out);
  return true;
}

QueryResult SweepService::execute(const Query& query) {
  ServeMetrics& metrics = ServeMetrics::get();
  observe::Span span("serve", "query");
  observe::ScopedTimer timer(metrics.query_seconds);
  const auto start = std::chrono::steady_clock::now();

  const std::vector<driver::SweepCell> cells = query.config.cells();
  span.arg("cells", static_cast<std::uint64_t>(cells.size()));
  metrics.queries.increment();
  metrics.cells.increment(cells.size());

  if (cells.empty()) {
    metrics.query_errors.increment();
    return reject(422, "request expands to an empty grid");
  }
  if (cells.size() > options_.max_cells_per_request) {
    metrics.query_errors.increment();
    return reject(422, "request expands to " + std::to_string(cells.size()) +
                           " cells (limit " +
                           std::to_string(options_.max_cells_per_request) + ")");
  }

  // Request-level identity: the format plus every cell's content key. Two
  // requests with the same key are the same computation, whatever JSON
  // spelling produced them — that is what single-flight coalesces on.
  const driver::SweepOptions sweep_opts = sweep_options(query);
  std::vector<std::string> key_fields;
  key_fields.reserve(cells.size() + 1);
  key_fields.push_back(std::string(to_string(query.format)));
  for (const driver::SweepCell& cell : cells) {
    key_fields.push_back(driver::journal_key(cell, sweep_opts));
  }
  const std::string request_key = content_key('q', key_fields);

  try {
    auto [result, coalesced] = flights_.run(request_key, [&] {
      return compute(query, cells, start);
    });
    if (coalesced) {
      result.coalesced = true;
      metrics.coalesced.increment();
    }
    if (result.status != 200) metrics.query_errors.increment();
    span.arg("status", result.status).arg("coalesced", result.coalesced);
    return result;
  } catch (const std::exception& e) {
    metrics.query_errors.increment();
    return reject(500, std::string("internal error: ") + e.what());
  }
}

QueryResult SweepService::compute(const Query& query,
                                  const std::vector<driver::SweepCell>& cells,
                                  std::chrono::steady_clock::time_point start) {
  ServeMetrics& metrics = ServeMetrics::get();
  observe::Span span("serve", "compute");
  if (options_.compute_hook) options_.compute_hook();

  QueryResult out;
  out.cells = cells.size();

  // Phase 1: serve what the cache already knows. Cache payloads are journal
  // payloads, replayed exactly like a warm offline re-run.
  const driver::SweepOptions sweep_opts = sweep_options(query);
  std::vector<driver::SweepResult> results(cells.size());
  std::vector<std::string> keys(cells.size());
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    keys[i] = driver::journal_key(cells[i], sweep_opts);
    if (const auto payload = cache_.get(keys[i]);
        payload && driver::from_journal_payload(*payload, cells[i], results[i])) {
      results[i].from_cache = true;
      ++out.cache_hits;
      continue;
    }
    missing.push_back(i);
  }
  metrics.cell_cache_hits.increment(out.cache_hits);
  span.arg("cache_hits", static_cast<std::uint64_t>(out.cache_hits))
      .arg("missing", static_cast<std::uint64_t>(missing.size()));

  // Phase 2: execute the delta, under what remains of the deadline.
  if (!missing.empty()) {
    double remaining = 0;
    if (query.deadline_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      remaining = query.deadline_seconds - elapsed;
      if (remaining <= 0) {
        metrics.deadline_expired.increment();
        return reject(504, "deadline expired before execution (" +
                               std::to_string(cells.size() - out.cache_hits) +
                               " cells uncached)");
      }
    }

    driver::SweepOptions exec_opts = sweep_opts;
    if (remaining > 0) {
      // The existing retry policy is the propagation point: a native cell's
      // compiler subprocess may not outlive the request that asked for it.
      driver::RetryPolicy& retry = exec_opts.retry;
      retry.compile_deadline = retry.compile_deadline > 0
                                   ? std::min(retry.compile_deadline, remaining)
                                   : remaining;
    }

    sweeps_executed_.fetch_add(1, std::memory_order_relaxed);
    metrics.sweeps.increment();

    if (coalescer_ != nullptr && missing.size() <= options_.coalesce_cell_limit) {
      compute_coalesced(cells, missing, exec_opts, results);
    } else {
      std::vector<driver::SweepCell> todo;
      todo.reserve(missing.size());
      for (const std::size_t i : missing) todo.push_back(cells[i]);
      driver::SweepConfig config;
      config.cells(std::move(todo));
      config.options() = exec_opts;
      const driver::SweepRun run = driver::run_sweep(config);
      for (std::size_t j = 0; j < missing.size(); ++j) {
        results[missing[j]] = run.results[j];
      }
    }

    for (const std::size_t i : missing) {
      const std::string payload = driver::to_journal_payload(results[i]);
      if (journaled_) journal_.append(keys[i], payload);
      cache_.put(keys[i], payload);
    }
    metrics.cache_entries.set(static_cast<std::int64_t>(cache_.size()));
  }

  // Phase 3: render through the shared exporters — the bytes a direct
  // run_sweep + to_json/to_csv of the same cells would produce.
  render_result(query.format, results, &out);
  return out;
}

void SweepService::compute_coalesced(
    const std::vector<driver::SweepCell>& cells,
    const std::vector<std::size_t>& missing,
    const driver::SweepOptions& options,
    std::vector<driver::SweepResult>& results) {
  observe::Span span("serve", "compute_coalesced");
  span.arg("cells", static_cast<std::uint64_t>(missing.size()));

  // Prepare on this thread; prepare_cell(...) + verify_cell(...) is exactly
  // evaluate_cell, so results stay byte-identical to the run_sweep path.
  std::vector<driver::PreparedCell> prepared;
  prepared.reserve(missing.size());
  for (const std::size_t i : missing) {
    prepared.push_back(driver::prepare_cell(cells[i], options));
  }

  std::vector<driver::PreparedCell*> batchable;
  batchable.reserve(prepared.size());
  for (driver::PreparedCell& prep : prepared) {
    if (driver::prepared_batchable(prep, options)) {
      batchable.push_back(&prep);
    } else {
      driver::verify_cell(prep, options);
    }
  }
  span.arg("batchable", static_cast<std::uint64_t>(batchable.size()));
  coalescer_->execute(batchable, options);

  for (std::size_t j = 0; j < missing.size(); ++j) {
    results[missing[j]] = std::move(prepared[j].res);
  }
}

}  // namespace csr::serve
