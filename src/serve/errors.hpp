#pragma once

/// \file errors.hpp
/// The one error shape the wire surface speaks. Every 4xx/5xx response body
/// the serving tier emits — parser violations, query rejections, overload
/// sheds, drain refusals, deadline expiries, internal faults — is the same
/// typed JSON envelope:
///
///     {"error": {"code": "<slug>", "message": "<human text>",
///                "retry_after": <seconds, only when retrying helps>}}
///
/// `code` is a stable machine-readable slug (clients branch on it;
/// docs/SERVING.md pins the catalogue), `message` is for humans and carries
/// no stability promise. Success bodies are untouched — they remain
/// byte-identical to the offline exporters.

#include <string>
#include <string_view>

namespace csr::serve {

/// The default code slug for an HTTP status. Statuses with more than one
/// cause (503: "overloaded" vs "draining") pass an explicit code instead.
[[nodiscard]] inline std::string_view error_code(int status) {
  switch (status) {
    case 400: return "bad_request";
    case 404: return "not_found";
    case 405: return "method_not_allowed";
    case 413: return "payload_too_large";
    case 422: return "invalid_query";
    case 431: return "headers_too_large";
    case 500: return "internal";
    case 501: return "not_implemented";
    case 503: return "overloaded";
    case 504: return "deadline_expired";
    case 505: return "http_version_not_supported";
    default:  return "error";
  }
}

/// Escapes `text` for placement inside a JSON string literal.
[[nodiscard]] inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders the error envelope. `retry_after_seconds > 0` adds the
/// "retry_after" member (the transport mirrors it as a Retry-After header).
[[nodiscard]] inline std::string error_body(std::string_view code,
                                            std::string_view message,
                                            int retry_after_seconds = 0) {
  std::string body = "{\"error\": {\"code\": \"";
  body += json_escape(code);
  body += "\", \"message\": \"";
  body += json_escape(message);
  body += '"';
  if (retry_after_seconds > 0) {
    body += ", \"retry_after\": ";
    body += std::to_string(retry_after_seconds);
  }
  body += "}}\n";
  return body;
}

/// Convenience: envelope with the status' default code.
[[nodiscard]] inline std::string error_body_for(int status,
                                                std::string_view message,
                                                int retry_after_seconds = 0) {
  return error_body(error_code(status), message, retry_after_seconds);
}

}  // namespace csr::serve
