#pragma once

/// \file coalesce.hpp
/// Cross-request cell batching: the serving-side generalization of the
/// driver's shape-grouped batch execution (PR 8) and of single-flight.
///
/// Single-flight collapses *identical* concurrent queries; the coalescer
/// collapses *distinct* ones. Prepared cells from in-flight queries that
/// share a `driver::prepared_batch_key` — same execution engine, same batch
/// shape (codegen/batch_emitter.hpp) — accumulate in per-key buckets; a
/// runner thread drains each bucket through one
/// `driver::execute_prepared_batch` call of up to `max_lanes` lanes, so one
/// SoA kernel (or one batched superinstruction VM run) verifies cells for
/// several requests at once. The group-commit rhythm is what creates the
/// batches: while one batch executes, new arrivals pile into the buckets.
///
/// Correctness properties (held by tests/serve_coalesce_test.cpp):
///
///   * **Byte-identical results.** execute_prepared_batch fills exactly the
///     fields single-cell verification fills; journal keys never see the
///     grouping, so batched and unbatched serving share cache entries.
///   * **Per-lane degradation.** A failed batch (compiler fault, deadline)
///     falls back to `verify_cell` per lane — each lane under its *own*
///     request's options, so one request's tight deadline cannot fail
///     another's cells.
///   * **Deadline safety.** A batch containing any deadline-bearing lane
///     runs under the minimum of the participating deadlines; lanes of a
///     request with more budget retry individually on failure.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "driver/cell_exec.hpp"

namespace csr::serve {

class CellCoalescer {
 public:
  /// `max_lanes` bounds one batch kernel's width. `batch_hook` (tests only)
  /// runs in the runner thread before each bucket collection, outside the
  /// lock — the hammer test uses it to stage concurrent arrivals
  /// deterministically.
  explicit CellCoalescer(std::size_t max_lanes,
                         std::function<void()> batch_hook = {});
  ~CellCoalescer();
  CellCoalescer(const CellCoalescer&) = delete;
  CellCoalescer& operator=(const CellCoalescer&) = delete;

  /// Executes every lane — each must satisfy driver::prepared_batchable
  /// under `options` — through shape-grouped batches shared with other
  /// concurrently executing requests. Blocks until all lanes are verified.
  /// Thread-safe; any compute thread may call it.
  void execute(const std::vector<driver::PreparedCell*>& lanes,
               const driver::SweepOptions& options);

  // --- introspection (tests, metrics) --------------------------------------
  [[nodiscard]] std::uint64_t batches_run() const {
    return batches_run_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lanes_run() const {
    return lanes_run_.load(std::memory_order_relaxed);
  }
  /// Batches whose lanes came from more than one execute() call — the
  /// cross-request wins single-flight cannot see.
  [[nodiscard]] std::uint64_t cross_request_batches() const {
    return cross_request_batches_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t failed_batches() const {
    return failed_batches_.load(std::memory_order_relaxed);
  }
  /// Lanes currently waiting in the buckets. A test batch_hook spins on this
  /// to hold the runner until every staged submission has arrived.
  [[nodiscard]] std::size_t pending_lanes() const;

 private:
  struct Submission {
    std::size_t remaining = 0;  ///< lanes not yet verified (guarded by mutex_)
  };
  struct Lane {
    driver::PreparedCell* cell = nullptr;
    Submission* submission = nullptr;
    const driver::SweepOptions* options = nullptr;
  };

  void runner_loop();
  /// Executes one collected batch (no locks held). Returns the lanes to
  /// mark done.
  void run_batch(const std::vector<Lane>& batch);

  const std::size_t max_lanes_;
  const std::function<void()> batch_hook_;

  mutable std::mutex mutex_;
  std::condition_variable runner_cv_;  ///< runner waits for work
  std::condition_variable done_cv_;    ///< submitters wait for completion
  std::map<std::string, std::deque<Lane>> buckets_;
  bool stopping_ = false;

  std::atomic<std::uint64_t> batches_run_{0};
  std::atomic<std::uint64_t> lanes_run_{0};
  std::atomic<std::uint64_t> cross_request_batches_{0};
  std::atomic<std::uint64_t> failed_batches_{0};

  std::thread runner_;
};

}  // namespace csr::serve
