#pragma once

/// \file server.hpp
/// The network front of the query service: a non-blocking epoll reactor
/// speaking HTTP/1.1 with keep-alive and pipelining. Transport policy lives
/// here; everything about *what* a query means lives in service.hpp.
/// Operational shape (docs/SERVING.md has the runbook):
///
///   * **Event loops.** N event threads each run their own epoll instance;
///     the shared listening socket is registered in every instance with
///     EPOLLEXCLUSIVE so the kernel wakes exactly one loop per burst of
///     connections. A connection is pinned for life to the loop that
///     accepted it — all of its socket state is single-threaded, no lock.
///     Reads and writes are edge-triggered and drained to EAGAIN.
///   * **Compute split.** GET endpoints, protocol errors, and /v1/sweep
///     queries the service can answer inline (response memo, parse
///     rejection, all-cells-cached — SweepService::try_fast) are served on
///     the event thread. Only cache-missing sweeps cross into the bounded
///     compute pool; completions post back to the owning loop through a
///     per-loop queue + eventfd wake. Socket I/O never blocks on a sweep.
///   * **Pipelining in order.** Each request gets a sequence number at
///     parse time; responses — inline or computed, whichever finishes
///     first — are slotted by sequence and flushed strictly in request
///     order, as HTTP/1.1 pipelining requires.
///   * **Bounded admission.** Connections beyond max_connections and sweep
///     requests beyond max_inflight are shed immediately with a 503
///     envelope + Retry-After — load is shed at the front door, before the
///     pool or the sweep engine is touched.
///   * **Graceful drain.** request_drain() (wired to SIGTERM/SIGINT through
///     a self-pipe by install_signal_handlers) stops admitting, closes idle
///     keep-alive connections, lets in-flight requests complete and closes
///     their connections after the final flush (responses rendered during
///     drain advertise `Connection: close`). /healthz flips to 503 the
///     moment draining starts so load balancers stop routing.
///   * **Cluster mode.** With ServerConfig::reuse_port the listening socket
///     binds SO_REUSEPORT, so `csr_serve --cluster N` forks N siblings on
///     one port and the kernel load-balances accepts across processes.
///
/// Endpoints: POST /v1/sweep (the query service), GET /v1/benchmarks,
/// GET /v1/version, GET /healthz, GET /metrics (Prometheus exposition).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/config.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"

namespace csr::serve {

class Server {
 public:
  Server(SweepService& service, const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the event loops + compute pool. False (with
  /// `*error`) when the socket cannot be set up.
  bool start(std::string* error = nullptr);

  /// The bound port — the ephemeral one the kernel picked when
  /// config.port() == 0.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Begins graceful drain: stop admitting, close idle connections, finish
  /// in-flight requests, close after their final flush. Idempotent,
  /// callable from any thread (but not from a signal handler — that is
  /// what install_signal_handlers is for).
  void request_drain();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Blocks until drain has been requested — by request_drain(), a routed
  /// signal, or stop(). The daemon's main thread parks here.
  void wait_until_drained();

  /// Drains and joins every thread. The destructor calls this too.
  void stop();

  /// Routes SIGTERM and SIGINT to `server`.request_drain() via the
  /// self-pipe trick (the handler only write()s one byte). One server per
  /// process can be registered at a time.
  static bool install_signal_handlers(Server* server);

  // --- introspection -------------------------------------------------------
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// One request routed to a response, synchronously — the reference
  /// implementation the reactor's split paths must agree with, exposed for
  /// tests that exercise routing without a socket.
  [[nodiscard]] std::string route(const HttpRequest& request);

 private:
  struct Connection;
  struct Loop;
  struct Completion;

  /// One cache-missing /v1/sweep query headed for the compute pool.
  struct Job {
    Loop* loop = nullptr;
    Connection* conn = nullptr;
    std::uint64_t seq = 0;
    Query query;
    bool keep = false;  ///< the request's keep-alive wish
  };

  void loop_run(Loop& loop);
  void accept_ready(Loop& loop);
  void conn_read(Loop& loop, Connection* conn);
  void drain_requests(Loop& loop, Connection* conn);
  void dispatch(Loop& loop, Connection* conn, std::uint64_t seq,
                HttpRequest request);
  /// Renders `result` with the transport headers (cache disposition,
  /// Retry-After) under the final keep-alive decision.
  [[nodiscard]] std::string render_result(const QueryResult& result,
                                          bool keep) const;
  /// Slots a rendered response at `seq` and appends every response whose
  /// turn has come to the outbox (callers flush afterwards).
  void enqueue_response(Connection* conn, std::uint64_t seq,
                        std::string response);
  void flush(Loop& loop, Connection* conn);
  void maybe_close(Loop& loop, Connection* conn);
  void destroy_connection(Loop& loop, Connection* conn);
  void handle_wake(Loop& loop);
  void wake(Loop& loop);

  void compute_loop();
  void signal_loop();
  void reject_connection(int fd, std::string_view code, std::string_view message);

  [[nodiscard]] std::string version_body() const;
  [[nodiscard]] std::string benchmarks_body() const;

  SweepService& service_;
  ReactorOptions options_;
  std::size_t batch_width_ = 1;   ///< advertised by /v1/version
  bool coalesce_ = false;         ///< advertised by /v1/version
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  std::vector<std::unique_ptr<Loop>> loops_;

  // Compute pool: bounded by max_inflight (checked at dispatch).
  std::vector<std::thread> compute_threads_;
  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;       ///< workers wait for jobs
  std::condition_variable pool_idle_cv_;  ///< stop() waits for quiescence
  std::deque<Job> pool_queue_;
  std::size_t pool_active_ = 0;
  bool pool_stop_ = false;
  std::atomic<std::size_t> inflight_jobs_{0};  ///< queued + executing

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::thread signal_thread_;
  int signal_pipe_[2] = {-1, -1};

  std::atomic<std::size_t> open_connections_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace csr::serve
