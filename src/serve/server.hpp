#pragma once

/// \file server.hpp
/// The network front of the query service: a thread-per-connection HTTP/1.1
/// server on plain POSIX sockets. Transport policy lives here; everything
/// about *what* a query means lives in service.hpp. Operational shape
/// (docs/SERVING.md has the runbook):
///
///   * **Bounded admission.** Accepted connections enter a bounded queue;
///     when it is full the accept thread answers `503` with a `Retry-After`
///     header and closes — load is shed at the front door, before a worker
///     or the sweep engine is touched.
///   * **Keep-alive + pipelining.** A worker owns a connection for its
///     lifetime and drains every pipelined request the parser yields,
///     responding in order.
///   * **Graceful drain.** request_drain() (wired to SIGTERM/SIGINT through
///     a self-pipe by install_signal_handlers) stops accepting, answers
///     queued-but-unserved connections with 503, lets in-flight requests
///     complete, then closes their connections. /healthz flips to 503 the
///     moment draining starts so load balancers stop routing.
///
/// Endpoints: POST /v1/sweep (the query service), GET /healthz,
/// GET /metrics (Prometheus exposition of the global MetricsRegistry).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.hpp"
#include "serve/service.hpp"

namespace csr::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;   ///< 0 = ephemeral; see Server::port()
  unsigned worker_threads = 8; ///< concurrent connections served
  std::size_t queue_limit = 64;  ///< accepted-but-unclaimed connections
  int retry_after_seconds = 1;   ///< advertised on backpressure 503s
  HttpLimits http_limits;
  /// Poll granularity for idle reads and the accept loop — bounds how long
  /// drain can go unnoticed by a blocked worker.
  int poll_interval_ms = 200;
};

class Server {
 public:
  Server(SweepService& service, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept + worker threads. False (with
  /// `*error`) when the socket cannot be set up.
  bool start(std::string* error = nullptr);

  /// The bound port — the ephemeral one the kernel picked when
  /// options.port == 0.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Begins graceful drain: stop accepting, finish in-flight requests,
  /// reject everything else. Idempotent, callable from any thread (but not
  /// from a signal handler — that is what install_signal_handlers is for).
  void request_drain();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Blocks until drain has been requested — by request_drain(), a routed
  /// signal, or stop(). The daemon's main thread parks here.
  void wait_until_drained();

  /// Drains and joins every thread. The destructor calls this too.
  void stop();

  /// Routes SIGTERM and SIGINT to `server`.request_drain() via the
  /// self-pipe trick (the handler only write()s one byte). One server per
  /// process can be registered at a time.
  static bool install_signal_handlers(Server* server);

  // --- introspection -------------------------------------------------------
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// One request routed to a response — exposed for tests that exercise
  /// routing without a socket.
  [[nodiscard]] std::string route(const HttpRequest& request);

 private:
  void accept_loop();
  void worker_loop();
  void signal_loop();
  void handle_connection(int fd);
  /// Pops the next queued connection; -1 when the server is stopping and
  /// the queue is empty.
  int next_connection();
  void reject_connection(int fd);

  SweepService& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  // Workers wait on queue_cv_; drain watchers wait on drain_cv_. Separate
  // condition variables because the accept loop uses notify_one — a shared
  // cv could hand a new-connection wakeup to a drain watcher, whose
  // predicate ignores the queue, and strand the connection until the next
  // notify.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<int> queue_;

  std::thread accept_thread_;
  std::thread signal_thread_;
  std::vector<std::thread> workers_;
  int signal_pipe_[2] = {-1, -1};

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace csr::serve
