#include "serve/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "benchmarks/benchmarks.hpp"
#include "driver/cell_exec.hpp"
#include "driver/export_schema.hpp"
#include "mdfg/builders.hpp"
#include "observe/observe.hpp"
#include "serve/errors.hpp"

namespace csr::serve {

namespace {

/// Server-level metric slice (docs/OBSERVABILITY.md).
struct ServerMetrics {
  observe::Counter& connections;
  observe::Counter& rejected;
  observe::Counter& requests;
  observe::Counter& parse_errors;
  observe::Counter& shed_requests;
  observe::Gauge& open_connections;
  observe::Gauge& inflight;
  observe::Gauge& draining;

  static ServerMetrics& get() {
    static ServerMetrics metrics = [] {
      auto& reg = observe::MetricsRegistry::global();
      return ServerMetrics{
          reg.counter("csr_serve_connections_total", "Connections accepted"),
          reg.counter("csr_serve_connections_rejected_total",
                      "Connections shed by admission control or drain"),
          reg.counter("csr_serve_requests_total", "HTTP requests served"),
          reg.counter("csr_serve_parse_errors_total",
                      "Connections closed on a protocol violation"),
          reg.counter("csr_serve_shed_requests_total",
                      "Sweep requests shed 503 at the compute-pool bound"),
          reg.gauge("csr_serve_open_connections", "Connections currently open"),
          reg.gauge("csr_serve_inflight_queries",
                    "Sweep queries queued or executing in the compute pool"),
          reg.gauge("csr_serve_draining", "1 while graceful drain is in progress"),
      };
    }();
    return metrics;
  }
};

/// Writes all of `data` to `fd`; best-effort, returns false on any error.
/// Used only on the synchronous shed path (fresh sockets, tiny bodies).
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// epoll_data sentinels for the two non-connection fds in every instance.
void* const kListenTag = nullptr;
void* const kWakeTag = reinterpret_cast<void*>(1);

/// True when the response's header block advertises `Connection: close`.
/// Only the head is scanned — render_response places the header there.
bool advertises_close(const std::string& response) {
  const std::string_view head(response.data(),
                              std::min<std::size_t>(response.size(), 256));
  return head.find("Connection: close") != std::string_view::npos;
}

/// Rewrites an already-rendered keep-alive response into a closing one —
/// drain can begin between render and enqueue, and the advertised header
/// must match the close that follows.
void force_close_header(std::string* response) {
  constexpr std::string_view kKeep = "Connection: keep-alive";
  const std::string_view head(response->data(),
                              std::min<std::size_t>(response->size(), 256));
  const std::size_t pos = head.find(kKeep);
  if (pos != std::string_view::npos) {
    response->replace(pos, kKeep.size(), "Connection: close");
  }
}

/// The write end of the registered server's signal pipe; the handler only
/// touches this (async-signal-safe write of one byte).
std::atomic<int> g_signal_fd{-1};

extern "C" void csr_serve_signal_handler(int) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

/// One accepted socket, pinned to the loop that accepted it. Every field is
/// touched only by that loop's thread.
struct Server::Connection {
  int fd = -1;
  RequestParser parser;
  /// In-order bytes awaiting the kernel; [outbox_off, size) is unsent.
  std::string outbox;
  std::size_t outbox_off = 0;
  std::uint64_t next_seq = 0;    ///< next request sequence to assign
  std::uint64_t next_flush = 0;  ///< next sequence to append to the outbox
  /// Completed responses waiting for their turn (pipelined out-of-order
  /// completions park here).
  std::map<std::uint64_t, std::string> ready;
  std::size_t inflight = 0;  ///< jobs in the compute pool for this connection
  /// Smallest sequence whose response mandates close; responses beyond it
  /// are dropped and the connection closes once it flushes.
  std::uint64_t close_seq = UINT64_MAX;
  bool want_write = false;  ///< EPOLLOUT armed
  bool peer_closed = false;
  bool dead = false;  ///< transport error; destroy once inflight drains
  std::uint64_t served = 0;

  Connection(int f, const HttpLimits& limits) : fd(f), parser(limits) {}
};

/// One event loop: an epoll instance, its wake eventfd, and the connections
/// pinned to it. `completions` is the only cross-thread state (compute
/// workers post under `mutex`, the loop thread drains on wake).
struct Server::Loop {
  Server* server = nullptr;
  std::size_t index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::mutex mutex;
  std::vector<Completion> completions;
  std::unordered_map<int, Connection*> conns;
  /// Connections destroyed mid-event-batch: the fd closes immediately, the
  /// object outlives the batch so stale epoll events can't dangle.
  std::vector<Connection*> graveyard;
  std::atomic<bool> stop{false};
};

struct Server::Completion {
  Connection* conn = nullptr;
  std::uint64_t seq = 0;
  QueryResult result;
  bool keep = false;
};

Server::Server(SweepService& service, const ServerConfig& config)
    : service_(service),
      options_(config.reactor()),
      batch_width_(config.service().sweep_batch_width),
      coalesce_(config.service().coalesce &&
                config.service().sweep_batch_width > 1) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    for (auto& loop : loops_) {
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
      if (loop->wake_fd >= 0) ::close(loop->wake_fd);
    }
    loops_.clear();
    for (int& fd : signal_pipe_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (options_.reuse_port) {
    // Cluster mode: sibling processes bind the same port and the kernel
    // load-balances accepts across their listen queues.
    if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      return fail("setsockopt(SO_REUSEPORT)");
    }
  }
  if (!set_nonblocking(listen_fd_)) return fail("fcntl(listen)");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + options_.host + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 512) != 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe(signal_pipe_) != 0) return fail("pipe");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned event_threads =
      options_.event_threads > 0 ? options_.event_threads : std::min(4u, hw);
  const unsigned compute_threads =
      options_.compute_threads > 0 ? options_.compute_threads : hw;

  for (unsigned i = 0; i < event_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->server = this;
    loop->index = i;
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd < 0) {
      loops_.push_back(std::move(loop));
      return fail("epoll_create1");
    }
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->wake_fd < 0) {
      loops_.push_back(std::move(loop));
      return fail("eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = kWakeTag;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev) != 0) {
      loops_.push_back(std::move(loop));
      return fail("epoll_ctl(wake)");
    }
    // Every loop watches the one listening socket; EPOLLEXCLUSIVE makes the
    // kernel wake a single loop per readiness burst instead of thundering
    // every epoll instance.
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.ptr = kListenTag;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      loops_.push_back(std::move(loop));
      return fail("epoll_ctl(listen)");
    }
    loops_.push_back(std::move(loop));
  }

  running_.store(true, std::memory_order_seq_cst);
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    loop->thread = std::thread([this, raw] { loop_run(*raw); });
  }
  compute_threads_.reserve(compute_threads);
  for (unsigned i = 0; i < compute_threads; ++i) {
    compute_threads_.emplace_back([this] { compute_loop(); });
  }
  signal_thread_ = std::thread([this] { signal_loop(); });
  return true;
}

bool Server::install_signal_handlers(Server* server) {
  if (server == nullptr || server->signal_pipe_[1] < 0) return false;
  g_signal_fd.store(server->signal_pipe_[1], std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = csr_serve_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  return ::sigaction(SIGTERM, &action, nullptr) == 0 &&
         ::sigaction(SIGINT, &action, nullptr) == 0;
}

void Server::signal_loop() {
  // Blocks on the self-pipe; one byte = one drain request.
  pollfd pfd{signal_pipe_[0], POLLIN, 0};
  while (running_.load(std::memory_order_relaxed)) {
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready <= 0) continue;
    char byte = 0;
    if (::read(signal_pipe_[0], &byte, 1) == 1) {
      request_drain();
      return;
    }
  }
}

// --- event loop --------------------------------------------------------------

void Server::loop_run(Loop& loop) {
  std::vector<epoll_event> events(256);
  while (!loop.stop.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(loop.epoll_fd, events.data(),
                               static_cast<int>(events.size()),
                               options_.poll_interval_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      void* ptr = events[i].data.ptr;
      if (ptr == kListenTag) {
        accept_ready(loop);
      } else if (ptr == kWakeTag) {
        handle_wake(loop);
      } else {
        auto* conn = static_cast<Connection*>(ptr);
        if (conn->fd < 0) continue;  // destroyed earlier in this batch
        if ((events[i].events & EPOLLOUT) != 0) {
          flush(loop, conn);
          maybe_close(loop, conn);
        }
        if (conn->fd >= 0 &&
            (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
          conn_read(loop, conn);
        }
      }
    }
    for (Connection* conn : loop.graveyard) delete conn;
    loop.graveyard.clear();
  }

  // Final pass: flush any completions posted before the stop, then tear
  // down every connection still pinned here.
  handle_wake(loop);
  for (Connection* conn : loop.graveyard) delete conn;
  loop.graveyard.clear();
  for (auto& [fd, conn] : loop.conns) {
    flush(loop, conn);  // best-effort
    ::close(fd);
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
    delete conn;
  }
  loop.conns.clear();
  ServerMetrics::get().open_connections.set(
      static_cast<std::int64_t>(open_connections_.load(std::memory_order_relaxed)));
}

void Server::wake(Loop& loop) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(loop.wake_fd, &one, sizeof(one));
}

void Server::accept_ready(Loop& loop) {
  ServerMetrics& metrics = ServerMetrics::get();
  while (running_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: burst drained
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (draining_.load(std::memory_order_relaxed)) {
      // Keep accepting during drain so new arrivals get an immediate 503
      // instead of hanging in the listen backlog until their own timeout.
      reject_connection(fd, "draining", "server is draining");
      continue;
    }
    if (open_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      reject_connection(fd, "overloaded", "connection limit reached");
      continue;
    }
    auto* conn = new Connection(fd, options_.http_limits);
    loop.conns.emplace(fd, conn);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    metrics.connections.increment();
    metrics.open_connections.set(
        static_cast<std::int64_t>(open_connections_.load(std::memory_order_relaxed)));
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.ptr = conn;
    if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      loop.conns.erase(fd);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
      ::close(fd);
      delete conn;
    }
  }
}

void Server::reject_connection(int fd, std::string_view code,
                               std::string_view message) {
  ServerMetrics::get().rejected.increment();
  connections_rejected_.fetch_add(1, std::memory_order_relaxed);
  send_all(fd, render_response(
                   503, "application/json",
                   error_body(code, message, options_.retry_after_seconds),
                   /*keep_alive=*/false,
                   {"Retry-After: " + std::to_string(options_.retry_after_seconds)}));
  ::close(fd);
}

void Server::conn_read(Loop& loop, Connection* conn) {
  char buffer[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->parser.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
      continue;  // edge-triggered: drain to EAGAIN
    }
    if (n == 0) {
      conn->peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->dead = true;
    break;
  }
  if (!conn->dead) drain_requests(loop, conn);
  flush(loop, conn);
  maybe_close(loop, conn);
}

void Server::drain_requests(Loop& loop, Connection* conn) {
  ServerMetrics& metrics = ServerMetrics::get();
  while (true) {
    HttpRequest request;
    const ParseStatus status = conn->parser.next_request(&request);
    if (status == ParseStatus::kNeedMore) break;
    if (status == ParseStatus::kError) {
      metrics.parse_errors.increment();
      const std::uint64_t seq = conn->next_seq++;
      enqueue_response(
          conn, seq,
          render_response(conn->parser.error_status(), "application/json",
                          error_body_for(conn->parser.error_status(),
                                         conn->parser.error_reason()),
                          /*keep_alive=*/false));
      break;  // parser is poisoned; close after the error flushes
    }
    ++conn->served;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    metrics.requests.increment();
    dispatch(loop, conn, conn->next_seq++, std::move(request));
  }
}

void Server::dispatch(Loop& loop, Connection* conn, std::uint64_t seq,
                      HttpRequest request) {
  const bool keep = request.keep_alive();

  if (request.target == "/v1/sweep" && request.method == "POST") {
    // The inline path: memo hit, parse rejection, or all-cells-cached —
    // answered on this event thread without touching the pool.
    Query query;
    QueryResult result;
    if (service_.try_fast(request.body, &query, &result)) {
      enqueue_response(conn, seq,
                       render_result(result, keep && !draining_.load(
                                                         std::memory_order_relaxed)));
      return;
    }
    // A deadline can also ride as a header, for clients that treat the body
    // as an opaque query document; the body's deadline_ms wins.
    if (query.deadline_seconds == 0) {
      if (const auto header = request.header("x-csr-deadline-ms")) {
        const double ms = std::strtod(std::string(*header).c_str(), nullptr);
        if (ms > 0) query.deadline_seconds = ms / 1000.0;
      }
    }
    // Bounded admission to the compute pool: shed, don't buffer.
    if (inflight_jobs_.load(std::memory_order_relaxed) >= options_.max_inflight) {
      ServerMetrics::get().shed_requests.increment();
      QueryResult shed;
      shed.status = 503;
      shed.code = "overloaded";
      shed.error = "compute queue full";
      shed.body = error_body("overloaded", "compute queue full",
                             options_.retry_after_seconds);
      enqueue_response(conn, seq,
                       render_result(shed, keep && !draining_.load(
                                                       std::memory_order_relaxed)));
      return;
    }
    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().inflight.set(
        static_cast<std::int64_t>(inflight_jobs_.load(std::memory_order_relaxed)));
    ++conn->inflight;
    {
      const std::lock_guard<std::mutex> lock(pool_mutex_);
      pool_queue_.push_back(Job{&loop, conn, seq, std::move(query), keep});
    }
    pool_cv_.notify_one();
    return;
  }

  // Every other endpoint is cheap: serve it inline through the reference
  // router (enqueue_response applies the drain flip).
  enqueue_response(conn, seq, route(request));
}

std::string Server::render_result(const QueryResult& result, bool keep) const {
  std::vector<std::string> extra;
  if (result.status == 200) {
    extra.push_back(std::string("X-Csr-Cache: ") +
                    (result.cache_hits == result.cells ? "hit"
                     : result.cache_hits > 0           ? "partial"
                                                       : "miss"));
    if (result.coalesced) extra.push_back("X-Csr-Coalesced: 1");
  } else if (result.status == 503) {
    extra.push_back("Retry-After: " + std::to_string(options_.retry_after_seconds));
  }
  return render_response(result.status, result.content_type, result.body, keep,
                         extra);
}

void Server::enqueue_response(Connection* conn, std::uint64_t seq,
                              std::string response) {
  // Drain may have begun after this response was rendered; the advertised
  // Connection header must match the close that follows.
  if (draining_.load(std::memory_order_relaxed)) force_close_header(&response);
  if (advertises_close(response)) conn->close_seq = std::min(conn->close_seq, seq);
  conn->ready.emplace(seq, std::move(response));
  // Append every response whose turn has come; responses sequenced after a
  // closing one are dropped — the connection is ending.
  while (true) {
    const auto it = conn->ready.find(conn->next_flush);
    if (it == conn->ready.end()) break;
    if (conn->next_flush <= conn->close_seq) conn->outbox += it->second;
    conn->ready.erase(it);
    ++conn->next_flush;
  }
}

void Server::flush(Loop& loop, Connection* conn) {
  if (conn->fd < 0 || conn->dead) return;
  while (conn->outbox_off < conn->outbox.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->outbox.data() + conn->outbox_off,
               conn->outbox.size() - conn->outbox_off, MSG_NOSIGNAL);
    if (n >= 0) {
      conn->outbox_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn->want_write) {
        conn->want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
        ev.data.ptr = conn;
        ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
      }
      return;
    }
    conn->dead = true;
    return;
  }
  // Fully flushed: reclaim the buffer and disarm EPOLLOUT.
  conn->outbox.clear();
  conn->outbox_off = 0;
  if (conn->want_write) {
    conn->want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.ptr = conn;
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }
}

void Server::maybe_close(Loop& loop, Connection* conn) {
  if (conn->fd < 0) return;
  if (conn->dead) {
    // Transport error: responses have nowhere to go, but completions still
    // in the pool reference this object — defer until they drain.
    if (conn->inflight == 0) destroy_connection(loop, conn);
    return;
  }
  if (conn->outbox_off < conn->outbox.size()) return;  // still flushing
  if (conn->inflight > 0) return;
  if (conn->next_flush > conn->close_seq) {
    destroy_connection(loop, conn);  // final response delivered
    return;
  }
  if (conn->ready.empty() &&
      (conn->peer_closed || draining_.load(std::memory_order_relaxed))) {
    // Peer went away, or drain reaps idle keep-alive connections.
    destroy_connection(loop, conn);
  }
}

void Server::destroy_connection(Loop& loop, Connection* conn) {
  observe::Span span("serve", "connection");
  span.arg("requests", conn->served);
  loop.conns.erase(conn->fd);
  ::close(conn->fd);
  conn->fd = -1;
  loop.graveyard.push_back(conn);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  ServerMetrics::get().open_connections.set(
      static_cast<std::int64_t>(open_connections_.load(std::memory_order_relaxed)));
}

void Server::handle_wake(Loop& loop) {
  std::uint64_t drained = 0;
  while (::read(loop.wake_fd, &drained, sizeof(drained)) > 0) {
  }
  std::vector<Completion> batch;
  {
    const std::lock_guard<std::mutex> lock(loop.mutex);
    batch.swap(loop.completions);
  }
  for (Completion& comp : batch) {
    Connection* conn = comp.conn;
    --conn->inflight;
    if (conn->fd < 0 || conn->dead) {
      maybe_close(loop, conn);
      continue;
    }
    const bool keep =
        comp.keep && !draining_.load(std::memory_order_relaxed);
    enqueue_response(conn, comp.seq, render_result(comp.result, keep));
    flush(loop, conn);
    maybe_close(loop, conn);
  }
  if (draining_.load(std::memory_order_relaxed)) {
    // Reap idle keep-alive connections. Snapshot the fds: maybe_close
    // mutates the map.
    std::vector<int> fds;
    fds.reserve(loop.conns.size());
    for (const auto& [fd, conn] : loop.conns) fds.push_back(fd);
    for (const int fd : fds) {
      const auto it = loop.conns.find(fd);
      if (it != loop.conns.end()) maybe_close(loop, it->second);
    }
  }
}

// --- compute pool ------------------------------------------------------------

void Server::compute_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      pool_cv_.wait(lock, [&] { return pool_stop_ || !pool_queue_.empty(); });
      if (pool_queue_.empty()) return;  // stopping and drained
      job = std::move(pool_queue_.front());
      pool_queue_.pop_front();
      ++pool_active_;
    }
    QueryResult result = service_.execute(job.query);
    {
      const std::lock_guard<std::mutex> lock(job.loop->mutex);
      job.loop->completions.push_back(
          Completion{job.conn, job.seq, std::move(result), job.keep});
    }
    wake(*job.loop);
    inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
    ServerMetrics::get().inflight.set(
        static_cast<std::int64_t>(inflight_jobs_.load(std::memory_order_relaxed)));
    {
      const std::lock_guard<std::mutex> lock(pool_mutex_);
      --pool_active_;
      if (pool_queue_.empty() && pool_active_ == 0) pool_idle_cv_.notify_all();
    }
  }
}

// --- routing -----------------------------------------------------------------

std::string Server::benchmarks_body() const {
  // The full request vocabulary, for query authors hitting the 422 on
  // typos: every enum axis comes straight off the shared EnumNames tables,
  // so a new engine (e.g. opt-exact) appears here the moment it exists.
  std::string body = "{\"benchmarks\": [";
  bool first = true;
  for (const auto& info : benchmarks::all_graphs()) {
    if (!first) body += ", ";
    first = false;
    body += '"' + info.name + '"';
  }
  // The nested (2-D) family is a separate list: these names take a
  // "shapes" axis ([rows, cols] pairs) instead of "trip_counts".
  body += "], \"nested_benchmarks\": [";
  first = true;
  for (const auto& info : mdfg::md_benchmarks()) {
    if (!first) body += ", ";
    first = false;
    body += '"' + info.name + '"';
  }
  const auto append_axis = [&body](std::string_view axis, const auto& entries) {
    body += "], \"";
    body += axis;
    body += "\": [";
    bool axis_first = true;
    for (const auto& [value, name] : entries) {
      static_cast<void>(value);
      if (!axis_first) body += ", ";
      axis_first = false;
      body += '"';
      body += name;
      body += '"';
    }
  };
  append_axis("engines", EnumNames<driver::Engine>::entries);
  append_axis("exec_engines", EnumNames<driver::ExecEngine>::entries);
  append_axis("transforms", EnumNames<driver::Transform>::entries);
  // Response column vocabulary, straight off the export schema — a new
  // column (e.g. measured_size) is advertised the moment exports carry it.
  body += "], \"columns\": [";
  bool column_first = true;
  for (const std::string_view column : driver::kCsvColumns) {
    if (!column_first) body += ", ";
    column_first = false;
    body += '"';
    body += column;
    body += '"';
  }
  body += "], \"formats\": [\"json\", \"csv\"]}\n";
  return body;
}

std::string Server::version_body() const {
  std::string body = "{\"service\": \"csr-serve\", \"journal_payload_version\": \"";
  body += driver::journal_payload_version();
  body += "\", \"columns\": [";
  bool first = true;
  for (const std::string_view column : driver::kCsvColumns) {
    if (!first) body += ", ";
    first = false;
    body += '"';
    body += column;
    body += '"';
  }
  body += "], \"formats\": [\"json\", \"csv\"], \"compiler\": \"";
  body += json_escape(__VERSION__);
  body += "\", \"cxx_standard\": ";
  body += std::to_string(__cplusplus);
  body += ", \"batch\": {\"width\": ";
  body += std::to_string(batch_width_);
  body += ", \"coalesce\": ";
  body += coalesce_ ? "true" : "false";
  body += "}}\n";
  return body;
}

std::string Server::route(const HttpRequest& request) {
  const bool keep = request.keep_alive();
  const auto method_not_allowed = [&](std::string_view allow) {
    return render_response(405, "application/json",
                           error_body_for(405, "method not allowed"), keep,
                           {"Allow: " + std::string(allow)});
  };

  if (request.target == "/healthz") {
    if (request.method != "GET") return method_not_allowed("GET");
    if (draining_.load(std::memory_order_relaxed)) {
      return render_response(503, "application/json",
                             error_body("draining", "server is draining",
                                        options_.retry_after_seconds),
                             keep,
                             {"Retry-After: " +
                              std::to_string(options_.retry_after_seconds)});
    }
    return render_response(200, "text/plain", "ok\n", keep);
  }

  if (request.target == "/metrics") {
    if (request.method != "GET") return method_not_allowed("GET");
    return render_response(200, "text/plain; version=0.0.4",
                           observe::MetricsRegistry::global().to_prometheus(),
                           keep);
  }

  if (request.target == "/v1/benchmarks") {
    if (request.method != "GET") return method_not_allowed("GET");
    return render_response(200, "application/json", benchmarks_body(), keep);
  }

  if (request.target == "/v1/version") {
    if (request.method != "GET") return method_not_allowed("GET");
    return render_response(200, "application/json", version_body(), keep);
  }

  if (request.target == "/v1/sweep") {
    if (request.method != "POST") return method_not_allowed("POST");
    QueryResult rejection;
    auto query = parse_query(request.body, &rejection);
    if (!query) {
      return render_response(rejection.status, rejection.content_type,
                             rejection.body, keep);
    }
    // A deadline can also ride as a header, for clients that treat the body
    // as an opaque query document; the body's deadline_ms wins.
    if (query->deadline_seconds == 0) {
      if (const auto header = request.header("x-csr-deadline-ms")) {
        const double ms = std::strtod(std::string(*header).c_str(), nullptr);
        if (ms > 0) query->deadline_seconds = ms / 1000.0;
      }
    }
    return render_result(service_.execute(*query), keep);
  }

  return render_response(404, "application/json",
                         error_body_for(404, "unknown endpoint"), keep);
}

// --- lifecycle ---------------------------------------------------------------

void Server::request_drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  ServerMetrics::get().draining.set(1);
  observe::Span span("serve", "drain");
  for (auto& loop : loops_) wake(*loop);
  {
    // Lock before notifying so a waiter between predicate check and wait
    // cannot miss the wakeup.
    const std::lock_guard<std::mutex> lock(drain_mutex_);
  }
  drain_cv_.notify_all();
}

void Server::wait_until_drained() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [&] {
    return draining_.load(std::memory_order_relaxed) ||
           !running_.load(std::memory_order_relaxed);
  });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  request_drain();

  // Quiesce the compute pool first: in-flight sweeps finish and post their
  // completions while the loops are still alive to flush them.
  {
    std::unique_lock<std::mutex> lock(pool_mutex_);
    pool_idle_cv_.wait(lock,
                       [&] { return pool_queue_.empty() && pool_active_ == 0; });
    pool_stop_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& worker : compute_threads_) {
    if (worker.joinable()) worker.join();
  }
  compute_threads_.clear();

  for (auto& loop : loops_) {
    loop->stop.store(true, std::memory_order_relaxed);
    wake(*loop);
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    if (loop->wake_fd >= 0) ::close(loop->wake_fd);
  }
  loops_.clear();

  if (signal_thread_.joinable()) signal_thread_.join();
  if (g_signal_fd.load(std::memory_order_relaxed) == signal_pipe_[1]) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
  }
  for (int& fd : signal_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_stop_ = false;  // allow a future start() on the same object
  }
  ServerMetrics::get().draining.set(0);
  draining_.store(false, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(drain_mutex_);
  }
  drain_cv_.notify_all();
}

}  // namespace csr::serve
