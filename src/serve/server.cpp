#include "serve/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "benchmarks/benchmarks.hpp"
#include "driver/export_schema.hpp"
#include "observe/observe.hpp"

namespace csr::serve {

namespace {

/// Server-level metric slice (docs/OBSERVABILITY.md).
struct ServerMetrics {
  observe::Counter& connections;
  observe::Counter& rejected;
  observe::Counter& requests;
  observe::Counter& parse_errors;
  observe::Gauge& queue_depth;
  observe::Gauge& draining;

  static ServerMetrics& get() {
    static ServerMetrics metrics = [] {
      auto& reg = observe::MetricsRegistry::global();
      return ServerMetrics{
          reg.counter("csr_serve_connections_total", "Connections accepted"),
          reg.counter("csr_serve_connections_rejected_total",
                      "Connections shed by admission control or drain"),
          reg.counter("csr_serve_requests_total", "HTTP requests served"),
          reg.counter("csr_serve_parse_errors_total",
                      "Connections closed on a protocol violation"),
          reg.gauge("csr_serve_queue_depth", "Accepted connections awaiting a worker"),
          reg.gauge("csr_serve_draining", "1 while graceful drain is in progress"),
      };
    }();
    return metrics;
  }
};

/// Writes all of `data` to `fd`; best-effort, returns false on any error.
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// The write end of the registered server's signal pipe; the handler only
/// touches this (async-signal-safe write of one byte).
std::atomic<int> g_signal_fd{-1};

extern "C" void csr_serve_signal_handler(int) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

Server::Server(SweepService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + options_.host + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe(signal_pipe_) != 0) return fail("pipe");

  running_.store(true, std::memory_order_seq_cst);
  accept_thread_ = std::thread([this] { accept_loop(); });
  signal_thread_ = std::thread([this] { signal_loop(); });
  workers_.reserve(options_.worker_threads);
  for (unsigned i = 0; i < std::max(1u, options_.worker_threads); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

bool Server::install_signal_handlers(Server* server) {
  if (server == nullptr || server->signal_pipe_[1] < 0) return false;
  g_signal_fd.store(server->signal_pipe_[1], std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = csr_serve_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  return ::sigaction(SIGTERM, &action, nullptr) == 0 &&
         ::sigaction(SIGINT, &action, nullptr) == 0;
}

void Server::signal_loop() {
  // Blocks on the self-pipe; one byte = one drain request. Closing the read
  // end in stop() unblocks the poll.
  pollfd pfd{signal_pipe_[0], POLLIN, 0};
  while (running_.load(std::memory_order_relaxed)) {
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready <= 0) continue;
    char byte = 0;
    if (::read(signal_pipe_[0], &byte, 1) == 1) {
      request_drain();
      return;
    }
  }
}

void Server::accept_loop() {
  ServerMetrics& metrics = ServerMetrics::get();
  pollfd pfd{listen_fd_, POLLIN, 0};
  while (running_.load(std::memory_order_relaxed)) {
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (draining_.load(std::memory_order_relaxed)) {
      // Keep accepting during drain so new arrivals get an immediate 503
      // instead of hanging in the listen backlog until their own timeout.
      reject_connection(fd);
      continue;
    }

    bool admitted = false;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() < options_.queue_limit &&
          !draining_.load(std::memory_order_relaxed)) {
        queue_.push_back(fd);
        admitted = true;
        metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
      }
    }
    if (admitted) {
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      metrics.connections.increment();
      queue_cv_.notify_one();
    } else {
      // Backpressure: shed at the front door with an explicit retry hint —
      // a full queue means the workers are saturated, and buffering more
      // would only convert overload into latency.
      reject_connection(fd);
    }
  }
}

void Server::reject_connection(int fd) {
  ServerMetrics::get().rejected.increment();
  connections_rejected_.fetch_add(1, std::memory_order_relaxed);
  const std::string body = draining_.load(std::memory_order_relaxed)
                               ? "draining\n"
                               : "server overloaded\n";
  send_all(fd, render_response(
                   503, "text/plain", body, /*keep_alive=*/false,
                   {"Retry-After: " + std::to_string(options_.retry_after_seconds)}));
  ::close(fd);
}

int Server::next_connection() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_cv_.wait(lock, [&] {
    return !queue_.empty() || !running_.load(std::memory_order_relaxed);
  });
  if (queue_.empty()) return -1;
  const int fd = queue_.front();
  queue_.pop_front();
  ServerMetrics::get().queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  return fd;
}

void Server::worker_loop() {
  while (true) {
    const int fd = next_connection();
    if (fd < 0) return;
    if (draining_.load(std::memory_order_relaxed)) {
      // Queued but never served before drain began: shed, don't start.
      reject_connection(fd);
      continue;
    }
    handle_connection(fd);
  }
}

void Server::handle_connection(int fd) {
  ServerMetrics& metrics = ServerMetrics::get();
  observe::Span span("serve", "connection");

  // Bounded reads let a worker notice drain/stop while a keep-alive peer
  // is idle.
  timeval tv{};
  tv.tv_sec = options_.poll_interval_ms / 1000;
  tv.tv_usec = (options_.poll_interval_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  RequestParser parser(options_.http_limits);
  char buffer[16 * 1024];
  std::uint64_t served = 0;

  while (running_.load(std::memory_order_relaxed)) {
    // Drain every already-buffered (pipelined) request before reading more.
    bool close_connection = false;
    while (true) {
      HttpRequest request;
      const ParseStatus status = parser.next_request(&request);
      if (status == ParseStatus::kNeedMore) break;
      if (status == ParseStatus::kError) {
        metrics.parse_errors.increment();
        send_all(fd, render_response(parser.error_status(), "text/plain",
                                     parser.error_reason() + "\n",
                                     /*keep_alive=*/false));
        close_connection = true;
        break;
      }
      ++served;
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      metrics.requests.increment();
      std::string response = route(request);
      // Decide persistence after route() returns: drain may have begun while
      // this request was computing, and the advertised Connection header must
      // match the close that follows.
      const bool keep = request.keep_alive() &&
                        !draining_.load(std::memory_order_relaxed);
      // route() renders with keep-alive; flip the connection header when
      // this response must be the last (client asked, or drain began).
      if (!keep) {
        const std::size_t pos = response.find("Connection: keep-alive");
        if (pos != std::string::npos) {
          response.replace(pos, std::strlen("Connection: keep-alive"),
                           "Connection: close");
        }
      }
      if (!send_all(fd, response)) close_connection = true;
      if (!keep) close_connection = true;
      if (close_connection) break;
    }
    if (close_connection) break;
    if (draining_.load(std::memory_order_relaxed)) break;  // idle + draining

    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      parser.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    } else if (n == 0) {
      break;  // peer closed
    } else if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      continue;  // idle timeout tick: re-check running/draining
    } else {
      break;
    }
  }
  span.arg("requests", served);
  ::close(fd);
}

std::string Server::route(const HttpRequest& request) {
  const bool keep = request.keep_alive();

  if (request.target == "/healthz") {
    if (request.method != "GET") {
      return render_response(405, "text/plain", "method not allowed\n", keep);
    }
    if (draining_.load(std::memory_order_relaxed)) {
      return render_response(503, "text/plain", "draining\n", keep);
    }
    return render_response(200, "text/plain", "ok\n", keep);
  }

  if (request.target == "/metrics") {
    if (request.method != "GET") {
      return render_response(405, "text/plain", "method not allowed\n", keep);
    }
    return render_response(200, "text/plain; version=0.0.4",
                           observe::MetricsRegistry::global().to_prometheus(),
                           keep);
  }

  if (request.target == "/v1/benchmarks") {
    if (request.method != "GET") {
      return render_response(405, "text/plain", "method not allowed\n", keep);
    }
    // The full request vocabulary, for query authors hitting the 422 on
    // typos: every enum axis comes straight off the shared EnumNames tables,
    // so a new engine (e.g. opt-exact) appears here the moment it exists.
    std::string body = "{\"benchmarks\": [";
    bool first = true;
    for (const auto& info : benchmarks::all_graphs()) {
      if (!first) body += ", ";
      first = false;
      body += '"' + info.name + '"';
    }
    const auto append_axis = [&body](std::string_view axis, const auto& entries) {
      body += "], \"";
      body += axis;
      body += "\": [";
      bool axis_first = true;
      for (const auto& [value, name] : entries) {
        static_cast<void>(value);
        if (!axis_first) body += ", ";
        axis_first = false;
        body += '"';
        body += name;
        body += '"';
      }
    };
    append_axis("engines", EnumNames<driver::Engine>::entries);
    append_axis("exec_engines", EnumNames<driver::ExecEngine>::entries);
    append_axis("transforms", EnumNames<driver::Transform>::entries);
    // Response column vocabulary, straight off the export schema — a new
    // column (e.g. measured_size) is advertised the moment exports carry it.
    body += "], \"columns\": [";
    bool column_first = true;
    for (const std::string_view column : driver::kCsvColumns) {
      if (!column_first) body += ", ";
      column_first = false;
      body += '"';
      body += column;
      body += '"';
    }
    body += "], \"formats\": [\"json\", \"csv\"]}\n";
    return render_response(200, "application/json", body, keep);
  }

  if (request.target == "/v1/sweep") {
    if (request.method != "POST") {
      return render_response(405, "text/plain", "use POST\n", keep,
                             {"Allow: POST"});
    }
    QueryResult rejection;
    auto query = parse_query(request.body, &rejection);
    if (!query) {
      return render_response(rejection.status, rejection.content_type,
                             rejection.body, keep);
    }
    // A deadline can also ride as a header, for clients that treat the body
    // as an opaque query document; the body's deadline_ms wins.
    if (query->deadline_seconds == 0) {
      if (const auto header = request.header("x-csr-deadline-ms")) {
        const double ms = std::strtod(std::string(*header).c_str(), nullptr);
        if (ms > 0) query->deadline_seconds = ms / 1000.0;
      }
    }
    const QueryResult result = service_.execute(*query);
    std::vector<std::string> extra;
    if (result.status == 200) {
      extra.push_back(std::string("X-Csr-Cache: ") +
                      (result.cache_hits == result.cells ? "hit"
                       : result.cache_hits > 0           ? "partial"
                                                         : "miss"));
      if (result.coalesced) extra.push_back("X-Csr-Coalesced: 1");
    } else if (result.status == 503) {
      extra.push_back("Retry-After: " +
                      std::to_string(options_.retry_after_seconds));
    }
    return render_response(result.status, result.content_type, result.body,
                           keep, extra);
  }

  return render_response(404, "text/plain", "unknown endpoint\n", keep);
}

void Server::request_drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  ServerMetrics::get().draining.set(1);
  observe::Span span("serve", "drain");

  // Shed everything queued but unserved; workers holding connections finish
  // their in-flight requests and close on their next loop iteration.
  std::deque<int> orphaned;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    orphaned.swap(queue_);
  }
  for (const int fd : orphaned) reject_connection(fd);
  queue_cv_.notify_all();
  drain_cv_.notify_all();
}

void Server::wait_until_drained() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drain_cv_.wait(lock, [&] {
    return draining_.load(std::memory_order_relaxed) ||
           !running_.load(std::memory_order_relaxed);
  });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  request_drain();
  queue_cv_.notify_all();
  drain_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (signal_thread_.joinable()) signal_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (g_signal_fd.load(std::memory_order_relaxed) == signal_pipe_[1]) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
  }
  for (int& fd : signal_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    for (const int fd : queue_) ::close(fd);
    queue_.clear();
  }
  ServerMetrics::get().draining.set(0);
}

}  // namespace csr::serve
