#pragma once

/// \file json.hpp
/// A small recursive-descent JSON reader for the service's request bodies.
/// The repo's exporters *write* JSON (driver/export_schema.hpp); this is the
/// missing read half, scoped to what an untrusted network body needs:
///
///   * full value model (null, bool, number, string, array, object) with a
///     depth limit, so a 10 KiB "[[[[..." cannot recurse the stack away;
///   * numbers keep both an int64 view (exact when the text is integral and
///     in range) and a double view, because request fields like trip counts
///     must not round-trip through floating point;
///   * strict by default: trailing garbage after the value is an error —
///     a request body is one JSON value, not a stream;
///   * errors are returned (JsonParseError with byte offset), never thrown
///     past the service boundary; the server maps them onto 400 responses.
///
/// Duplicate object keys resolve last-writer-wins, matching the journal's
/// replay semantics for duplicate records.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace csr::serve {

class JsonValue;

/// Parse failure: what and where (byte offset into the input).
struct JsonError {
  std::string message;
  std::size_t offset = 0;
};

/// One JSON value. A small tagged union over owned containers — request
/// bodies are tiny, so clarity beats allocation tricks.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_double() const { return double_; }
  /// The exact integer value, when the literal was integral and fits int64.
  [[nodiscard]] std::optional<std::int64_t> as_int() const { return int_; }
  /// True when the literal was integral but did not fit int64 (std::strtoll
  /// reported ERANGE). as_int() is nullopt for such values; callers needing
  /// exactness can turn this into a typed "out of range" rejection instead
  /// of a generic "not an integer" one.
  [[nodiscard]] bool int_out_of_range() const { return int_out_of_range_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& as_array() const { return array_; }
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;

  // Builders used by the parser (and tests).
  static JsonValue null();
  static JsonValue boolean(bool value);
  static JsonValue number(double value, std::optional<std::int64_t> exact,
                          bool int_out_of_range = false);
  static JsonValue string(std::string value);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double double_ = 0.0;
  std::optional<std::int64_t> int_;
  bool int_out_of_range_ = false;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed). On failure returns nullopt and, when `error` is
/// non-null, the reason and offset. `max_depth` bounds container nesting.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  JsonError* error = nullptr,
                                                  std::size_t max_depth = 64);

}  // namespace csr::serve
