#pragma once

/// \file cache.hpp
/// The serve layer's in-memory result cache: string key → string payload,
/// least-recently-used eviction, sharded by key hash so concurrent request
/// threads contend on different mutexes. Keys are the *same* content hashes
/// the persistent journal uses (driver::journal_key, built on
/// support/hash.hpp's content_key), which is what lets the cache be
/// warm-started verbatim from a journal snapshot at boot and guarantees the
/// online and offline caches can never disagree about identity.
///
/// Capacity is a total entry count distributed *exactly* across shards
/// (base = total/shards with the remainder spread one entry each over the
/// first total%shards shards), so Σ per-shard capacities == capacity() and
/// the cache can never hold more entries than configured. Each shard runs an
/// exact LRU under its own mutex. Hit/miss/eviction counts are plain
/// atomics, mirrored into the global MetricsRegistry by the service layer
/// (docs/OBSERVABILITY.md).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace csr::serve {

class ShardedLruCache {
 public:
  /// `capacity` = max total entries (at least one per shard);
  /// `shards` is rounded up to a power of two for mask-based selection.
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 16);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// The cached payload, refreshing recency; nullopt on miss.
  [[nodiscard]] std::optional<std::string> get(const std::string& key);

  /// Inserts or overwrites; may evict the shard's least-recent entry.
  void put(const std::string& key, std::string payload);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Hard upper bound on size(): Σ per-shard capacities. Equals the
  /// constructor's `capacity` argument, raised to shard_count() when the
  /// request was below one entry per shard.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recent. List nodes own the (key, payload) pair so the
    /// index can point at stable storage.
    std::list<std::pair<std::string, std::string>> lru;
    std::unordered_map<std::string, std::list<std::pair<std::string, std::string>>::iterator>
        index;
  };

  std::size_t shard_index(const std::string& key) const;

  std::vector<Shard> shards_;
  /// shard_capacity_[i] is shard i's exact entry budget; sums to capacity_.
  std::vector<std::size_t> shard_capacity_;
  std::size_t capacity_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace csr::serve
