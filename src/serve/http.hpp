#pragma once

/// \file http.hpp
/// A dependency-free, incremental HTTP/1.1 message layer for the query
/// service — plain POSIX sockets feed raw bytes in, parsed requests come
/// out, rendered responses go back. Scope is deliberately the subset the
/// server speaks (docs/SERVING.md pins the protocol):
///
///   * request line + headers + fixed Content-Length bodies;
///   * keep-alive and pipelining: the parser is a push-style state machine
///     over one growing buffer, so a read() that lands two and a half
///     requests yields two complete ones and keeps the tail;
///   * hard resource bounds: header bytes and body bytes are capped and
///     violations are typed parse errors carrying the HTTP status the
///     connection should die with (431/413), because a networked parser's
///     first job is to bound untrusted input;
///   * no chunked transfer encoding (501 — the clients this serves POST
///     small JSON bodies with explicit lengths).
///
/// The parser performs no I/O and touches no globals, which is what makes
/// it unit-testable byte-by-byte (tests/serve_http_test.cpp) and fuzzable
/// (tests/serve_fuzz_test.cpp) without a socket in sight.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace csr::serve {

/// One parsed request. Header names are lower-cased at parse time (field
/// names are case-insensitive, RFC 9110 §5.1); values keep their bytes with
/// surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   ///< as sent: "GET", "POST", ...
  std::string target;   ///< origin-form target, e.g. "/v1/sweep"
  int version_minor = 1;  ///< HTTP/1.<minor>; only 0 and 1 are accepted
  std::map<std::string, std::string> headers;
  std::string body;

  /// The value of `name` (already lower-case), if present.
  [[nodiscard]] std::optional<std::string_view> header(
      std::string_view name) const;

  /// Connection persistence per RFC 9112: HTTP/1.1 defaults to keep-alive
  /// unless "connection: close"; HTTP/1.0 defaults to close unless
  /// "connection: keep-alive".
  [[nodiscard]] bool keep_alive() const;
};

/// Parser limits. Defaults fit the service's POST-small-JSON workload while
/// keeping a hostile peer from ballooning memory.
struct HttpLimits {
  std::size_t max_header_bytes = 16 * 1024;  ///< request line + all headers
  std::size_t max_body_bytes = 1024 * 1024;  ///< Content-Length ceiling
};

/// Outcome of one next_request() step.
enum class ParseStatus {
  kNeedMore,  ///< no complete request buffered yet; feed more bytes
  kRequest,   ///< one request extracted into *out
  kError,     ///< protocol violation; connection must be closed after
};            ///  sending the suggested status

/// Push-style incremental request parser. feed() appends raw bytes;
/// next_request() extracts at most one complete request per call, so a
/// pipelined burst is drained by looping until kNeedMore. After kError the
/// parser is poisoned (every further call reports the same error) — an
/// HTTP/1.1 byte stream has no resynchronization point after a framing
/// error.
class RequestParser {
 public:
  RequestParser() = default;
  explicit RequestParser(HttpLimits limits) : limits_(limits) {}

  void feed(std::string_view bytes);

  [[nodiscard]] ParseStatus next_request(HttpRequest* out);

  /// After kError: the HTTP status (400/413/431/501/505) and a one-line
  /// reason to send before closing.
  [[nodiscard]] int error_status() const { return error_status_; }
  [[nodiscard]] const std::string& error_reason() const { return error_reason_; }

  /// Bytes buffered but not yet consumed by a returned request.
  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  ParseStatus fail(int status, std::string reason);
  void compact();

  HttpLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already parsed away
  int error_status_ = 0;
  std::string error_reason_;
};

/// Renders a response head + body. `status` picks the standard reason
/// phrase; `extra_headers` are emitted verbatim after Content-Length (each
/// "Name: value", no CRLF). Always emits an explicit Content-Length and a
/// "Connection:" header matching `keep_alive`.
[[nodiscard]] std::string render_response(
    int status, std::string_view content_type, std::string_view body,
    bool keep_alive, const std::vector<std::string>& extra_headers = {});

/// The standard reason phrase for the statuses the server emits
/// ("200" → "OK", "503" → "Service Unavailable", ...; "Unknown" otherwise).
[[nodiscard]] std::string_view status_reason(int status);

}  // namespace csr::serve
