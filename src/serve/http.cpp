#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace csr::serve {

namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeaderEnd = "\r\n\r\n";

bool is_token_char(char c) {
  // RFC 9110 token characters; enough to reject header-name smuggling.
  static constexpr std::string_view kExtra = "!#$%&'*+-.^_`|~";
  return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
         kExtra.find(c) != std::string_view::npos;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

}  // namespace

std::optional<std::string_view> HttpRequest::header(std::string_view name) const {
  const auto it = headers.find(std::string(name));
  if (it == headers.end()) return std::nullopt;
  return std::string_view(it->second);
}

bool HttpRequest::keep_alive() const {
  const auto connection = header("connection");
  const std::string value = connection ? lower(trim(*connection)) : "";
  if (version_minor >= 1) return value != "close";
  return value == "keep-alive";
}

void RequestParser::feed(std::string_view bytes) {
  if (error_status_ != 0) return;  // poisoned; don't buffer unboundedly
  buffer_.append(bytes);
}

ParseStatus RequestParser::fail(int status, std::string reason) {
  error_status_ = status;
  error_reason_ = std::move(reason);
  buffer_.clear();
  consumed_ = 0;
  return ParseStatus::kError;
}

void RequestParser::compact() {
  // Drop the consumed prefix once it dominates the buffer, so a long
  // keep-alive connection doesn't accrete every request it ever served.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

ParseStatus RequestParser::next_request(HttpRequest* out) {
  if (error_status_ != 0) return ParseStatus::kError;
  const std::string_view data = std::string_view(buffer_).substr(consumed_);

  const std::size_t head_end = data.find(kHeaderEnd);
  if (head_end == std::string_view::npos) {
    if (data.size() > limits_.max_header_bytes) {
      return fail(431, "header section exceeds " +
                           std::to_string(limits_.max_header_bytes) + " bytes");
    }
    return ParseStatus::kNeedMore;
  }
  if (head_end > limits_.max_header_bytes) {
    return fail(431, "header section exceeds " +
                         std::to_string(limits_.max_header_bytes) + " bytes");
  }

  HttpRequest req;

  // --- request line: METHOD SP target SP HTTP/1.x --------------------------
  const std::string_view head = data.substr(0, head_end);
  const std::size_t line_end = head.find(kCrlf);
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  {
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos ||
        request_line.find(' ', sp2 + 1) != std::string_view::npos) {
      return fail(400, "malformed request line");
    }
    const std::string_view method = request_line.substr(0, sp1);
    const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = request_line.substr(sp2 + 1);
    if (method.empty() ||
        !std::all_of(method.begin(), method.end(), is_token_char)) {
      return fail(400, "malformed method token");
    }
    if (target.empty() || target[0] != '/') {
      return fail(400, "request target must be origin-form");
    }
    if (version == "HTTP/1.1") {
      req.version_minor = 1;
    } else if (version == "HTTP/1.0") {
      req.version_minor = 0;
    } else if (version.substr(0, 5) == "HTTP/") {
      return fail(505, "unsupported protocol version");
    } else {
      return fail(400, "malformed protocol version");
    }
    req.method = std::string(method);
    req.target = std::string(target);
  }

  // --- header fields -------------------------------------------------------
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{} : head.substr(line_end + 2);
  while (!rest.empty()) {
    std::size_t eol = rest.find(kCrlf);
    if (eol == std::string_view::npos) eol = rest.size();
    const std::string_view line = rest.substr(0, eol);
    rest.remove_prefix(std::min(rest.size(), eol + 2));
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      return fail(400, "obsolete header line folding");
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return fail(400, "malformed header field");
    }
    const std::string_view name = line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), is_token_char)) {
      // Includes the "Header : v" smuggling shape — a space before the
      // colon is not a token character.
      return fail(400, "malformed header field name");
    }
    const std::string_view value = trim(line.substr(colon + 1));
    // Lines were split on CRLF, so a stray CR, LF or NUL here is a bare
    // control byte inside the value — forbidden (RFC 9110 §5.5) and a
    // response-splitting vector if ever echoed.
    if (value.find_first_of(std::string_view("\r\n\0", 3)) !=
        std::string_view::npos) {
      return fail(400, "control character in header value");
    }
    req.headers[lower(name)] = std::string(value);
  }

  // --- body framing --------------------------------------------------------
  if (req.headers.count("transfer-encoding") != 0) {
    return fail(501, "transfer-encoding is not supported");
  }
  std::size_t content_length = 0;
  if (const auto it = req.headers.find("content-length"); it != req.headers.end()) {
    const std::string& value = it->second;
    if (value.empty() ||
        !std::all_of(value.begin(), value.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; })) {
      return fail(400, "malformed content-length");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' ||
        parsed > limits_.max_body_bytes) {
      return fail(413, "body exceeds " + std::to_string(limits_.max_body_bytes) +
                           " bytes");
    }
    content_length = static_cast<std::size_t>(parsed);
  }

  const std::size_t body_start = head_end + kHeaderEnd.size();
  if (data.size() - body_start < content_length) return ParseStatus::kNeedMore;
  req.body = std::string(data.substr(body_start, content_length));

  consumed_ += body_start + content_length;
  compact();
  if (out != nullptr) *out = std::move(req);
  return ParseStatus::kRequest;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 422: return "Unprocessable Content";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string render_response(int status, std::string_view content_type,
                            std::string_view body, bool keep_alive,
                            const std::vector<std::string>& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + ' ';
  out += status_reason(status);
  out += kCrlf;
  if (!content_type.empty()) {
    out += "Content-Type: ";
    out += content_type;
    out += kCrlf;
  }
  out += "Content-Length: " + std::to_string(body.size());
  out += kCrlf;
  out += keep_alive ? "Connection: keep-alive" : "Connection: close";
  out += kCrlf;
  for (const std::string& header : extra_headers) {
    out += header;
    out += kCrlf;
  }
  out += kCrlf;
  out += body;
  return out;
}

}  // namespace csr::serve
