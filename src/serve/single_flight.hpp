#pragma once

/// \file single_flight.hpp
/// Duplicate-suppression for concurrent identical queries: the first caller
/// for a key (the leader) computes; every caller that arrives while that
/// computation is in flight blocks and receives a copy of the same result —
/// a thundering herd of N identical cache-missing requests costs one sweep,
/// not N. (The Go singleflight package popularized the shape; this is the
/// C++ condition-variable rendering.)
///
/// Completed calls are forgotten immediately: memoization across time is the
/// result cache's job (cache.hpp); single-flight only collapses *overlap*.
/// The waiters() accessor exists for the deterministic hammer test — a
/// compute hook can hold the leader until the expected waiters have
/// registered, making "exactly one sweep for 8 concurrent queries" a fact
/// rather than a race (tests/serve_service_test.cpp).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace csr::serve {

/// `Result` must be default-constructible and copyable — every coalesced
/// waiter gets its own copy.
template <typename Result>
class SingleFlight {
 public:
  /// Runs `compute()` for `key`, or waits on the in-flight computation of
  /// the same key. Returns {result, coalesced}: coalesced is true iff this
  /// caller received another caller's result. An exception thrown by
  /// compute() propagates to the leader and is rethrown to every waiter.
  template <typename Compute>
  std::pair<Result, bool> run(const std::string& key, Compute compute) {
    std::shared_ptr<Call> call;
    bool leader = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      auto& slot = calls_[key];
      if (slot == nullptr) {
        slot = std::make_shared<Call>();
        leader = true;
      }
      call = slot;
    }

    if (!leader) {
      waiting_.fetch_add(1, std::memory_order_seq_cst);
      std::unique_lock<std::mutex> lock(call->mutex);
      call->cv.wait(lock, [&] { return call->done; });
      waiting_.fetch_sub(1, std::memory_order_seq_cst);
      if (call->error) std::rethrow_exception(call->error);
      return {call->result, true};
    }

    try {
      Result result = compute();
      finish(key, *call, [&] { call->result = std::move(result); });
      return {call->result, false};
    } catch (...) {
      finish(key, *call, [&] { call->error = std::current_exception(); });
      throw;
    }
  }

  /// Callers currently blocked on someone else's computation (all keys).
  [[nodiscard]] std::size_t waiters() const {
    return waiting_.load(std::memory_order_seq_cst);
  }

 private:
  struct Call {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Result result{};
    std::exception_ptr error;
  };

  template <typename Store>
  void finish(const std::string& key, Call& call, Store store) {
    {
      const std::lock_guard<std::mutex> lock(call.mutex);
      store();
      call.done = true;
    }
    {
      // Forget the call before waking waiters: a request arriving after this
      // point starts a fresh flight instead of latching onto a stale result.
      const std::lock_guard<std::mutex> lock(mutex_);
      calls_.erase(key);
    }
    call.cv.notify_all();
  }

  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Call>> calls_;
  std::atomic<std::size_t> waiting_{0};
};

}  // namespace csr::serve
