#include "serve/cache.hpp"

#include <algorithm>

#include "support/hash.hpp"

namespace csr::serve {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t shards)
    : shards_(round_up_pow2(std::max<std::size_t>(1, shards))) {
  // Distribute the total exactly: rounding every shard up used to let a
  // 16-shard cache exceed the configured capacity by up to 15 entries. The
  // documented "at least one per shard" floor is the only case where the
  // total is raised.
  capacity_ = std::max(capacity, shards_.size());
  const std::size_t base = capacity_ / shards_.size();
  const std::size_t remainder = capacity_ % shards_.size();
  shard_capacity_.assign(shards_.size(), base);
  for (std::size_t i = 0; i < remainder; ++i) ++shard_capacity_[i];
}

std::size_t ShardedLruCache::shard_index(const std::string& key) const {
  return fnv1a64(key) & (shards_.size() - 1);
}

std::optional<std::string> ShardedLruCache::get(const std::string& key) {
  Shard& shard = shards_[shard_index(key)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ShardedLruCache::put(const std::string& key, std::string payload) {
  const std::size_t index = shard_index(key);
  Shard& shard = shards_[index];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->second = std::move(payload);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(payload));
  shard.index[key] = shard.lru.begin();
  if (shard.lru.size() > shard_capacity_[index]) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ShardedLruCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace csr::serve
