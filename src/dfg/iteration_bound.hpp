#pragma once

/// \file iteration_bound.hpp
/// The *iteration bound* of a cyclic DFG (Section 2.1): the maximum, over all
/// directed cycles C, of Σ_{v∈C} t(v) / Σ_{e∈C} d(e). It lower-bounds the
/// iteration period of any static schedule; a schedule achieving it is
/// rate-optimal. Retiming alone reaches it only when it is an integer; a
/// fractional bound p/q requires unfolding by a multiple of q.

#include <optional>

#include "dfg/graph.hpp"
#include "support/rational.hpp"

namespace csr {

/// Computes the iteration bound exactly as a rational.
///
/// Returns std::nullopt for acyclic graphs (no cycle constrains the rate).
/// Throws InvalidArgument when some cycle carries zero total delay (the graph
/// admits no legal schedule).
///
/// Algorithm: Lawler's parametric search. For a test ratio λ = p/q, weight
/// each edge u→v as q·t(u) − p·d(e); some cycle has ratio > λ iff the
/// weighted graph has a positive cycle (Bellman–Ford). Binary search over
/// dyadic λ narrows an interval (lo, hi] to width < 1/D², D = Σ d(e), at
/// which point the interval contains exactly one rational with denominator
/// ≤ D — the bound — recovered exactly with a Stern–Brocot walk. A final
/// exact verification (no positive cycle at B, and a tight zero-weight cycle
/// exists) guards the result.
[[nodiscard]] std::optional<Rational> iteration_bound(const DataFlowGraph& g);

/// Brute-force reference implementation enumerating simple cycles; used to
/// cross-check the parametric search in tests. `max_cycles` caps enumeration.
/// Same return/throw contract as iteration_bound().
[[nodiscard]] std::optional<Rational> iteration_bound_by_enumeration(
    const DataFlowGraph& g, std::size_t max_cycles = 1000000);

/// True when the weighted graph with edge weights q·t(u) − p·d(e) contains a
/// positive-weight cycle, i.e. some cycle has time/delay ratio > p/q.
/// Exposed for tests.
[[nodiscard]] bool has_cycle_ratio_above(const DataFlowGraph& g, const Rational& ratio);

}  // namespace csr
