#pragma once

/// \file algorithms.hpp
/// Graph algorithms over data-flow graphs that the retiming / unfolding /
/// scheduling layers share: zero-delay topological order, cycle period,
/// strongly connected components, reachability and simple-cycle enumeration.

#include <optional>
#include <vector>

#include "dfg/graph.hpp"

namespace csr {

/// True when the subgraph of zero-delay edges contains a cycle — such a graph
/// has no legal static schedule.
[[nodiscard]] bool has_zero_delay_cycle(const DataFlowGraph& g);

/// Topological order of the nodes with respect to zero-delay edges only.
/// Returns std::nullopt when a zero-delay cycle exists.
[[nodiscard]] std::optional<std::vector<NodeId>> zero_delay_topological_order(
    const DataFlowGraph& g);

/// The *cycle period* of Section 2.1: the maximum total computation time of a
/// path containing no delays (including both endpoints). Equals the minimum
/// schedule length of one iteration with unlimited resources.
/// Throws InvalidArgument when the graph has a zero-delay cycle.
[[nodiscard]] int cycle_period(const DataFlowGraph& g);

/// Per-node earliest completion times over zero-delay edges (ASAP finish),
/// i.e. length of the longest zero-delay path ending at each node. The
/// maximum entry equals cycle_period(g).
/// Throws InvalidArgument when the graph has a zero-delay cycle.
[[nodiscard]] std::vector<int> zero_delay_path_lengths(const DataFlowGraph& g);

/// Tarjan strongly connected components. Returns one vector of node ids per
/// component, in reverse topological order of the component DAG.
[[nodiscard]] std::vector<std::vector<NodeId>> strongly_connected_components(
    const DataFlowGraph& g);

/// True when the graph contains at least one directed cycle (of any delay).
[[nodiscard]] bool has_cycle(const DataFlowGraph& g);

/// One simple cycle, as a sequence of edge ids (last edge returns to the
/// first node). `max_cycles` caps the enumeration to keep worst cases
/// bounded; enumeration is DFS-based (Johnson-style blocking is overkill for
/// benchmark-sized graphs but the cap makes pathological graphs safe).
[[nodiscard]] std::vector<std::vector<EdgeId>> enumerate_simple_cycles(
    const DataFlowGraph& g, std::size_t max_cycles = 100000);

}  // namespace csr
