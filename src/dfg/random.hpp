#pragma once

/// \file random.hpp
/// Random legal DFG generation for property-based tests. The generator
/// guarantees legality by construction: forward edges (in a random topological
/// order) may carry any delay ≥ 0, while backward edges always carry ≥ 1
/// delay, so no zero-delay cycle can form.

#include "dfg/graph.hpp"
#include "support/rng.hpp"

namespace csr {

struct RandomDfgOptions {
  std::size_t min_nodes = 3;
  std::size_t max_nodes = 12;
  /// Probability of each forward pair (u before v) receiving an edge.
  double forward_edge_prob = 0.3;
  /// Probability of each backward pair receiving a (delayed) edge.
  double backward_edge_prob = 0.15;
  /// Maximum delay placed on any edge.
  int max_delay = 3;
  /// Probability that a forward edge carries zero delay.
  double zero_delay_prob = 0.7;
  /// Maximum node computation time (1 = unit-time graphs, paper default).
  int max_time = 1;
  /// Ensure the result contains at least one cycle (so the iteration bound
  /// exists) by adding a delayed back edge if none was generated.
  bool ensure_cyclic = true;
  /// Ensure weak connectivity by chaining consecutive nodes when needed.
  bool ensure_connected = true;
};

/// Generates a random legal DFG. Node names are V0, V1, ...
[[nodiscard]] DataFlowGraph random_dfg(SplitMix64& rng, const RandomDfgOptions& options = {});

}  // namespace csr
