#pragma once

/// \file dot.hpp
/// Graphviz DOT rendering of data-flow graphs. Delays are drawn as edge
/// labels (the paper draws them as bar lines); non-unit computation times are
/// appended to the node label.

#include <iosfwd>
#include <string>

#include "dfg/graph.hpp"

namespace csr {

/// Writes `g` to `os` in DOT syntax.
void write_dot(std::ostream& os, const DataFlowGraph& g);

/// DOT text for `g`.
[[nodiscard]] std::string to_dot(const DataFlowGraph& g);

}  // namespace csr
