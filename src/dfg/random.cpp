#include "dfg/random.hpp"

#include "dfg/algorithms.hpp"

#include <string>

#include "support/check.hpp"

namespace csr {

DataFlowGraph random_dfg(SplitMix64& rng, const RandomDfgOptions& options) {
  CSR_REQUIRE(options.min_nodes >= 2, "random DFG needs at least 2 nodes");
  CSR_REQUIRE(options.min_nodes <= options.max_nodes, "min_nodes > max_nodes");
  CSR_REQUIRE(options.max_delay >= 1, "max_delay must be >= 1");
  CSR_REQUIRE(options.max_time >= 1, "max_time must be >= 1");

  const std::size_t n = static_cast<std::size_t>(
      rng.uniform(static_cast<std::int64_t>(options.min_nodes),
                  static_cast<std::int64_t>(options.max_nodes)));
  DataFlowGraph g("random");
  for (std::size_t i = 0; i < n; ++i) {
    g.add_node("V" + std::to_string(i),
               static_cast<int>(rng.uniform(1, options.max_time)));
  }

  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      if (u < v && rng.bernoulli(options.forward_edge_prob)) {
        const int delay = rng.bernoulli(options.zero_delay_prob)
                              ? 0
                              : static_cast<int>(rng.uniform(1, options.max_delay));
        g.add_edge(u, v, delay);
      } else if (u > v && rng.bernoulli(options.backward_edge_prob)) {
        g.add_edge(u, v, static_cast<int>(rng.uniform(1, options.max_delay)));
      }
    }
  }

  if (options.ensure_connected) {
    // Chain any node without neighbours into the spine so every node takes
    // part in the loop body.
    for (NodeId v = 0; v + 1 < n; ++v) {
      if (g.out_edges(v).empty() && g.in_edges(v).empty()) {
        g.add_edge(v, v + 1, rng.bernoulli(options.zero_delay_prob) ? 0 : 1);
      }
    }
  }

  if (options.ensure_cyclic && !has_cycle(g)) {
    if (g.edge_count() > 0) {
      // Close a 2-cycle over an existing edge — guaranteed to create a
      // cycle no matter how sparse the forward structure came out.
      const Edge& e = g.edge(0);
      g.add_edge(e.to, e.from, static_cast<int>(rng.uniform(1, options.max_delay)));
    } else {
      g.add_edge(0, 1, 0);
      g.add_edge(1, 0, static_cast<int>(rng.uniform(1, options.max_delay)));
    }
  }

  CSR_ENSURE(g.is_legal(), "random generator produced an illegal DFG");
  return g;
}

}  // namespace csr
