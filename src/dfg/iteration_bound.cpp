#include "dfg/iteration_bound.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "dfg/algorithms.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {

// Longest-path Bellman–Ford from a virtual super-source connected to every
// node with weight 0. Returns {has_positive_cycle, potentials}. When no
// positive cycle exists the potentials satisfy h(v) >= h(u) + w(e) for every
// edge, with equality on "tight" edges.
struct BellmanFordResult {
  bool positive_cycle = false;
  std::vector<std::int64_t> potential;
};

BellmanFordResult longest_path_potentials(const DataFlowGraph& g,
                                          const std::vector<std::int64_t>& weight) {
  const std::size_t n = g.node_count();
  BellmanFordResult result;
  result.potential.assign(n, 0);
  bool changed = true;
  for (std::size_t pass = 0; pass < n && changed; ++pass) {
    changed = false;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& edge = g.edge(e);
      const std::int64_t cand = checked_add(result.potential[edge.from], weight[e]);
      if (cand > result.potential[edge.to]) {
        result.potential[edge.to] = cand;
        changed = true;
      }
    }
  }
  result.positive_cycle = changed;
  return result;
}

std::vector<std::int64_t> parametric_weights(const DataFlowGraph& g,
                                             const Rational& ratio) {
  std::vector<std::int64_t> w(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    w[e] = checked_mul(ratio.den(), g.node(edge.from).time) -
           checked_mul(ratio.num(), edge.delay);
  }
  return w;
}

// True when the tight subgraph (edges with h(u) + w(e) == h(v)) contains a
// cycle, i.e. the ratio `ratio` is attained by some cycle.
bool tight_cycle_exists(const DataFlowGraph& g, const std::vector<std::int64_t>& weight,
                        const std::vector<std::int64_t>& potential) {
  // Kahn's algorithm restricted to tight edges.
  const std::size_t n = g.node_count();
  std::vector<int> indeg(n, 0);
  auto tight = [&](EdgeId e) {
    const Edge& edge = g.edge(e);
    return potential[edge.from] + weight[e] == potential[edge.to];
  };
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (tight(e)) ++indeg[g.edge(e).to];
  }
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  std::size_t removed = 0;
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    ++removed;
    for (const EdgeId e : g.out_edges(v)) {
      if (!tight(e)) continue;
      if (--indeg[g.edge(e).to] == 0) queue.push_back(g.edge(e).to);
    }
  }
  return removed != n;
}

void require_every_cycle_has_delay(const DataFlowGraph& g) {
  if (has_zero_delay_cycle(g)) {
    throw InvalidArgument("iteration bound undefined: zero-delay cycle present");
  }
}

}  // namespace

bool has_cycle_ratio_above(const DataFlowGraph& g, const Rational& ratio) {
  const auto weights = parametric_weights(g, ratio);
  return longest_path_potentials(g, weights).positive_cycle;
}

std::optional<Rational> iteration_bound(const DataFlowGraph& g) {
  if (!has_cycle(g)) return std::nullopt;
  require_every_cycle_has_delay(g);

  const std::int64_t total_d = g.total_delay();
  const std::int64_t total_t = g.total_time();
  CSR_ENSURE(total_d > 0, "cyclic graph without delays slipped past validation");

  // Invariant: B ∈ (lo, hi]. Any cycle's ratio is > 0 (t ≥ 1) and ≤ Σt.
  Rational lo(0);
  Rational hi(total_t);
  if (!has_cycle_ratio_above(g, lo)) {
    // Defensive: cannot happen for a legal cyclic graph (every cycle has
    // ratio > 0), but keep the invariant honest.
    throw LogicError("no cycle with positive ratio in a cyclic graph");
  }

  // Two distinct cycle ratios with denominators ≤ D differ by at least 1/D².
  // Narrow (lo, hi] to strictly less than half that gap, then widen the right
  // end by a quarter gap so that B sits strictly inside an interval that can
  // contain no *other* ratio with denominator ≤ D; the smallest-denominator
  // rational in that interval is therefore B itself.
  const Rational gap(1, checked_mul(total_d, total_d));
  const Rational half_gap = gap / Rational(2);
  while (hi - lo >= half_gap) {
    const Rational mid = (lo + hi) / Rational(2);
    if (has_cycle_ratio_above(g, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  const Rational bound = simplest_rational_in(lo, hi + gap / Rational(4));

  // Exact verification: no cycle exceeds `bound`, and some cycle attains it.
  const auto weights = parametric_weights(g, bound);
  const auto bf = longest_path_potentials(g, weights);
  CSR_ENSURE(!bf.positive_cycle, "iteration bound verification: ratio exceeded");
  CSR_ENSURE(tight_cycle_exists(g, weights, bf.potential),
             "iteration bound verification: bound not attained");
  return bound;
}

std::optional<Rational> iteration_bound_by_enumeration(const DataFlowGraph& g,
                                                       std::size_t max_cycles) {
  const auto cycles = enumerate_simple_cycles(g, max_cycles);
  if (cycles.empty()) return std::nullopt;
  std::optional<Rational> best;
  for (const auto& cycle : cycles) {
    std::int64_t time = 0;
    std::int64_t delay = 0;
    for (const EdgeId e : cycle) {
      time += g.node(g.edge(e).from).time;
      delay += g.edge(e).delay;
    }
    if (delay == 0) {
      throw InvalidArgument("iteration bound undefined: zero-delay cycle present");
    }
    const Rational ratio(time, delay);
    if (!best || ratio > *best) best = ratio;
  }
  return best;
}

}  // namespace csr
