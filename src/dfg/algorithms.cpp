#include "dfg/algorithms.hpp"

#include <algorithm>
#include <functional>

#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

std::optional<std::vector<NodeId>> zero_delay_topological_order(
    const DataFlowGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<int> indeg(n, 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge(e).delay == 0) ++indeg[g.edge(e).to];
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    order.push_back(v);
    for (const EdgeId e : g.out_edges(v)) {
      if (g.edge(e).delay != 0) continue;
      if (--indeg[g.edge(e).to] == 0) queue.push_back(g.edge(e).to);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool has_zero_delay_cycle(const DataFlowGraph& g) {
  return !zero_delay_topological_order(g).has_value();
}

std::vector<int> zero_delay_path_lengths(const DataFlowGraph& g) {
  const auto order = zero_delay_topological_order(g);
  if (!order) throw InvalidArgument("graph has a zero-delay cycle");
  std::vector<int> finish(g.node_count(), 0);
  for (const NodeId v : *order) {
    int start = 0;
    for (const EdgeId e : g.in_edges(v)) {
      if (g.edge(e).delay == 0) start = std::max(start, finish[g.edge(e).from]);
    }
    finish[v] = start + g.node(v).time;
  }
  return finish;
}

int cycle_period(const DataFlowGraph& g) {
  if (g.node_count() == 0) return 0;
  const auto finish = zero_delay_path_lengths(g);
  return *std::max_element(finish.begin(), finish.end());
}

std::vector<std::vector<NodeId>> strongly_connected_components(
    const DataFlowGraph& g) {
  // Iterative Tarjan to avoid deep recursion on long chains.
  const std::size_t n = g.node_count();
  constexpr int kUnvisited = -1;
  std::vector<int> index(n, kUnvisited);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::vector<std::vector<NodeId>> components;
  int next_index = 0;

  struct Frame {
    NodeId v;
    std::size_t edge_pos;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const NodeId v = frame.v;
      const auto& outs = g.out_edges(v);
      if (frame.edge_pos < outs.size()) {
        const NodeId w = g.edge(outs[frame.edge_pos++]).to;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const NodeId parent = call_stack.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          std::vector<NodeId> comp;
          NodeId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
          } while (w != v);
          components.push_back(std::move(comp));
        }
      }
    }
  }
  return components;
}

bool has_cycle(const DataFlowGraph& g) {
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge(e).from == g.edge(e).to) return true;
  }
  for (const auto& comp : strongly_connected_components(g)) {
    if (comp.size() > 1) return true;
  }
  return false;
}

namespace {

// DFS cycle enumeration rooted at the smallest node id of each cycle; only
// nodes with id >= root participate, so each simple cycle is emitted exactly
// once (at its minimum node). Multi-edges yield distinct cycles.
void enumerate_from_root(const DataFlowGraph& g, NodeId root,
                         std::vector<EdgeId>& path, std::vector<bool>& visited,
                         NodeId current, std::size_t max_cycles,
                         std::vector<std::vector<EdgeId>>& out) {
  if (out.size() >= max_cycles) return;
  for (const EdgeId e : g.out_edges(current)) {
    if (out.size() >= max_cycles) return;
    const NodeId next = g.edge(e).to;
    if (next < root) continue;
    if (next == root) {
      path.push_back(e);
      out.push_back(path);
      path.pop_back();
      continue;
    }
    if (visited[next]) continue;
    visited[next] = true;
    path.push_back(e);
    enumerate_from_root(g, root, path, visited, next, max_cycles, out);
    path.pop_back();
    visited[next] = false;
  }
}

}  // namespace

std::vector<std::vector<EdgeId>> enumerate_simple_cycles(const DataFlowGraph& g,
                                                         std::size_t max_cycles) {
  std::vector<std::vector<EdgeId>> out;
  std::vector<bool> visited(g.node_count(), false);
  std::vector<EdgeId> path;
  for (NodeId root = 0; root < g.node_count(); ++root) {
    if (out.size() >= max_cycles) break;
    visited[root] = true;
    enumerate_from_root(g, root, path, visited, root, max_cycles, out);
    visited[root] = false;
  }
  return out;
}

}  // namespace csr
