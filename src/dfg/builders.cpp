#include "dfg/builders.hpp"

#include "support/check.hpp"

namespace csr {

std::vector<NodeId> add_mac_chain(DataFlowGraph& g, const std::string& prefix,
                                  int length) {
  CSR_REQUIRE(length >= 1, "chain length must be >= 1");
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(length));
  for (int k = 0; k < length; ++k) {
    const std::string kind = (k % 2 == 0) ? "M" : "A";
    ids.push_back(g.add_node(kind + prefix + std::to_string(k + 1)));
  }
  for (int k = 0; k + 1 < length; ++k) {
    g.add_edge(ids[static_cast<std::size_t>(k)], ids[static_cast<std::size_t>(k + 1)], 0);
  }
  return ids;
}

std::vector<NodeId> add_reduction_layer(DataFlowGraph& g, const std::string& prefix,
                                        const std::vector<NodeId>& inputs) {
  CSR_REQUIRE(!inputs.empty() && inputs.size() % 2 == 0,
              "reduction layer needs a non-empty even number of inputs");
  std::vector<NodeId> layer;
  layer.reserve(inputs.size() / 2);
  for (std::size_t k = 0; k + 1 < inputs.size(); k += 2) {
    const NodeId a = g.add_node("A" + prefix + std::to_string(k / 2 + 1));
    g.add_edge(inputs[k], a, 0);
    g.add_edge(inputs[k + 1], a, 0);
    layer.push_back(a);
  }
  return layer;
}

DataFlowGraph single_cycle(const std::string& graph_name,
                           const std::vector<std::pair<std::string, int>>& nodes,
                           const std::vector<int>& edge_delays) {
  CSR_REQUIRE(nodes.size() >= 2, "a cycle needs at least 2 nodes");
  CSR_REQUIRE(nodes.size() == edge_delays.size(),
              "need exactly one delay per cycle edge");
  DataFlowGraph g(graph_name);
  std::vector<NodeId> ids;
  ids.reserve(nodes.size());
  for (const auto& [name, time] : nodes) {
    ids.push_back(g.add_node(name, time));
  }
  for (std::size_t k = 0; k < ids.size(); ++k) {
    g.add_edge(ids[k], ids[(k + 1) % ids.size()], edge_delays[k]);
  }
  return g;
}

}  // namespace csr
