#include "dfg/graph.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "dfg/algorithms.hpp"
#include "support/check.hpp"

namespace csr {

NodeId DataFlowGraph::add_node(std::string name, int time) {
  CSR_REQUIRE(!name.empty(), "node name must be non-empty");
  CSR_REQUIRE(time >= 1, "node computation time must be >= 1");
  CSR_REQUIRE(!find_node(name).has_value(), "duplicate node name: " + name);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), time});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

EdgeId DataFlowGraph::add_edge(NodeId from, NodeId to, int delay) {
  CSR_REQUIRE(from < nodes_.size(), "edge source out of range");
  CSR_REQUIRE(to < nodes_.size(), "edge target out of range");
  CSR_REQUIRE(delay >= 0, "edge delay must be non-negative");
  CSR_REQUIRE(from != to || delay >= 1, "self-loop requires delay >= 1");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, delay});
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

const Node& DataFlowGraph::node(NodeId id) const {
  CSR_EXPECT(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const Edge& DataFlowGraph::edge(EdgeId id) const {
  CSR_EXPECT(id < edges_.size(), "edge id out of range");
  return edges_[id];
}

void DataFlowGraph::set_delay(EdgeId e, int delay) {
  CSR_EXPECT(e < edges_.size(), "edge id out of range");
  CSR_REQUIRE(delay >= 0, "edge delay must be non-negative");
  edges_[e].delay = delay;
}

void DataFlowGraph::set_time(NodeId v, int time) {
  CSR_EXPECT(v < nodes_.size(), "node id out of range");
  CSR_REQUIRE(time >= 1, "node computation time must be >= 1");
  nodes_[v].time = time;
}

const std::vector<EdgeId>& DataFlowGraph::out_edges(NodeId v) const {
  CSR_EXPECT(v < nodes_.size(), "node id out of range");
  return out_[v];
}

const std::vector<EdgeId>& DataFlowGraph::in_edges(NodeId v) const {
  CSR_EXPECT(v < nodes_.size(), "node id out of range");
  return in_[v];
}

std::optional<NodeId> DataFlowGraph::find_node(std::string_view name) const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].name == name) return id;
  }
  return std::nullopt;
}

std::int64_t DataFlowGraph::total_delay() const {
  return std::accumulate(edges_.begin(), edges_.end(), std::int64_t{0},
                         [](std::int64_t acc, const Edge& e) { return acc + e.delay; });
}

std::int64_t DataFlowGraph::total_time() const {
  return std::accumulate(nodes_.begin(), nodes_.end(), std::int64_t{0},
                         [](std::int64_t acc, const Node& n) { return acc + n.time; });
}

bool DataFlowGraph::unit_time() const {
  return std::all_of(nodes_.begin(), nodes_.end(),
                     [](const Node& n) { return n.time == 1; });
}

std::vector<std::string> DataFlowGraph::validate() const {
  std::vector<std::string> problems;
  for (const Edge& e : edges_) {
    if (e.delay < 0) {
      problems.push_back("negative delay on edge " + nodes_[e.from].name + "->" +
                         nodes_[e.to].name);
    }
  }
  if (has_zero_delay_cycle(*this)) {
    problems.emplace_back("zero-delay cycle (graph is not schedulable)");
  }
  return problems;
}

std::vector<NodeId> DataFlowGraph::node_ids() const {
  std::vector<NodeId> ids(nodes_.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  return ids;
}

}  // namespace csr
