#pragma once

/// \file graph.hpp
/// The data-flow graph (DFG) abstraction of Section 2.1 of the paper:
/// G = <V, E, d, t> — a node-weighted, edge-weighted directed multigraph.
/// Nodes carry a positive computation time t(v); edges carry a non-negative
/// delay (register) count d(e). An edge u→v with delay k means iteration i of
/// v consumes the value produced by iteration i−k of u; k = 0 edges are
/// intra-iteration dependencies.
///
/// The class is a plain value type (copyable, movable) because retiming and
/// unfolding are *transformations*: they produce new graphs and the tests
/// compare before/after.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace csr {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/// A computation node: `name` identifies it in generated code (statements are
/// rendered as `name[i] = ...`), `time` is its computation time t(v) ≥ 1.
struct Node {
  std::string name;
  int time = 1;
};

/// A dependence edge u→v with d(e) = `delay` inter-iteration registers.
struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  int delay = 0;
};

class DataFlowGraph {
 public:
  DataFlowGraph() = default;
  explicit DataFlowGraph(std::string name) : name_(std::move(name)) {}

  /// Graph name, used in reports and serialized files.
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a node with computation time `time` (≥ 1). Node names must be
  /// unique and non-empty: they become array names in generated loop code.
  NodeId add_node(std::string name, int time = 1);

  /// Adds an edge u→v with `delay` ≥ 0. Self-loops require delay ≥ 1
  /// (a zero-delay self-loop could never be scheduled).
  EdgeId add_edge(NodeId from, NodeId to, int delay);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Edge& edge(EdgeId id) const;

  /// Replaces the delay of `e`; used by retiming application.
  void set_delay(EdgeId e, int delay);

  /// Replaces the computation time of `v` (≥ 1).
  void set_time(NodeId v, int time);

  /// Edge ids leaving / entering `v`.
  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId v) const;
  [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId v) const;

  /// Looks a node up by name.
  [[nodiscard]] std::optional<NodeId> find_node(std::string_view name) const;

  /// Σ_e d(e) — used to bound iteration-bound denominators.
  [[nodiscard]] std::int64_t total_delay() const;

  /// Σ_v t(v) — used to bound iteration-bound numerators; also the code size
  /// of the original loop body when every node is one instruction-time unit.
  [[nodiscard]] std::int64_t total_time() const;

  /// True when every node has unit computation time (the paper's default).
  [[nodiscard]] bool unit_time() const;

  /// Structural validation: named problems, empty when the graph is legal.
  /// A legal DFG has non-negative delays and no zero-delay cycle.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Convenience: validate().empty().
  [[nodiscard]] bool is_legal() const { return validate().empty(); }

  /// All node ids, 0..node_count()-1 (nodes are never removed).
  [[nodiscard]] std::vector<NodeId> node_ids() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace csr
