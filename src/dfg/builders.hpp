#pragma once

/// \file builders.hpp
/// Structured DFG construction helpers shared by the benchmark
/// reconstructions, tests and examples: multiply-accumulate chains, single
/// recursions and balanced reduction trees — the building blocks of DSP
/// filter graphs. Node names follow the resource-model convention: 'M…'
/// multipliers, 'A…' adders.

#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace csr {

/// Appends `length` nodes named M<prefix>1, A<prefix>2, ... (alternating
/// multiplier/adder) connected by zero-delay edges; returns their ids.
std::vector<NodeId> add_mac_chain(DataFlowGraph& g, const std::string& prefix,
                                  int length);

/// Appends a balanced binary reduction layer: one adder per consecutive
/// pair of `inputs`, connected by zero-delay edges. `inputs` must have even
/// size. Returns the new layer's ids.
std::vector<NodeId> add_reduction_layer(DataFlowGraph& g, const std::string& prefix,
                                        const std::vector<NodeId>& inputs);

/// A single directed cycle with the given node (name, time) pairs and one
/// delay count per edge (edge k goes from node k to node (k+1) mod size).
[[nodiscard]] DataFlowGraph single_cycle(
    const std::string& graph_name,
    const std::vector<std::pair<std::string, int>>& nodes,
    const std::vector<int>& edge_delays);

}  // namespace csr
