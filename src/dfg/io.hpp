#pragma once

/// \file io.hpp
/// A line-oriented textual exchange format for data-flow graphs, so that
/// benchmark graphs can be stored, diffed, and round-tripped in tests:
///
///     # comment
///     dfg  <name>
///     node <name> <time>
///     edge <from> <to> <delay>
///
/// Nodes must be declared before the edges that use them. The format is
/// deliberately minimal — it exists so experiments are reproducible from
/// plain files, not as a general interchange standard.

#include <iosfwd>
#include <string>

#include "dfg/graph.hpp"

namespace csr {

/// Serializes `g` in the text format above.
[[nodiscard]] std::string to_text(const DataFlowGraph& g);
void write_text(std::ostream& os, const DataFlowGraph& g);

/// Parses the text format. Throws ParseError with a line number on malformed
/// input and InvalidArgument for structurally illegal graphs (through the
/// DataFlowGraph builders).
[[nodiscard]] DataFlowGraph parse_text(const std::string& text);
[[nodiscard]] DataFlowGraph read_text(std::istream& is);

}  // namespace csr
