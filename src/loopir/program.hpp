#pragma once

/// \file program.hpp
/// The loop-program intermediate representation that code generation emits
/// and the VM executes. It models exactly the code shapes in the paper's
/// figures:
///
///   * array-assignment statements `V[i+k] = op(U[i−d], ...)`,
///   * optional guards `(p) stmt` — the statement executes iff the
///     conditional register p satisfies 0 ≥ p > −LC (LC = original trip
///     count, Section 3.1),
///   * `setup p = v : -LC` conditional-register initialization,
///   * explicit decrements `p = p − a`,
///   * loop segments `for i = b to e by s` plus straight-line segments
///     (prologue / epilogue / remainder code), modelled as one-trip loops.
///
/// Code size is the paper's metric: the total number of instructions
/// (statements + setups + decrements) across all segments.
///
/// Statement *semantics* are deliberately abstract: each statement carries an
/// `op_seed` identifying its computation, and the VM evaluates it as a
/// 64-bit hash of (op_seed, target index, operand values). Two programs are
/// semantically equivalent iff they leave identical values in every array
/// slot 1..n — hash collisions aside, any mis-indexed read or write, wrong
/// guard window, or missing statement changes some observed value.

#include <cstdint>
#include <string>
#include <vector>

namespace csr {

/// A loop-relative array element reference: `array[i + offset]`.
struct ArrayRef {
  std::string array;
  std::int64_t offset = 0;

  friend bool operator==(const ArrayRef&, const ArrayRef&) = default;
};

/// `array[i + offset] = op(sources...)`.
struct Statement {
  std::string array;
  std::int64_t offset = 0;
  /// Identity of the computation; statements generated from the same DFG
  /// node share it regardless of how the loop was transformed.
  std::uint64_t op_seed = 0;
  std::vector<ArrayRef> sources;
  /// Infix operator used only for pretty-printing ("+", "*", ...).
  std::string op_text = "op";

  friend bool operator==(const Statement&, const Statement&) = default;
};

enum class InstrKind { kStatement, kSetup, kDecrement };

/// One instruction; a tagged union kept flat for simplicity.
struct Instruction {
  InstrKind kind = InstrKind::kStatement;

  // kStatement:
  Statement stmt;
  /// Guarding conditional register; empty = unconditional.
  std::string guard;

  // kSetup / kDecrement:
  std::string reg;
  /// Setup: initial register value. Decrement: amount subtracted.
  std::int64_t value = 0;

  [[nodiscard]] static Instruction statement(Statement s, std::string guard_reg = "");
  [[nodiscard]] static Instruction setup(std::string reg, std::int64_t initial);
  [[nodiscard]] static Instruction decrement(std::string reg, std::int64_t amount = 1);

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// `for i = begin to end by step { instructions }`; executes zero trips when
/// begin > end. Straight-line code is a segment with begin == end.
struct LoopSegment {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t step = 1;
  std::vector<Instruction> instructions;

  [[nodiscard]] bool straight_line() const { return begin == end; }
  [[nodiscard]] std::int64_t trip_count() const;

  friend bool operator==(const LoopSegment&, const LoopSegment&) = default;
};

/// A whole loop program.
struct LoopProgram {
  std::string name;
  /// The original loop trip count n; conditional-register guards compare
  /// against −n (the `-LC` bound of the setup instruction).
  std::int64_t n = 0;
  std::vector<LoopSegment> segments;

  /// The paper's code-size metric: total instruction count.
  [[nodiscard]] std::int64_t code_size() const;

  /// Distinct conditional registers referenced anywhere, in first-use order.
  [[nodiscard]] std::vector<std::string> conditional_registers() const;

  /// Distinct array names referenced anywhere (targets and sources), in
  /// first-use order. This is the interning order the VM uses to map array
  /// names to dense ids at program load, so the interpreter's inner loop
  /// never touches a string.
  [[nodiscard]] std::vector<std::string> array_names() const;

  /// Structural problems (empty when well-formed): guards/decrements of
  /// registers never set up, setups inside multi-trip loops, non-positive
  /// steps, statements with empty target names.
  [[nodiscard]] std::vector<std::string> validate() const;

  friend bool operator==(const LoopProgram&, const LoopProgram&) = default;
};

/// Stable seed for a computation identified by `name` (FNV-1a).
[[nodiscard]] std::uint64_t op_seed_for(std::string_view name);

}  // namespace csr
