#pragma once

/// \file serialize.hpp
/// A line-oriented exchange format for loop programs, so generated code can
/// be stored as golden files and diffed across library versions:
///
///     program <name with spaces>
///     n 101
///     segment <begin> <end> <step>
///     stmt <array> <offset> <op_text> [guard <reg>] [src <array> <offset>]...
///     setup <reg> <initial>
///     dec <reg> <amount>
///
/// Statements' op_seed is re-derived from the array name on parse (the
/// generator's convention), so the format stays human-readable.

#include <iosfwd>
#include <string>

#include "loopir/program.hpp"

namespace csr {

void write_program_text(std::ostream& os, const LoopProgram& program);
[[nodiscard]] std::string to_program_text(const LoopProgram& program);

/// Parses the format above; throws ParseError with a line number on
/// malformed input.
[[nodiscard]] LoopProgram read_program_text(std::istream& is);
[[nodiscard]] LoopProgram parse_program_text(const std::string& text);

}  // namespace csr
