#include <map>
#include <vector>

#include "loopir/passes.hpp"
#include "support/check.hpp"

namespace csr {

namespace {

/// Classification of one guarded instruction over all trips of its segment.
enum class GuardFate { kAlwaysEnabled, kNeverEnabled, kMixed };

// The analysis runs in 128-bit arithmetic with saturation. Register values
// only ever decrease after setup (decrement amounts are positive), so
// clamping a value at -kValueClamp is exact for classification purposes:
// both the true and the clamped value are far below any window bound -n
// (n is int64). kProductCap saturates trips×amount products the same way.
using i128 = __int128;
constexpr i128 kValueClamp = i128{1} << 100;
constexpr i128 kProductCap = i128{1} << 110;

/// a·b for non-negative a, b, saturated at kProductCap.
i128 sat_mul(i128 a, i128 b) {
  if (a == 0 || b == 0) return 0;
  if (a > kProductCap / b) return kProductCap;
  return a * b;
}

struct RegisterState {
  i128 value = 0;  // value on entry to the current segment
  bool initialized = false;
};

GuardFate classify(i128 entry_value, i128 decs_before_in_trip, i128 decs_per_trip,
                   i128 trips, i128 n) {
  // p(k) = entry − decs_before − k·decs_per_trip for trip k = 0..trips−1;
  // monotonically non-increasing in k, window is 0 ≥ p > −n.
  const i128 first = entry_value - decs_before_in_trip;
  const i128 last = first - sat_mul(trips - 1, decs_per_trip);
  const bool all_enabled = first <= 0 && last > -n;
  if (all_enabled) return GuardFate::kAlwaysEnabled;
  // Never enabled iff no k has −n < p(k) ≤ 0. With p non-increasing this
  // means the window is skipped entirely: either the last value is still
  // positive, the first is already ≤ −n, or the decrement jumps over the
  // whole window between two trips.
  if (last > 0 || first <= -n) return GuardFate::kNeverEnabled;
  if (decs_per_trip == 0) {
    // Constant value: enabled for all trips or none.
    return (first <= 0 && first > -n) ? GuardFate::kAlwaysEnabled
                                      : GuardFate::kNeverEnabled;
  }
  // Does some k land inside (−n, 0]? The smallest k with p(k) ≤ 0 is
  // k0 = ⌈first / decs⌉ (for first > 0; otherwise k0 = 0).
  i128 k0 = 0;
  if (first > 0) {
    k0 = (first + decs_per_trip - 1) / decs_per_trip;
  }
  if (k0 >= trips) return GuardFate::kNeverEnabled;
  const i128 at_k0 = first - k0 * decs_per_trip;
  if (at_k0 <= -n) return GuardFate::kNeverEnabled;  // jumped past the window
  return GuardFate::kMixed;
}

}  // namespace

PassChanges window_pass(LoopProgram& program) {
  PassChanges changes;
  std::map<std::string, RegisterState> registers;

  for (LoopSegment& seg : program.segments) {
    const std::int64_t trips = seg.trip_count();
    // A zero-trip segment executes nothing: its setups never run (the VM
    // would reject a later guard relying on one) and its decrements change
    // no state. Leave it alone; condense_pass decides whether it can go.
    if (trips == 0) continue;

    // Decrement totals per register for one trip of this segment.
    std::map<std::string, i128> per_trip;
    for (const Instruction& instr : seg.instructions) {
      if (instr.kind == InstrKind::kDecrement) per_trip[instr.reg] += instr.value;
    }

    std::map<std::string, i128> before;  // decrements so far this trip
    std::vector<Instruction> rewritten;
    rewritten.reserve(seg.instructions.size());
    for (const Instruction& instr : seg.instructions) {
      switch (instr.kind) {
        case InstrKind::kSetup:
          registers[instr.reg] = RegisterState{instr.value, true};
          rewritten.push_back(instr);
          break;
        case InstrKind::kDecrement:
          before[instr.reg] += instr.value;
          rewritten.push_back(instr);
          break;
        case InstrKind::kStatement: {
          if (instr.guard.empty()) {
            rewritten.push_back(instr);
            break;
          }
          const auto it = registers.find(instr.guard);
          if (it == registers.end() || !it->second.initialized) {
            // No *executed* setup reaches this guard (it only validates
            // because of a setup in a zero-trip segment). The VM throws at
            // runtime; keep the instruction untouched.
            rewritten.push_back(instr);
            break;
          }
          const GuardFate fate =
              classify(it->second.value, before[instr.guard],
                       per_trip.count(instr.guard) ? per_trip[instr.guard] : 0,
                       trips, program.n);
          switch (fate) {
            case GuardFate::kAlwaysEnabled: {
              Instruction unguarded = instr;
              unguarded.guard.clear();
              rewritten.push_back(std::move(unguarded));
              ++changes.guards_dropped;
              break;
            }
            case GuardFate::kNeverEnabled:
              ++changes.statements_removed;
              break;
            case GuardFate::kMixed:
              rewritten.push_back(instr);
              break;
          }
          break;
        }
      }
    }
    seg.instructions = std::move(rewritten);

    // Advance register values across this segment, clamped: values are
    // monotone non-increasing, so saturating far below every window bound
    // preserves all later classifications exactly.
    for (const auto& [reg, amount] : per_trip) {
      RegisterState& state = registers[reg];
      state.value -= sat_mul(trips, amount);
      if (state.value < -kValueClamp) state.value = -kValueClamp;
    }
  }
  return changes;
}

}  // namespace csr
