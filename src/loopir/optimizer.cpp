#include "loopir/optimizer.hpp"

#include <utility>

#include "loopir/pipeline.hpp"

namespace csr {

OptimizationReport optimize_program(const LoopProgram& program) {
  PipelineResult result = optimize_pipeline(program);

  // The legacy report's categories map onto the pipeline totals:
  // `registers_removed` has always meant "setup/decrement instructions that
  // disappeared", whichever pass retired them — plain dce deletions,
  // coalesced decrement pairs and setup-absorbed decrements all qualify.
  OptimizationReport report;
  report.guards_dropped = result.totals.guards_dropped;
  report.statements_removed = result.totals.statements_removed;
  report.registers_removed = result.totals.register_ops_removed +
                             result.totals.decrements_coalesced +
                             result.totals.setups_folded;
  report.program = std::move(result.program);
  return report;
}

}  // namespace csr
