#include "loopir/optimizer.hpp"

#include <map>
#include <set>
#include <string>

#include "support/check.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace csr {

namespace {

/// Classification of one guarded instruction over all trips of its segment.
enum class GuardFate { kAlwaysEnabled, kNeverEnabled, kMixed };

struct RegisterState {
  std::int64_t value = 0;  // value on entry to the current segment
  bool initialized = false;
};

GuardFate classify(std::int64_t entry_value, std::int64_t decs_before_in_trip,
                   std::int64_t decs_per_trip, std::int64_t trips, std::int64_t n) {
  // p(k) = entry − decs_before − k·decs_per_trip for trip k = 0..trips−1;
  // monotonically non-increasing in k, window is 0 ≥ p > −n.
  const std::int64_t first = entry_value - decs_before_in_trip;
  const std::int64_t last = first - (trips - 1) * decs_per_trip;
  const bool all_enabled = first <= 0 && last > -n;
  if (all_enabled) return GuardFate::kAlwaysEnabled;
  // Never enabled iff no k has −n < p(k) ≤ 0. With p non-increasing this
  // means the window is skipped entirely: either the last value is still
  // positive, the first is already ≤ −n, or the decrement jumps over the
  // whole window between two trips.
  if (last > 0 || first <= -n) return GuardFate::kNeverEnabled;
  if (decs_per_trip == 0) {
    // Constant value: enabled for all trips or none.
    return (first <= 0 && first > -n) ? GuardFate::kAlwaysEnabled
                                      : GuardFate::kNeverEnabled;
  }
  // Does some k land inside (−n, 0]? The smallest k with p(k) ≤ 0 is
  // k0 = ⌈first / decs⌉ (for first > 0; otherwise k0 = 0).
  std::int64_t k0 = 0;
  if (first > 0) {
    k0 = (first + decs_per_trip - 1) / decs_per_trip;
  }
  if (k0 >= trips) return GuardFate::kNeverEnabled;
  const std::int64_t at_k0 = first - k0 * decs_per_trip;
  if (at_k0 <= -n) return GuardFate::kNeverEnabled;  // jumped past the window
  return GuardFate::kMixed;
}

}  // namespace

OptimizationReport optimize_program(const LoopProgram& program) {
  {
    const auto problems = program.validate();
    if (!problems.empty()) {
      throw InvalidArgument("cannot optimize invalid program: " + join(problems, "; "));
    }
  }

  OptimizationReport report;
  report.program = program;
  std::map<std::string, RegisterState> registers;

  // Pass 1: classify every guard and rewrite statements.
  for (LoopSegment& seg : report.program.segments) {
    const std::int64_t trips = seg.trip_count();

    // Decrement totals per register for one trip of this segment.
    std::map<std::string, std::int64_t> per_trip;
    for (const Instruction& instr : seg.instructions) {
      if (instr.kind == InstrKind::kDecrement) per_trip[instr.reg] += instr.value;
    }

    std::map<std::string, std::int64_t> before;  // decrements so far this trip
    std::vector<Instruction> rewritten;
    rewritten.reserve(seg.instructions.size());
    for (const Instruction& instr : seg.instructions) {
      switch (instr.kind) {
        case InstrKind::kSetup:
          registers[instr.reg] = RegisterState{instr.value, true};
          rewritten.push_back(instr);
          break;
        case InstrKind::kDecrement:
          before[instr.reg] += instr.value;
          rewritten.push_back(instr);
          break;
        case InstrKind::kStatement: {
          if (instr.guard.empty() || trips == 0) {
            rewritten.push_back(instr);
            break;
          }
          const RegisterState& state = registers.at(instr.guard);
          CSR_ENSURE(state.initialized, "validated program with uninitialized guard");
          const GuardFate fate =
              classify(state.value, before[instr.guard],
                       per_trip.count(instr.guard) ? per_trip[instr.guard] : 0, trips,
                       report.program.n);
          switch (fate) {
            case GuardFate::kAlwaysEnabled: {
              Instruction unguarded = instr;
              unguarded.guard.clear();
              rewritten.push_back(std::move(unguarded));
              ++report.guards_dropped;
              break;
            }
            case GuardFate::kNeverEnabled:
              ++report.statements_removed;
              break;
            case GuardFate::kMixed:
              rewritten.push_back(instr);
              break;
          }
          break;
        }
      }
    }
    seg.instructions = std::move(rewritten);

    // Advance register values across this segment.
    for (const auto& [reg, amount] : per_trip) {
      registers[reg].value -= trips * amount;
    }
  }

  // Pass 2: retire registers no guard references any more.
  std::set<std::string> live;
  for (const LoopSegment& seg : report.program.segments) {
    for (const Instruction& instr : seg.instructions) {
      if (instr.kind == InstrKind::kStatement && !instr.guard.empty()) {
        live.insert(instr.guard);
      }
    }
  }
  for (LoopSegment& seg : report.program.segments) {
    std::vector<Instruction> kept;
    kept.reserve(seg.instructions.size());
    for (Instruction& instr : seg.instructions) {
      const bool dead_register_op =
          (instr.kind == InstrKind::kSetup || instr.kind == InstrKind::kDecrement) &&
          live.count(instr.reg) == 0;
      if (dead_register_op) {
        ++report.registers_removed;
      } else {
        kept.push_back(std::move(instr));
      }
    }
    seg.instructions = std::move(kept);
  }

  // Drop segments that became empty.
  std::erase_if(report.program.segments,
                [](const LoopSegment& seg) { return seg.instructions.empty(); });
  return report;
}

}  // namespace csr
