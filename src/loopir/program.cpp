#include "loopir/program.hpp"

#include <algorithm>
#include <set>

#include "support/check.hpp"

namespace csr {

Instruction Instruction::statement(Statement s, std::string guard_reg) {
  Instruction instr;
  instr.kind = InstrKind::kStatement;
  instr.stmt = std::move(s);
  instr.guard = std::move(guard_reg);
  return instr;
}

Instruction Instruction::setup(std::string reg, std::int64_t initial) {
  CSR_REQUIRE(!reg.empty(), "setup requires a register name");
  Instruction instr;
  instr.kind = InstrKind::kSetup;
  instr.reg = std::move(reg);
  instr.value = initial;
  return instr;
}

Instruction Instruction::decrement(std::string reg, std::int64_t amount) {
  CSR_REQUIRE(!reg.empty(), "decrement requires a register name");
  CSR_REQUIRE(amount >= 1, "decrement amount must be >= 1");
  Instruction instr;
  instr.kind = InstrKind::kDecrement;
  instr.reg = std::move(reg);
  instr.value = amount;
  return instr;
}

std::int64_t LoopSegment::trip_count() const {
  if (begin > end) return 0;
  CSR_EXPECT(step >= 1, "loop step must be positive");
  return (end - begin) / step + 1;
}

std::int64_t LoopProgram::code_size() const {
  std::int64_t size = 0;
  for (const LoopSegment& seg : segments) {
    size += static_cast<std::int64_t>(seg.instructions.size());
  }
  return size;
}

std::vector<std::string> LoopProgram::conditional_registers() const {
  std::vector<std::string> regs;
  auto add = [&](const std::string& r) {
    if (!r.empty() && std::find(regs.begin(), regs.end(), r) == regs.end()) {
      regs.push_back(r);
    }
  };
  for (const LoopSegment& seg : segments) {
    for (const Instruction& instr : seg.instructions) {
      switch (instr.kind) {
        case InstrKind::kStatement:
          add(instr.guard);
          break;
        case InstrKind::kSetup:
        case InstrKind::kDecrement:
          add(instr.reg);
          break;
      }
    }
  }
  return regs;
}

std::vector<std::string> LoopProgram::array_names() const {
  std::vector<std::string> names;
  std::set<std::string> seen;
  const auto add = [&](const std::string& array) {
    if (!array.empty() && seen.insert(array).second) names.push_back(array);
  };
  for (const LoopSegment& seg : segments) {
    for (const Instruction& instr : seg.instructions) {
      if (instr.kind != InstrKind::kStatement) continue;
      add(instr.stmt.array);
      for (const ArrayRef& src : instr.stmt.sources) add(src.array);
    }
  }
  return names;
}

std::vector<std::string> LoopProgram::validate() const {
  std::vector<std::string> problems;
  std::set<std::string> initialized;
  for (const LoopSegment& seg : segments) {
    if (seg.step < 1) {
      problems.push_back("non-positive loop step " + std::to_string(seg.step));
    }
    for (const Instruction& instr : seg.instructions) {
      switch (instr.kind) {
        case InstrKind::kStatement:
          if (instr.stmt.array.empty()) {
            problems.emplace_back("statement with empty target array");
          }
          if (!instr.guard.empty() && initialized.count(instr.guard) == 0) {
            problems.push_back("guard register '" + instr.guard + "' used before setup");
          }
          break;
        case InstrKind::kSetup:
          if (seg.trip_count() > 1) {
            problems.push_back("setup of '" + instr.reg + "' inside a multi-trip loop");
          }
          initialized.insert(instr.reg);
          break;
        case InstrKind::kDecrement:
          if (initialized.count(instr.reg) == 0) {
            problems.push_back("decrement of register '" + instr.reg + "' before setup");
          }
          break;
      }
    }
  }
  return problems;
}

std::uint64_t op_seed_for(std::string_view name) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;  // FNV prime
  }
  return hash;
}

}  // namespace csr
