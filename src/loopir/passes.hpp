#pragma once

/// \file passes.hpp
/// The individual peephole passes the fixpoint pipeline (pipeline.hpp)
/// iterates over generated loop programs. Each pass mutates the program in
/// place and reports exactly what it changed; a zero `total()` is the
/// pipeline's convergence signal.
///
/// Every pass preserves observable semantics (the enabled statements, in
/// order, with identical operand values) *and* structural validity
/// (`LoopProgram::validate()` stays clean). Every counted change strictly
/// shrinks the triple (instructions, guarded statements, segments), which is
/// what guarantees the pipeline reaches a fixpoint — see docs/OPTIMIZER.md
/// for the per-pass legality arguments.

#include "loopir/program.hpp"

namespace csr {

/// What one pass did to the program. The counters are disjoint: each removed
/// instruction is counted under exactly one of statements_removed,
/// register_ops_removed, decrements_coalesced or setups_folded.
struct PassChanges {
  std::int64_t guards_dropped = 0;        ///< window: always-enabled guards cleared
  std::int64_t statements_removed = 0;    ///< window/condense: statements deleted
  std::int64_t register_ops_removed = 0;  ///< dce/condense: setups+decrements deleted
  std::int64_t decrements_coalesced = 0;  ///< condense: `dec r a; dec r b` merged
  std::int64_t setups_folded = 0;         ///< fold: decrement absorbed into its setup
  std::int64_t segments_removed = 0;      ///< condense: empty / zero-trip segments

  /// Instructions this pass deleted from the program.
  [[nodiscard]] std::int64_t instructions_removed() const {
    return statements_removed + register_ops_removed + decrements_coalesced +
           setups_folded;
  }
  /// Total change count — zero means the pass was a no-op.
  [[nodiscard]] std::int64_t total() const {
    return guards_dropped + instructions_removed() + segments_removed;
  }

  PassChanges& operator+=(const PassChanges& other) {
    guards_dropped += other.guards_dropped;
    statements_removed += other.statements_removed;
    register_ops_removed += other.register_ops_removed;
    decrements_coalesced += other.decrements_coalesced;
    setups_folded += other.setups_folded;
    segments_removed += other.segments_removed;
    return *this;
  }
};

/// Constant folding for register setups: in a single-trip segment, a
/// decrement whose register was set up earlier in the same segment — with no
/// guard observing the register in between — is absorbed into the setup's
/// initial value (`setup r v; ...; dec r a` → `setup r v−a`).
PassChanges fold_pass(LoopProgram& program);

/// Exact guard-window analysis (the pass behind the paper-facing result):
/// register values are affine in the trip index, so every guard's fate over
/// all trips of its segment is decidable. Drops guards that are enabled on
/// every trip and deletes statements whose guard never enables. Arithmetic
/// is 128-bit with saturation, so adversarial (fuzzed) magnitudes degrade to
/// the conservative "keep the guard" answer instead of overflowing.
PassChanges window_pass(LoopProgram& program);

/// Setup/decrement coalescing across unfolded copies plus NOP condensing:
/// merges `dec r a; …; dec r b` into one `dec r (a+b)` when nothing between
/// the two observes r, and erases segments that cannot execute (zero trips,
/// no setups) or carry no instructions at all.
PassChanges condense_pass(LoopProgram& program);

/// Position-aware dead-register-op elimination: a setup or decrement is dead
/// when no guard observes the register between it and the next setup of the
/// same register (or the end of the program). Subsumes global "no guard
/// references r anywhere" liveness and additionally retires overwritten
/// setups and trailing decrements.
PassChanges dce_pass(LoopProgram& program);

}  // namespace csr
