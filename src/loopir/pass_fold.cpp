#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "loopir/passes.hpp"

namespace csr {

PassChanges fold_pass(LoopProgram& program) {
  PassChanges changes;

  // Only single-trip segments qualify: there the setup and the decrement
  // each execute exactly once, so `setup r v; …; dec r a` collapses to
  // `setup r (v−a)` provided no guard observes r in between (a guard would
  // see the pre-decrement value). Decrements of *other* registers and
  // unguarded statements never observe r and are transparent. Multi-trip
  // segments cannot contain setups at all (validate()), and a zero-trip
  // segment executes neither instruction.
  for (LoopSegment& seg : program.segments) {
    if (seg.trip_count() != 1) continue;
    // reg → index (into `kept`) of its latest setup, still unobserved.
    std::map<std::string, std::size_t> setups;
    std::vector<Instruction> kept;
    kept.reserve(seg.instructions.size());
    for (Instruction& instr : seg.instructions) {
      switch (instr.kind) {
        case InstrKind::kSetup:
          kept.push_back(std::move(instr));
          setups[kept.back().reg] = kept.size() - 1;
          continue;
        case InstrKind::kDecrement: {
          const auto it = setups.find(instr.reg);
          if (it != setups.end()) {
            Instruction& setup = kept[it->second];
            // The amount is positive; fold only when v−a stays in range.
            if (setup.value >=
                std::numeric_limits<std::int64_t>::min() + instr.value) {
              setup.value -= instr.value;
              ++changes.setups_folded;
              continue;  // decrement absorbed
            }
          }
          break;
        }
        case InstrKind::kStatement:
          // A guard on r observes r: later decrements of r must not fold
          // past this point into the (earlier) setup.
          if (!instr.guard.empty()) setups.erase(instr.guard);
          break;
      }
      kept.push_back(std::move(instr));
    }
    seg.instructions = std::move(kept);
  }
  return changes;
}

}  // namespace csr
