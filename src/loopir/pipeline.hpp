#pragma once

/// \file pipeline.hpp
/// The fixpoint pass manager over LoopIR. One round runs the peephole
/// passes (passes.hpp) in a fixed order — fold, window, condense, dce — and
/// the pipeline repeats rounds until a whole round reports zero changes or
/// the hard iteration bound trips.
///
/// Termination is structural, not hoped-for: every counted change strictly
/// shrinks the lexicographic measure (instructions, guarded statements,
/// segments), and no pass ever grows any component, so the fixpoint is
/// reached after at most `code_size + guards + segments` productive rounds.
/// The bound exists to turn a pass bug into a loud, observable failure
/// (`converged == false`, `csr_opt_nonconverged_total`) instead of a hang.
///
/// Per-pass change counts and fixpoint iterations are exported through the
/// observability registry (`csr_opt_pass_changes_total`,
/// `csr_opt_fixpoint_iterations`, …); docs/OPTIMIZER.md is the catalogue.

#include <string>
#include <vector>

#include "loopir/passes.hpp"
#include "loopir/program.hpp"

namespace csr {

/// One pass execution within one round, for reporting and golden dumps.
struct PassReport {
  std::string pass;    ///< "fold" | "window" | "condense" | "dce"
  int iteration = 0;   ///< 1-based round number
  PassChanges changes;
  std::int64_t size_after = 0;  ///< code size once the pass ran
};

/// Pretty-printed IR captured after a pass that changed the program.
struct PipelineSnapshot {
  std::string label;  ///< e.g. "input", "iter1/window"
  std::string ir;     ///< loopir/printer `to_source` dump
};

struct PipelineOptions {
  /// Hard bound on fixpoint rounds (including the final no-change round).
  int max_iterations = 16;
  /// Capture `to_source` dumps of the input and after every changing pass.
  bool capture_snapshots = false;
};

struct PipelineResult {
  LoopProgram program;
  bool converged = false;  ///< a full round reported zero changes
  int iterations = 0;      ///< rounds executed, counting the no-change round
  std::int64_t size_before = 0;
  std::int64_t size_after = 0;
  PassChanges totals;              ///< summed over every pass and round
  std::vector<PassReport> passes;  ///< per pass × round, in execution order
  std::vector<PipelineSnapshot> snapshots;  ///< when capture_snapshots
};

/// Runs the pipeline on a copy of `program` (which must validate cleanly;
/// throws InvalidArgument otherwise). The result executes exactly the same
/// enabled statements in the same order with identical operand values.
[[nodiscard]] PipelineResult optimize_pipeline(const LoopProgram& program,
                                               const PipelineOptions& options = {});

}  // namespace csr
