#include "loopir/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/text.hpp"

namespace csr {

void write_program_text(std::ostream& os, const LoopProgram& program) {
  os << "program " << (program.name.empty() ? "unnamed" : program.name) << '\n';
  os << "n " << program.n << '\n';
  for (const LoopSegment& seg : program.segments) {
    os << "segment " << seg.begin << ' ' << seg.end << ' ' << seg.step << '\n';
    for (const Instruction& instr : seg.instructions) {
      switch (instr.kind) {
        case InstrKind::kStatement: {
          os << "stmt " << instr.stmt.array << ' ' << instr.stmt.offset << ' '
             << instr.stmt.op_text;
          if (!instr.guard.empty()) os << " guard " << instr.guard;
          for (const ArrayRef& src : instr.stmt.sources) {
            os << " src " << src.array << ' ' << src.offset;
          }
          os << '\n';
          break;
        }
        case InstrKind::kSetup:
          os << "setup " << instr.reg << ' ' << instr.value << '\n';
          break;
        case InstrKind::kDecrement:
          os << "dec " << instr.reg << ' ' << instr.value << '\n';
          break;
      }
    }
  }
}

std::string to_program_text(const LoopProgram& program) {
  std::ostringstream os;
  write_program_text(os, program);
  return os.str();
}

namespace {

[[noreturn]] void parse_fail(int line, const std::string& message) {
  std::ostringstream os;
  os << "line " << line << ": " << message;
  throw ParseError(os.str());
}

std::int64_t parse_int64(const std::string& token, int line) {
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(token, &pos);
    if (pos != token.size()) parse_fail(line, "trailing characters in '" + token + "'");
    return value;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    parse_fail(line, "expected integer, got '" + token + "'");
  }
}

}  // namespace

LoopProgram read_program_text(std::istream& is) {
  LoopProgram program;
  bool saw_header = false;
  bool saw_n = false;
  LoopSegment* segment = nullptr;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const auto tokens = split_ws(stripped);
    const std::string& kind = tokens.front();
    if (kind == "program") {
      if (saw_header) parse_fail(line_no, "duplicate 'program' header");
      std::vector<std::string> rest(tokens.begin() + 1, tokens.end());
      program.name = join(rest, " ");
      saw_header = true;
    } else if (kind == "n") {
      if (tokens.size() != 2) parse_fail(line_no, "expected: n <trip count>");
      program.n = parse_int64(tokens[1], line_no);
      saw_n = true;
    } else if (kind == "segment") {
      if (tokens.size() != 4) parse_fail(line_no, "expected: segment <begin> <end> <step>");
      LoopSegment seg;
      seg.begin = parse_int64(tokens[1], line_no);
      seg.end = parse_int64(tokens[2], line_no);
      seg.step = parse_int64(tokens[3], line_no);
      if (seg.step < 1) parse_fail(line_no, "segment step must be positive");
      program.segments.push_back(std::move(seg));
      segment = &program.segments.back();
    } else if (kind == "stmt" || kind == "setup" || kind == "dec") {
      if (segment == nullptr) parse_fail(line_no, "instruction before any segment");
      if (kind == "setup") {
        if (tokens.size() != 3) parse_fail(line_no, "expected: setup <reg> <initial>");
        segment->instructions.push_back(
            Instruction::setup(tokens[1], parse_int64(tokens[2], line_no)));
      } else if (kind == "dec") {
        if (tokens.size() != 3) parse_fail(line_no, "expected: dec <reg> <amount>");
        segment->instructions.push_back(
            Instruction::decrement(tokens[1], parse_int64(tokens[2], line_no)));
      } else {
        if (tokens.size() < 4) {
          parse_fail(line_no, "expected: stmt <array> <offset> <op> ...");
        }
        Statement stmt;
        stmt.array = tokens[1];
        stmt.offset = parse_int64(tokens[2], line_no);
        stmt.op_text = tokens[3];
        stmt.op_seed = op_seed_for(stmt.array);
        std::string guard;
        std::size_t k = 4;
        while (k < tokens.size()) {
          if (tokens[k] == "guard") {
            if (k + 1 >= tokens.size()) parse_fail(line_no, "guard needs a register");
            guard = tokens[k + 1];
            k += 2;
          } else if (tokens[k] == "src") {
            if (k + 2 >= tokens.size()) parse_fail(line_no, "src needs array and offset");
            stmt.sources.push_back(
                ArrayRef{tokens[k + 1], parse_int64(tokens[k + 2], line_no)});
            k += 3;
          } else {
            parse_fail(line_no, "unknown statement attribute '" + tokens[k] + "'");
          }
        }
        segment->instructions.push_back(Instruction::statement(std::move(stmt), guard));
      }
    } else {
      parse_fail(line_no, "unknown directive '" + kind + "'");
    }
  }
  if (!saw_header) throw ParseError("missing 'program' header");
  if (!saw_n) throw ParseError("missing 'n' directive");
  return program;
}

LoopProgram parse_program_text(const std::string& text) {
  std::istringstream is(text);
  return read_program_text(is);
}

}  // namespace csr
