#include "loopir/pipeline.hpp"

#include <utility>

#include "loopir/printer.hpp"
#include "observe/metrics.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace csr {

namespace {

/// The optimizer's slice of the metric catalogue (docs/OBSERVABILITY.md),
/// registered once and cached — the hot path only touches atomics.
struct OptimizerMetrics {
  observe::Counter& runs_total;
  observe::Counter& fixpoint_iterations;
  observe::Counter& pass_changes;
  observe::Counter& instructions_removed;
  observe::Counter& nonconverged;
  observe::Counter& fold_changes;
  observe::Counter& window_changes;
  observe::Counter& condense_changes;
  observe::Counter& dce_changes;

  static OptimizerMetrics& get() {
    static OptimizerMetrics metrics = [] {
      auto& reg = observe::MetricsRegistry::global();
      return OptimizerMetrics{
          reg.counter("csr_opt_runs_total", "Fixpoint pipeline invocations"),
          reg.counter("csr_opt_fixpoint_iterations",
                      "Fixpoint rounds executed, summed over runs"),
          reg.counter("csr_opt_pass_changes_total",
                      "IR changes reported by all passes"),
          reg.counter("csr_opt_instructions_removed_total",
                      "Instructions deleted by the pipeline"),
          reg.counter("csr_opt_nonconverged_total",
                      "Runs stopped by the iteration bound (pass bug canary)"),
          reg.counter("csr_opt_fold_changes_total", "Changes by the fold pass"),
          reg.counter("csr_opt_window_changes_total",
                      "Changes by the guard-window pass"),
          reg.counter("csr_opt_condense_changes_total",
                      "Changes by the condense pass"),
          reg.counter("csr_opt_dce_changes_total", "Changes by the dce pass"),
      };
    }();
    return metrics;
  }
};

struct Pass {
  const char* name;
  PassChanges (*run)(LoopProgram&);
  observe::Counter* changes_counter;
};

}  // namespace

PipelineResult optimize_pipeline(const LoopProgram& program,
                                 const PipelineOptions& options) {
  {
    const auto problems = program.validate();
    if (!problems.empty()) {
      throw InvalidArgument("cannot optimize invalid program: " +
                            join(problems, "; "));
    }
  }
  OptimizerMetrics& metrics = OptimizerMetrics::get();
  metrics.runs_total.increment();

  PipelineResult result;
  result.program = program;
  result.size_before = program.code_size();
  if (options.capture_snapshots) {
    result.snapshots.push_back({"input", to_source(result.program)});
  }

  const Pass passes[] = {
      {"fold", &fold_pass, &metrics.fold_changes},
      {"window", &window_pass, &metrics.window_changes},
      {"condense", &condense_pass, &metrics.condense_changes},
      {"dce", &dce_pass, &metrics.dce_changes},
  };

  while (result.iterations < options.max_iterations) {
    ++result.iterations;
    std::int64_t round_changes = 0;
    for (const Pass& pass : passes) {
      PassReport report;
      report.pass = pass.name;
      report.iteration = result.iterations;
      report.changes = pass.run(result.program);
      report.size_after = result.program.code_size();
      const std::int64_t changed = report.changes.total();
      round_changes += changed;
      result.totals += report.changes;
      if (changed > 0) {
        pass.changes_counter->increment(static_cast<std::uint64_t>(changed));
        if (options.capture_snapshots) {
          result.snapshots.push_back(
              {"iter" + std::to_string(result.iterations) + "/" + pass.name,
               to_source(result.program)});
        }
      }
      result.passes.push_back(std::move(report));
    }
    if (round_changes == 0) {
      result.converged = true;
      break;
    }
  }

  result.size_after = result.program.code_size();
  metrics.fixpoint_iterations.increment(
      static_cast<std::uint64_t>(result.iterations));
  metrics.pass_changes.increment(static_cast<std::uint64_t>(result.totals.total()));
  metrics.instructions_removed.increment(
      static_cast<std::uint64_t>(result.totals.instructions_removed()));
  if (!result.converged) metrics.nonconverged.increment();
  return result;
}

}  // namespace csr
