#include <cstddef>
#include <string>
#include <vector>

#include "loopir/passes.hpp"

namespace csr {

namespace {

/// Is the register op at segments[s].instructions[i] (a setup or decrement
/// of register r) observable? It is live iff some guard use of r executes
/// after it and before the next *executed* setup of r. The scan follows
/// runtime order: within a multi-trip segment every instruction wraps around
/// to the next trip, so any guard use of r anywhere in such a segment counts
/// (and such segments cannot contain setups); zero-trip segments execute
/// nothing and are invisible.
bool live(const LoopProgram& program, std::size_t s, std::size_t i,
          const std::string& r) {
  const LoopSegment& own = program.segments[s];
  if (own.trip_count() >= 2) {
    for (const Instruction& instr : own.instructions) {
      if (instr.kind == InstrKind::kStatement && instr.guard == r) return true;
    }
  } else {
    for (std::size_t j = i + 1; j < own.instructions.size(); ++j) {
      const Instruction& instr = own.instructions[j];
      if (instr.kind == InstrKind::kStatement && instr.guard == r) return true;
      if (instr.kind == InstrKind::kSetup && instr.reg == r) return false;
    }
  }
  for (std::size_t t = s + 1; t < program.segments.size(); ++t) {
    const LoopSegment& seg = program.segments[t];
    if (seg.trip_count() == 0) continue;
    for (const Instruction& instr : seg.instructions) {
      if (instr.kind == InstrKind::kStatement && instr.guard == r) return true;
      if (instr.kind == InstrKind::kSetup && instr.reg == r) return false;
    }
  }
  return false;
}

}  // namespace

PassChanges dce_pass(LoopProgram& program) {
  PassChanges changes;

  // Deadness is consistent under simultaneous removal: a setup is dead only
  // when every decrement downstream of it (before the next setup / program
  // end) is dead too — both scans hit the same re-setup or program end — so
  // removing all dead ops at once never leaves a decrement without its
  // setup, and validate() stays clean. Zero-trip segments are skipped
  // entirely: their ops never execute, but a setup there can still be the
  // syntactic setup-before-use witness validate() wants.
  for (std::size_t s = 0; s < program.segments.size(); ++s) {
    LoopSegment& seg = program.segments[s];
    if (seg.trip_count() == 0) continue;
    // Decide first, filter second: live() re-scans this very segment, so the
    // instruction list must stay intact until every verdict is in.
    std::vector<bool> dead(seg.instructions.size(), false);
    for (std::size_t i = 0; i < seg.instructions.size(); ++i) {
      const Instruction& instr = seg.instructions[i];
      const bool register_op =
          instr.kind == InstrKind::kSetup || instr.kind == InstrKind::kDecrement;
      dead[i] = register_op && !live(program, s, i, instr.reg);
    }
    std::vector<Instruction> kept;
    kept.reserve(seg.instructions.size());
    for (std::size_t i = 0; i < seg.instructions.size(); ++i) {
      if (dead[i]) {
        ++changes.register_ops_removed;
      } else {
        kept.push_back(std::move(seg.instructions[i]));
      }
    }
    seg.instructions = std::move(kept);
  }
  return changes;
}

}  // namespace csr
