#include "loopir/printer.hpp"

#include <ostream>
#include <sstream>

namespace csr {

namespace {

std::string format_index(std::int64_t offset, std::int64_t i, bool substitute) {
  std::ostringstream os;
  if (substitute) {
    os << (i + offset);
  } else {
    os << 'i';
    if (offset > 0) os << '+' << offset;
    if (offset < 0) os << '-' << -offset;
  }
  return os.str();
}

std::string format_ref(const ArrayRef& ref, std::int64_t i, bool substitute) {
  return ref.array + "[" + format_index(ref.offset, i, substitute) + "]";
}

}  // namespace

std::string format_instruction(const Instruction& instr, std::int64_t i,
                               bool substitute) {
  std::ostringstream os;
  switch (instr.kind) {
    case InstrKind::kStatement: {
      if (!instr.guard.empty()) os << '(' << instr.guard << ") ";
      os << instr.stmt.array << '[' << format_index(instr.stmt.offset, i, substitute)
         << "] = ";
      if (instr.stmt.sources.empty()) {
        os << "input()";
      } else {
        for (std::size_t k = 0; k < instr.stmt.sources.size(); ++k) {
          if (k > 0) os << ' ' << instr.stmt.op_text << ' ';
          os << format_ref(instr.stmt.sources[k], i, substitute);
        }
      }
      os << ';';
      break;
    }
    case InstrKind::kSetup:
      os << instr.reg << " = setup " << instr.value << " : -n;";
      break;
    case InstrKind::kDecrement:
      os << instr.reg << " = " << instr.reg << " - " << instr.value << ';';
      break;
  }
  return os.str();
}

void write_program(std::ostream& os, const LoopProgram& program) {
  os << "// " << program.name << "  (n = " << program.n
     << ", code size = " << program.code_size() << ")\n";
  for (const LoopSegment& seg : program.segments) {
    if (seg.trip_count() == 0) continue;
    if (seg.straight_line()) {
      for (const Instruction& instr : seg.instructions) {
        os << format_instruction(instr, seg.begin, /*substitute=*/true) << '\n';
      }
    } else {
      os << "for i = " << seg.begin << " to " << seg.end;
      if (seg.step != 1) os << " by " << seg.step;
      os << " do\n";
      for (const Instruction& instr : seg.instructions) {
        os << "  " << format_instruction(instr, 0, /*substitute=*/false) << '\n';
      }
      os << "end\n";
    }
  }
}

std::string to_source(const LoopProgram& program) {
  std::ostringstream os;
  write_program(os, program);
  return os.str();
}

}  // namespace csr
