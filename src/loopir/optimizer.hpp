#pragma once

/// \file optimizer.hpp
/// Guard simplification for loop programs — the legacy single-call facade
/// over the fixpoint pass pipeline (pipeline.hpp). Conditional-register
/// values are fully determined at compile time: a register is set up once
/// and then decremented by constants, so its value at any instruction of any
/// trip is an affine function of the trip index. The pipeline evaluates each
/// guard's window exactly and
///
///   * drops guards that are enabled on every trip of their segment,
///   * deletes statements whose guard never enables,
///   * removes setups and decrements no guard observes afterwards,
///   * coalesces decrements across unfolded copies and folds decrements
///     into their setups where nothing observes the intermediate value.
///
/// The interesting consequence for the paper's framework: when the trip
/// count divides the unfolding factor (no remainder) or n is known at
/// compile time, the CSR overhead partially or entirely evaporates — the
/// optimizer quantifies exactly how much of the conditional-register cost
/// is paid for the *capability* of handling arbitrary n.

#include "loopir/program.hpp"

namespace csr {

struct OptimizationReport {
  std::int64_t guards_dropped = 0;
  std::int64_t statements_removed = 0;
  std::int64_t registers_removed = 0;  ///< setup+decrement instructions removed
  LoopProgram program;
};

/// Optimizes `program` (which must validate cleanly). The result is
/// observably equivalent: it executes exactly the same enabled statements in
/// the same order.
[[nodiscard]] OptimizationReport optimize_program(const LoopProgram& program);

}  // namespace csr
