#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "loopir/passes.hpp"

namespace csr {

namespace {

/// Does `instr` reference register `reg` at all (as guard, setup target or
/// decrement target)? References are the merge barriers: a decrement may
/// only travel forward across instructions that never look at its register.
bool references(const Instruction& instr, const std::string& reg) {
  switch (instr.kind) {
    case InstrKind::kStatement:
      return instr.guard == reg;
    case InstrKind::kSetup:
    case InstrKind::kDecrement:
      return instr.reg == reg;
  }
  return false;
}

}  // namespace

PassChanges condense_pass(LoopProgram& program) {
  PassChanges changes;

  // Coalesce decrements: within one segment body, `dec r a; …; dec r b`
  // merges into `dec r (a+b)` at the later position when no instruction in
  // between references r. Legal because guards are the only observers of r
  // and every observation point keeps its exact prefix sum; the per-trip
  // total (and therefore the value entering every later trip and segment)
  // is unchanged. Merges never cross a trip boundary: the scan is a single
  // forward walk over the body list.
  for (LoopSegment& seg : program.segments) {
    if (seg.trip_count() == 0) continue;  // never executes; handled below
    // reg → index (into `kept`) of a decrement still eligible to merge.
    std::map<std::string, std::size_t> pending;
    std::vector<Instruction> kept;
    kept.reserve(seg.instructions.size());
    for (Instruction& instr : seg.instructions) {
      if (instr.kind == InstrKind::kDecrement) {
        const auto it = pending.find(instr.reg);
        if (it != pending.end()) {
          Instruction& prev = kept[it->second];
          // Both amounts are positive; merge only when the sum stays in
          // range (Instruction::decrement requires a representable amount).
          if (prev.value <= std::numeric_limits<std::int64_t>::max() - instr.value) {
            instr.value += prev.value;
            kept.erase(kept.begin() + static_cast<std::ptrdiff_t>(it->second));
            for (auto& [reg, idx] : pending) {
              if (idx > it->second) --idx;
            }
            ++changes.decrements_coalesced;
          }
        }
        kept.push_back(std::move(instr));
        pending[kept.back().reg] = kept.size() - 1;
        continue;
      }
      // A setup of r is a barrier too: merging a decrement across it would
      // change the value the re-setup overwrites vs. the value after it.
      for (auto it = pending.begin(); it != pending.end();) {
        it = references(instr, it->first) ? pending.erase(it) : std::next(it);
      }
      kept.push_back(std::move(instr));
    }
    seg.instructions = std::move(kept);
  }

  // NOP condensing: a zero-trip segment executes nothing, so its statements
  // and decrements can go. Segments holding a setup are kept untouched —
  // removing a setup, even one that never executes, could strip the
  // syntactic setup-before-use witness validate() checks.
  std::erase_if(program.segments, [&](const LoopSegment& seg) {
    if (seg.trip_count() != 0) return false;
    for (const Instruction& instr : seg.instructions) {
      if (instr.kind == InstrKind::kSetup) return false;
    }
    for (const Instruction& instr : seg.instructions) {
      if (instr.kind == InstrKind::kStatement) {
        ++changes.statements_removed;
      } else {
        ++changes.register_ops_removed;
      }
    }
    ++changes.segments_removed;
    return true;
  });

  // And segments that other passes emptied out.
  std::erase_if(program.segments, [&](const LoopSegment& seg) {
    if (!seg.instructions.empty()) return false;
    ++changes.segments_removed;
    return true;
  });
  return changes;
}

}  // namespace csr
