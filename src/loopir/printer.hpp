#pragma once

/// \file printer.hpp
/// Pretty-printing of loop programs in the paper's figure style:
///
///     p1 = setup 0 : -n;
///     for i = -2 to n do
///       (p1) A[i+3] = E[i-1] + 9;
///       p1 = p1 - 1;
///     end
///
/// Straight-line segments print with absolute indices substituted
/// (`A[3] = E[-1] + 9;`), matching Figure 3(a).

#include <iosfwd>
#include <string>

#include "loopir/program.hpp"

namespace csr {

/// Renders one instruction at loop index `i` (indices substituted when
/// `substitute` is true, symbolic `i±k` otherwise).
[[nodiscard]] std::string format_instruction(const Instruction& instr, std::int64_t i,
                                             bool substitute);

void write_program(std::ostream& os, const LoopProgram& program);
[[nodiscard]] std::string to_source(const LoopProgram& program);

}  // namespace csr
