#include "codegen/retimed.hpp"

#include "codegen/registers.hpp"
#include "codegen/statements.hpp"
#include "dfg/algorithms.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {

/// Statements of the retimed body — node v's statement shifted by r(v) —
/// in a zero-delay topological order of the retimed graph, paired with the
/// node each came from.
struct RetimedBody {
  std::vector<NodeId> order;
  std::vector<Statement> stmts;  // parallel to `order`
};

RetimedBody retimed_body(const DataFlowGraph& g, const Retiming& r) {
  const DataFlowGraph retimed = apply_retiming(g, r);
  const auto order = zero_delay_topological_order(retimed);
  CSR_ENSURE(order.has_value(), "retimed graph has a zero-delay cycle");
  const auto base = node_statements(g);
  RetimedBody body;
  body.order = *order;
  body.stmts.reserve(order->size());
  for (const NodeId v : *order) {
    body.stmts.push_back(shifted(base[v], r[v]));
  }
  return body;
}

void require_preconditions(const DataFlowGraph& g, const Retiming& r, std::int64_t n,
                           int depth) {
  CSR_REQUIRE(n >= 1, "trip count must be >= 1");
  CSR_REQUIRE(is_legal_retiming(g, r), "retiming is not legal for this graph");
  CSR_REQUIRE(n > depth, "trip count must exceed the pipeline depth M_r");
}

}  // namespace

LoopProgram retimed_program(const DataFlowGraph& g, const Retiming& r, std::int64_t n) {
  const Retiming norm = r.normalized();
  const int depth = norm.max_value();
  require_preconditions(g, norm, n, depth);
  const RetimedBody body = retimed_body(g, norm);

  LoopProgram program;
  program.name = g.name() + " (retimed)";
  program.n = n;

  // Prologue: run the body for virtual indices 1−M..0, keeping statements
  // whose target i + r(v) lands in 1..n.
  for (std::int64_t i = 1 - depth; i <= 0; ++i) {
    LoopSegment seg;
    seg.begin = seg.end = i;
    for (std::size_t k = 0; k < body.order.size(); ++k) {
      const std::int64_t target = i + norm[body.order[k]];
      if (target >= 1) {
        seg.instructions.push_back(Instruction::statement(body.stmts[k]));
      }
    }
    if (!seg.instructions.empty()) program.segments.push_back(std::move(seg));
  }

  // Steady state: every statement, for i = 1..n−M.
  LoopSegment loop;
  loop.begin = 1;
  loop.end = n - depth;
  loop.step = 1;
  for (const Statement& s : body.stmts) {
    loop.instructions.push_back(Instruction::statement(s));
  }
  program.segments.push_back(std::move(loop));

  // Epilogue: drain for i = n−M+1..n, keeping targets ≤ n.
  for (std::int64_t i = n - depth + 1; i <= n; ++i) {
    LoopSegment seg;
    seg.begin = seg.end = i;
    for (std::size_t k = 0; k < body.order.size(); ++k) {
      const std::int64_t target = i + norm[body.order[k]];
      if (target <= n) {
        seg.instructions.push_back(Instruction::statement(body.stmts[k]));
      }
    }
    if (!seg.instructions.empty()) program.segments.push_back(std::move(seg));
  }
  return program;
}

LoopProgram retimed_csr_program(const DataFlowGraph& g, const Retiming& r,
                                std::int64_t n) {
  const Retiming norm = r.normalized();
  const int depth = norm.max_value();
  require_preconditions(g, norm, n, depth);
  const RetimedBody body = retimed_body(g, norm);
  const RegisterPlan plan(norm.distinct_values());

  LoopProgram program;
  program.name = g.name() + " (retimed, CSR)";
  program.n = n;

  // Setups: register of retiming value r starts at M_r − r, so its guard
  // window 0 ≥ p > −n opens after M_r − r trips and admits exactly n
  // executions.
  LoopSegment setup;
  setup.begin = setup.end = 0;
  for (const int value : plan.classes_desc()) {
    setup.instructions.push_back(Instruction::setup(plan.reg_for(value), depth - value));
  }
  program.segments.push_back(std::move(setup));

  // One loop for fill + steady state + drain: n + M_r trips.
  LoopSegment loop;
  loop.begin = 1 - depth;
  loop.end = n;
  loop.step = 1;
  for (std::size_t k = 0; k < body.order.size(); ++k) {
    const int value = norm[body.order[k]];
    loop.instructions.push_back(Instruction::statement(body.stmts[k], plan.reg_for(value)));
  }
  for (const std::string& reg : plan.names()) {
    loop.instructions.push_back(Instruction::decrement(reg));
  }
  program.segments.push_back(std::move(loop));
  return program;
}

}  // namespace csr
