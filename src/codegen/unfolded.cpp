#include "codegen/unfolded.hpp"

#include "codegen/statements.hpp"
#include "dfg/algorithms.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {

std::vector<NodeId> body_order(const DataFlowGraph& g) {
  const auto order = zero_delay_topological_order(g);
  if (!order) throw InvalidArgument("cannot generate code: zero-delay cycle present");
  return *order;
}

}  // namespace

LoopProgram unfolded_program(const DataFlowGraph& g, int factor, std::int64_t n) {
  CSR_REQUIRE(factor >= 1, "unfolding factor must be >= 1");
  CSR_REQUIRE(n >= 1, "trip count must be >= 1");
  const auto order = body_order(g);
  const auto stmts = node_statements(g);

  LoopProgram program;
  program.name = g.name() + " (unfolded x" + std::to_string(factor) + ")";
  program.n = n;

  const std::int64_t full_trips = n / factor;

  // Unfolded body: copy j computes iteration i + j. Copies are emitted in
  // ascending j; intra-copy order is topological, and any same-trip
  // cross-copy dependence flows from a smaller copy index (j − d ≤ j), so
  // the emission order respects all dependencies.
  if (full_trips >= 1) {
    LoopSegment loop;
    loop.begin = 1;
    loop.end = 1 + (full_trips - 1) * factor;
    loop.step = factor;
    for (int j = 0; j < factor; ++j) {
      for (const NodeId v : order) {
        loop.instructions.push_back(Instruction::statement(shifted(stmts[v], j)));
      }
    }
    program.segments.push_back(std::move(loop));
  }

  // Remainder: the last n mod f iterations, straight-line.
  for (std::int64_t i = full_trips * factor + 1; i <= n; ++i) {
    LoopSegment seg;
    seg.begin = seg.end = i;
    for (const NodeId v : order) {
      seg.instructions.push_back(Instruction::statement(stmts[v]));
    }
    program.segments.push_back(std::move(seg));
  }
  return program;
}

LoopProgram unfolded_csr_program(const DataFlowGraph& g, int factor, std::int64_t n) {
  CSR_REQUIRE(factor >= 1, "unfolding factor must be >= 1");
  CSR_REQUIRE(n >= 1, "trip count must be >= 1");
  const auto order = body_order(g);
  const auto stmts = node_statements(g);

  LoopProgram program;
  program.name = g.name() + " (unfolded x" + std::to_string(factor) + ", CSR)";
  program.n = n;

  // Register p1 is decremented after every copy, so copy j of trip t sees
  // p1 = −((t−1)·f + j) = 1 − (iteration index it computes); the guard
  // window 0 ≥ p1 > −n disables exactly the copies past iteration n.
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 0));
  program.segments.push_back(std::move(setup));

  const std::int64_t trips = (n + factor - 1) / factor;
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 1 + (trips - 1) * factor;
  loop.step = factor;
  for (int j = 0; j < factor; ++j) {
    for (const NodeId v : order) {
      loop.instructions.push_back(Instruction::statement(shifted(stmts[v], j), "p1"));
    }
    loop.instructions.push_back(Instruction::decrement("p1"));
  }
  program.segments.push_back(std::move(loop));
  return program;
}

}  // namespace csr
