#pragma once

/// \file c_emitter.hpp
/// Emission of compilable C from a loop program — the last mile from the
/// paper's abstract loop code to something a DSP toolchain could ingest.
/// Conditional registers become plain integer variables, the guard window
/// `0 ≥ p > −LC` becomes an `if`, and arrays are backed by statically-sized
/// buffers with an index offset large enough to cover every negative index
/// the program can touch (boundary reads before iteration 1 and prologue
/// indices).
///
/// Statement semantics in C: operands joined with the statement's operator
/// and source-free statements read a synthetic input `(T)(idx)` — the same
/// shape as the paper's examples (`A[i] = E[i-4] + 9`), with the constant
/// folded away.

#include <string>

#include "loopir/program.hpp"

namespace csr {

struct CEmitterOptions {
  /// Element type of the arrays.
  std::string value_type = "double";
  /// Name of the emitted function.
  std::string function_name = "kernel";
};

/// Emits a self-contained C translation unit containing one function that
/// executes `program`. Array extents and index offsets are derived from the
/// program's actual index ranges. Throws InvalidArgument when the program
/// does not validate.
[[nodiscard]] std::string to_c_source(const LoopProgram& program,
                                      const CEmitterOptions& options = {});

}  // namespace csr
