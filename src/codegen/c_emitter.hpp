#pragma once

/// \file c_emitter.hpp
/// Emission of compilable C from a loop program — the last mile from the
/// paper's abstract loop code to something a DSP toolchain could ingest.
/// Conditional registers become plain integer variables, the guard window
/// `0 ≥ p > −LC` becomes an `if`, and arrays are backed by statically-sized
/// buffers with an index offset large enough to cover every negative index
/// the program can touch (boundary reads before iteration 1 and prologue
/// indices).
///
/// Statement semantics in C depend on the selected Semantics:
///
///   * kNumeric (default) — operands joined with the statement's operator,
///     and source-free statements read a synthetic input `(T)(idx)` — the
///     same shape as the paper's examples (`A[i] = E[i-4] + 9`), with the
///     constant folded away. This is the human-facing DSP kernel.
///   * kExact — the VM's abstract statement semantics, bit for bit: every
///     array cell is a uint64_t, statements hash (op_seed, target index,
///     operand values) with the same SplitMix64 finalizer the VM uses, and
///     reads of never-written cells yield the VM's boundary values. The
///     translation unit additionally exports a `csr_*` descriptor table
///     (array names, buffer pointers, write-count buffers, index bases) so a
///     host that dlopens the compiled object can read back the final array
///     state and diff it against the interpreter — the contract of the
///     native execution engine in src/native/. See docs/ENGINES.md.

#include <string>

#include "loopir/program.hpp"

namespace csr {

struct CEmitterOptions {
  enum class Semantics {
    kNumeric,  ///< paper-flavoured arithmetic over value_type
    kExact,    ///< bit-exact VM hash semantics + exported state descriptors
  };

  /// Element type of the arrays (kNumeric only; kExact forces uint64_t).
  std::string value_type = "double";
  /// Name of the emitted function.
  std::string function_name = "kernel";
  /// Statement semantics; see the file comment.
  Semantics semantics = Semantics::kNumeric;
};

/// Emits a self-contained C translation unit containing one function that
/// executes `program`. Array extents and index offsets are derived from the
/// program's actual index ranges. Throws InvalidArgument when the program
/// does not validate.
[[nodiscard]] std::string to_c_source(const LoopProgram& program,
                                      const CEmitterOptions& options = {});

}  // namespace csr
