#pragma once

/// \file vliw.hpp
/// VLIW kernel packing for CSR loops — the machine model of the paper's
/// Section 3.2 discussion: "for VLIW architecture, the inserted
/// [setup/decrement] instructions can be put into a slot of the long
/// instruction word wherever possible after all the guarded instructions
/// are issued."
///
/// The packer schedules the retimed loop body under a functional-unit model
/// (one instruction word per control step), guards every statement with its
/// retiming class's conditional register, and places each register's
/// decrement into a free *scalar* slot no earlier than the last word that
/// issues a statement guarded by that register — extending the kernel only
/// when no slot is free. The packed kernel is also materialized as an
/// executable LoopProgram so its semantics can be checked in the VM.
///
/// Restricted to unit-time graphs (one word per operation), matching the
/// paper's experimental setting.

#include "dfg/graph.hpp"
#include "loopir/program.hpp"
#include "retiming/retiming.hpp"
#include "schedule/resources.hpp"

namespace csr {

/// One long instruction word: statements issue in parallel; register
/// updates apply after the word's guard tests.
struct VliwWord {
  std::vector<Instruction> statements;
  std::vector<Instruction> register_ops;  ///< decrements in scalar slots
};

struct VliwKernel {
  /// Words per loop trip — the achieved initiation interval.
  int words_per_trip = 0;
  std::vector<VliwWord> words;
  /// Fraction of issue slots (functional-unit + scalar) actually filled.
  double utilization = 0.0;
  /// Executable form: conditional-register setups plus the kernel loop,
  /// running for n + M_r trips like retimed_csr_program.
  LoopProgram program;
};

struct VliwOptions {
  /// Scalar slots per word available for setup/decrement instructions.
  int scalar_slots = 1;
};

/// Packs the CSR form of the retimed loop into VLIW words. Requires a
/// unit-time legal graph, a legal retiming and n > M_r. Throws
/// InvalidArgument otherwise.
[[nodiscard]] VliwKernel pack_vliw_kernel(const DataFlowGraph& g, const Retiming& r,
                                          std::int64_t n, const ResourceModel& model,
                                          const VliwOptions& options = {});

/// Instruction-word (cycle) accounting for the paper's performance claim
/// ("code size reduction does not hurt the performance ... by and large",
/// Section 3.2): the CSR loop runs n + M_r kernel trips, while the expanded
/// form runs n − M_r trips plus explicitly scheduled prologue/epilogue
/// stages. Words are counted under the same functional-unit model.
struct VliwCycleAccounting {
  std::int64_t prologue_words = 0;  ///< expanded form's fill code
  std::int64_t epilogue_words = 0;  ///< expanded form's drain code
  std::int64_t kernel_words = 0;    ///< words per kernel trip (incl. register ops)
  std::int64_t expanded_cycles = 0; ///< prologue + (n−M_r)·kernel + epilogue
  std::int64_t csr_cycles = 0;      ///< (n+M_r)·kernel
  /// csr_cycles / expanded_cycles − 1; ≈ 0 for realistic trip counts.
  double overhead = 0.0;
};

[[nodiscard]] VliwCycleAccounting vliw_cycle_accounting(const DataFlowGraph& g,
                                                        const Retiming& r,
                                                        std::int64_t n,
                                                        const ResourceModel& model,
                                                        const VliwOptions& options = {});

}  // namespace csr
