#include "codegen/unfolded_retimed.hpp"

#include "codegen/registers.hpp"
#include "codegen/statements.hpp"
#include "dfg/algorithms.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {

struct UnfoldedBody {
  /// Unfolded node ids in a zero-delay topological order of the retimed
  /// unfolded graph (cross-copy intra-trip dependencies included).
  std::vector<NodeId> order;
  /// Statement of each unfolded node, parallel to `order`: the original
  /// node's statement shifted by its iteration offset c = j + f·r.
  std::vector<Statement> stmts;
  /// Iteration offsets, parallel to `order`.
  std::vector<std::int64_t> offsets;
};

UnfoldedBody unfolded_retimed_body(const Unfolding& unfolding, const Retiming& r) {
  const DataFlowGraph retimed = apply_retiming(unfolding.graph(), r);
  const auto order = zero_delay_topological_order(retimed);
  CSR_ENSURE(order.has_value(), "retimed unfolded graph has a zero-delay cycle");
  const auto base = node_statements(unfolding.original());
  const int f = unfolding.factor();

  UnfoldedBody body;
  body.order = *order;
  for (const NodeId w : *order) {
    const NodeId v = unfolding.original_node(w);
    const std::int64_t offset = unfolding.copy_index(w) + static_cast<std::int64_t>(f) * r[w];
    body.offsets.push_back(offset);
    body.stmts.push_back(shifted(base[v], offset));
  }
  return body;
}

}  // namespace

LoopProgram unfolded_retimed_program(const Unfolding& unfolding,
                                     const Retiming& r_unfolded, std::int64_t n) {
  const int f = unfolding.factor();
  const Retiming norm = r_unfolded.normalized();
  const int depth = norm.max_value();
  CSR_REQUIRE(is_legal_retiming(unfolding.graph(), norm),
              "retiming is not legal for the unfolded graph");
  const std::int64_t unfolded_trips = n / f;
  CSR_REQUIRE(unfolded_trips > depth,
              "need more than M'_r full unfolded trips (⌊n/f⌋ > M'_r)");
  const UnfoldedBody body = unfolded_retimed_body(unfolding, norm);
  const DataFlowGraph& original = unfolding.original();

  LoopProgram program;
  program.name =
      original.name() + " (unfolded x" + std::to_string(f) + "+retimed)";
  program.n = n;

  const std::int64_t covered = unfolded_trips * f;  // iterations handled by the loop

  // Prologue: M'_r virtual unfolded trips before the loop; keep statements
  // whose target lands in 1..covered.
  for (std::int64_t t = 1 - depth; t <= 0; ++t) {
    const std::int64_t i = 1 + (t - 1) * f;
    LoopSegment seg;
    seg.begin = seg.end = i;
    for (std::size_t k = 0; k < body.order.size(); ++k) {
      const std::int64_t target = i + body.offsets[k];
      if (target >= 1) {
        seg.instructions.push_back(Instruction::statement(body.stmts[k]));
      }
    }
    if (!seg.instructions.empty()) program.segments.push_back(std::move(seg));
  }

  // Steady state: unfolded_trips − M'_r trips.
  const std::int64_t steady = unfolded_trips - depth;
  if (steady >= 1) {
    LoopSegment loop;
    loop.begin = 1;
    loop.end = 1 + (steady - 1) * f;
    loop.step = f;
    for (const Statement& s : body.stmts) {
      loop.instructions.push_back(Instruction::statement(s));
    }
    program.segments.push_back(std::move(loop));
  }

  // Epilogue: M'_r draining trips; keep targets ≤ covered.
  for (std::int64_t t = steady + 1; t <= unfolded_trips; ++t) {
    const std::int64_t i = 1 + (t - 1) * f;
    LoopSegment seg;
    seg.begin = seg.end = i;
    for (std::size_t k = 0; k < body.order.size(); ++k) {
      const std::int64_t target = i + body.offsets[k];
      if (target <= covered) {
        seg.instructions.push_back(Instruction::statement(body.stmts[k]));
      }
    }
    if (!seg.instructions.empty()) program.segments.push_back(std::move(seg));
  }

  // Remainder: iterations covered+1..n of the original loop, straight-line.
  const auto original_order = zero_delay_topological_order(original);
  CSR_ENSURE(original_order.has_value(), "original graph has a zero-delay cycle");
  const auto original_stmts = node_statements(original);
  for (std::int64_t i = covered + 1; i <= n; ++i) {
    LoopSegment seg;
    seg.begin = seg.end = i;
    for (const NodeId v : *original_order) {
      seg.instructions.push_back(Instruction::statement(original_stmts[v]));
    }
    program.segments.push_back(std::move(seg));
  }
  return program;
}

LoopProgram unfolded_retimed_csr_program(const Unfolding& unfolding,
                                         const Retiming& r_unfolded, std::int64_t n) {
  const int f = unfolding.factor();
  const Retiming norm = r_unfolded.normalized();
  const int depth = norm.max_value();
  CSR_REQUIRE(is_legal_retiming(unfolding.graph(), norm),
              "retiming is not legal for the unfolded graph");
  CSR_REQUIRE(n / f > depth, "need more than M'_r full unfolded trips (⌊n/f⌋ > M'_r)");
  const UnfoldedBody body = unfolded_retimed_body(unfolding, norm);

  LoopProgram program;
  program.name = unfolding.original().name() + " (unfolded x" + std::to_string(f) +
                 "+retimed, CSR)";
  program.n = n;

  // Guard classes: the distinct iteration offsets. Register of offset c is
  // initialized to f·M'_r − c and decremented by f per trip, so at trip t
  // (loop index i = i0 + (t−1)·f with i0 = 1 − f·M'_r) it holds
  // 1 − (i + c) = 1 − target.
  std::vector<int> classes;
  classes.reserve(body.offsets.size());
  for (const std::int64_t c : body.offsets) {
    classes.push_back(static_cast<int>(c));
  }
  const RegisterPlan plan(classes);

  LoopSegment setup;
  setup.begin = setup.end = 0;
  for (const int c : plan.classes_desc()) {
    setup.instructions.push_back(
        Instruction::setup(plan.reg_for(c), static_cast<std::int64_t>(f) * depth - c));
  }
  program.segments.push_back(std::move(setup));

  const std::int64_t i0 = 1 - static_cast<std::int64_t>(f) * depth;
  const std::int64_t trips = depth + (n + f - 1) / f;
  LoopSegment loop;
  loop.begin = i0;
  loop.end = i0 + (trips - 1) * f;
  loop.step = f;
  for (std::size_t k = 0; k < body.order.size(); ++k) {
    loop.instructions.push_back(Instruction::statement(
        body.stmts[k], plan.reg_for(static_cast<int>(body.offsets[k]))));
  }
  for (const std::string& reg : plan.names()) {
    loop.instructions.push_back(Instruction::decrement(reg, f));
  }
  program.segments.push_back(std::move(loop));
  return program;
}

}  // namespace csr
