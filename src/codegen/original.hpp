#pragma once

/// \file original.hpp
/// Code generation for the untransformed loop — the reference semantics that
/// every transformed program is compared against, and the L_orig of the
/// code-size model.

#include "dfg/graph.hpp"
#include "loopir/program.hpp"

namespace csr {

/// `for i = 1 to n { one statement per node }`, statements in a zero-delay
/// topological order so intra-iteration dependencies are respected.
/// Requires a legal graph and n ≥ 1.
[[nodiscard]] LoopProgram original_program(const DataFlowGraph& g, std::int64_t n);

}  // namespace csr
