#pragma once

/// \file unfolded_retimed.hpp
/// Code generation for loops that are unfolded FIRST and THEN retimed — the
/// order Theorem 4.4 shows to be inferior in code size. The retiming is a
/// function on the *unfolded* graph, so different copies of the same node
/// may be pipelined to different depths; one unit of retiming on the
/// unfolded graph shifts a copy by f original iterations.
///
/// Expanded shape (Theorem 4.4): prologue and epilogue of the retimed
/// unfolded loop — each M'_r trips of f·L statements — around the unfolded
/// body, plus the n mod f remainder iterations of the *original* loop,
/// giving (M'_r + 1)·f·L + Q_f.
///
/// CSR shape: a single loop of M'_r + ⌈n/f⌉ trips. A statement for copy j
/// of node v retimed by r computes iteration i + j + f·r, so its guard
/// class is the *iteration offset* c = j + f·r; one conditional register per
/// distinct offset, initialized to f·M'_r − c and decremented by f once per
/// trip, again holds 1 − target at issue time. Because copies of one node
/// can have distinct offsets, this form may need more registers than the
/// retimed-then-unfolded CSR form — the register-count asymmetry the paper
/// points out in Section 3.4.

#include "dfg/graph.hpp"
#include "loopir/program.hpp"
#include "retiming/retiming.hpp"
#include "unfolding/unfold.hpp"

namespace csr {

/// Expanded unfolded-then-retimed program. `r_unfolded` is a retiming of
/// `unfolding.graph()`. Requires ⌊n/f⌋ > M'_r.
[[nodiscard]] LoopProgram unfolded_retimed_program(const Unfolding& unfolding,
                                                   const Retiming& r_unfolded,
                                                   std::int64_t n);

/// CSR unfolded-then-retimed program (everything outside the loop removed).
[[nodiscard]] LoopProgram unfolded_retimed_csr_program(const Unfolding& unfolding,
                                                       const Retiming& r_unfolded,
                                                       std::int64_t n);

}  // namespace csr
