#include "codegen/statements.hpp"

#include "support/check.hpp"

namespace csr {

Statement node_statement(const DataFlowGraph& g, NodeId v) {
  const Node& node = g.node(v);
  Statement s;
  s.array = node.name;
  s.offset = 0;
  s.op_seed = op_seed_for(node.name);
  const char first = node.name.front();
  const bool is_mul = first == 'M' || first == 'm';
  // GCC 12 raises a spurious -Wrestrict on short-literal assignment into a
  // struct member that is NRVO-returned (GCC bug 105651).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
  s.op_text = is_mul ? "*" : "+";
#pragma GCC diagnostic pop
  for (const EdgeId e : g.in_edges(v)) {
    const Edge& edge = g.edge(e);
    s.sources.push_back(ArrayRef{g.node(edge.from).name, -edge.delay});
  }
  return s;
}

std::vector<Statement> node_statements(const DataFlowGraph& g) {
  std::vector<Statement> out;
  out.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.push_back(node_statement(g, v));
  }
  return out;
}

Statement shifted(Statement s, std::int64_t delta) {
  s.offset += delta;
  for (ArrayRef& ref : s.sources) {
    ref.offset += delta;
  }
  return s;
}

std::vector<std::string> array_names(const DataFlowGraph& g) {
  std::vector<std::string> names;
  names.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    names.push_back(g.node(v).name);
  }
  return names;
}

}  // namespace csr
