#include "codegen/original.hpp"

#include "codegen/statements.hpp"
#include "dfg/algorithms.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

LoopProgram original_program(const DataFlowGraph& g, std::int64_t n) {
  CSR_REQUIRE(n >= 1, "trip count must be >= 1");
  const auto order = zero_delay_topological_order(g);
  if (!order) throw InvalidArgument("cannot generate code: zero-delay cycle present");

  const auto stmts = node_statements(g);
  LoopProgram program;
  program.name = g.name() + " (original)";
  program.n = n;

  LoopSegment loop;
  loop.begin = 1;
  loop.end = n;
  loop.step = 1;
  for (const NodeId v : *order) {
    loop.instructions.push_back(Instruction::statement(stmts[v]));
  }
  program.segments.push_back(std::move(loop));
  return program;
}

}  // namespace csr
