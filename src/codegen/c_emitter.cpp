#include "codegen/c_emitter.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/text.hpp"

namespace csr {

namespace {

struct IndexRange {
  std::int64_t min = 0;
  std::int64_t max = 0;
  void widen(std::int64_t value) {
    min = std::min(min, value);
    max = std::max(max, value);
  }
};

std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out.insert(out.begin(), 'a');
  }
  return out;
}

/// Suffixes an array identifier also claims: its backing buffer, and in
/// exact mode the write-count buffer and the read/count accessor macros.
constexpr const char* kArraySuffixes[] = {"_buf", "_cnt", "_COUNT", "_READ"};

/// Collision-free mapping from IR names to C identifiers. Sanitizing alone
/// can merge distinct names ("a.b" and "a_b" both become "a_b"), silently
/// aliasing two arrays onto one buffer in the emitted kernel; this table
/// uniques them with a numeric suffix. Arrays and conditional registers get
/// separate namespaces in the IR but share one C scope, so both draw from
/// the same pool of used identifiers.
class IdentifierTable {
 public:
  explicit IdentifierTable(std::set<std::string> reserved)
      : used_(std::move(reserved)) {}

  const std::string& array(const std::string& name) { return id('a', name); }
  const std::string& reg(const std::string& name) { return id('r', name); }

 private:
  const std::string& id(char kind, const std::string& name) {
    const std::string key = kind + name;
    const auto it = assigned_.find(key);
    if (it != assigned_.end()) return it->second;
    const std::string base = sanitize(name);
    const auto taken = [&](const std::string& c) {
      if (used_.count(c) != 0) return true;
      if (kind == 'a') {
        for (const char* suffix : kArraySuffixes) {
          if (used_.count(c + suffix) != 0) return true;
        }
      }
      return false;
    };
    std::string candidate = base;
    for (int suffix = 2; taken(candidate); ++suffix) {
      candidate = base + "_" + std::to_string(suffix);
    }
    used_.insert(candidate);
    if (kind == 'a') {
      for (const char* suffix : kArraySuffixes) used_.insert(candidate + suffix);
    }
    return assigned_.emplace(key, std::move(candidate)).first->second;
  }

  std::map<std::string, std::string> assigned_;
  std::set<std::string> used_;
};

std::string index_expr(std::int64_t offset) {
  std::ostringstream os;
  os << "i";
  if (offset > 0) os << " + " << offset;
  if (offset < 0) os << " - " << -offset;
  return os.str();
}

std::string hex_u64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << std::uppercase << v << "ULL";
  return os.str();
}

/// A C string literal for `s` (octal-escapes non-printables; IR names are
/// normally plain identifiers but nothing enforces that).
std::string c_string_literal(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20 || u > 0x7E) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\%03o", u);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

/// The VM's mix / boundary-value contract (vm/machine.cpp), restated as C.
/// CSR_BOUNDARY's seed argument is the per-array op_seed; the salt constant
/// must match kBoundarySalt.
constexpr const char* kExactPreamble =
    "static uint64_t csr_mix(uint64_t z) {\n"
    "  z ^= z >> 30;\n"
    "  z *= 0xBF58476D1CE4E5B9ULL;\n"
    "  z ^= z >> 27;\n"
    "  z *= 0x94D049BB133111EBULL;\n"
    "  return z ^ (z >> 31);\n"
    "}\n"
    "#define CSR_BOUNDARY(seed, idx) \\\n"
    "  csr_mix((seed) ^ csr_mix((uint64_t)(idx) ^ 0xA5A5A5A5A5A5A5A5ULL))\n";

/// Identifiers the generated exact-mode code uses for itself; IR names are
/// renamed away from these by the IdentifierTable.
std::set<std::string> reserved_identifiers(const CEmitterOptions& options) {
  std::set<std::string> reserved = {"i", "n", "idx", options.function_name};
  if (options.semantics == CEmitterOptions::Semantics::kExact) {
    reserved.insert({"csr_mix", "CSR_BOUNDARY", "csr_h", "csr_executed",
                     "csr_disabled", "csr_abi_version", "csr_array_count",
                     "csr_array_names", "csr_array_base", "csr_array_extent",
                     "csr_array_values", "csr_array_counts", "seed", "z"});
  }
  return reserved;
}

}  // namespace

std::string to_c_source(const LoopProgram& program, const CEmitterOptions& options) {
  {
    const auto problems = program.validate();
    if (!problems.empty()) {
      throw InvalidArgument("cannot emit invalid program: " + join(problems, "; "));
    }
  }
  const bool exact = options.semantics == CEmitterOptions::Semantics::kExact;
  const std::string value_type = exact ? "uint64_t" : options.value_type;

  // Index ranges per array over every segment's loop span.
  std::map<std::string, IndexRange> ranges;
  for (const LoopSegment& seg : program.segments) {
    if (seg.trip_count() == 0) continue;
    const std::int64_t last = seg.begin + (seg.trip_count() - 1) * seg.step;
    for (const Instruction& instr : seg.instructions) {
      if (instr.kind != InstrKind::kStatement) continue;
      ranges[instr.stmt.array].widen(seg.begin + instr.stmt.offset);
      ranges[instr.stmt.array].widen(last + instr.stmt.offset);
      for (const ArrayRef& src : instr.stmt.sources) {
        ranges[src.array].widen(seg.begin + src.offset);
        ranges[src.array].widen(last + src.offset);
      }
    }
  }

  IdentifierTable ids(reserved_identifiers(options));

  std::ostringstream os;
  os << "/* generated by csr from \"" << program.name << "\" (n = " << program.n
     << ", code size = " << program.code_size() << ") */\n";
  if (exact) {
    os << "/* exact VM semantics: uint64 statement hashes, boundary reads, and\n"
          "   an exported csr_* state-descriptor table (src/native/ contract) */\n";
  }
  os << "#include <stdint.h>\n\n";
  if (exact) os << kExactPreamble << '\n';
  for (const auto& [array, range] : ranges) {
    const std::string& id = ids.array(array);
    const std::int64_t extent = range.max - range.min + 1;
    os << "static " << value_type << ' ' << id << "_buf[" << extent << "];\n";
    os << "#define " << id << "(idx) " << id << "_buf[(idx) - (" << range.min
       << ")]\n";
    if (exact) {
      os << "static uint32_t " << id << "_cnt[" << extent << "];\n";
      os << "#define " << id << "_COUNT(idx) " << id << "_cnt[(idx) - ("
         << range.min << ")]\n";
      os << "#define " << id << "_READ(idx) \\\n  (" << id << "_COUNT(idx) ? " << id
         << "(idx) : CSR_BOUNDARY(" << hex_u64(op_seed_for(array)) << ", (idx)))\n";
    }
  }
  if (exact) {
    os << "\nint64_t csr_executed = 0;\n";
    os << "int64_t csr_disabled = 0;\n";
  }

  os << "\nvoid " << options.function_name << "(void) {\n";
  os << "  const int64_t n = " << program.n << ";\n";
  for (const std::string& reg : program.conditional_registers()) {
    os << "  int64_t " << ids.reg(reg) << " = 0;\n";
  }
  os << "  int64_t i;\n";
  os << "  (void)n;\n";

  auto emit_numeric_statement = [&](const Instruction& instr,
                                    const std::string& pad) {
    os << pad << ids.array(instr.stmt.array) << '(' << index_expr(instr.stmt.offset)
       << ") = ";
    for (std::size_t k = 0; k < instr.stmt.sources.size(); ++k) {
      if (k > 0) os << ' ' << instr.stmt.op_text << ' ';
      os << ids.array(instr.stmt.sources[k].array) << '('
         << index_expr(instr.stmt.sources[k].offset) << ')';
    }
    // Synthetic input term: keeps kernels testable with zero-initialized
    // buffers (values stay index-dependent instead of collapsing to zero)
    // and models the constant/live-in operand of the paper's statements.
    if (!instr.stmt.sources.empty()) os << " + ";
    os << '(' << value_type << ")(" << index_expr(instr.stmt.offset) << ");\n";
  };

  auto emit_exact_statement = [&](const Instruction& instr, const std::string& pad) {
    const std::string target = index_expr(instr.stmt.offset);
    os << pad << "{\n";
    os << pad << "  uint64_t csr_h = csr_mix(" << hex_u64(instr.stmt.op_seed)
       << " ^ csr_mix((uint64_t)(" << target << ")));\n";
    for (const ArrayRef& src : instr.stmt.sources) {
      os << pad << "  csr_h = csr_mix(csr_h ^ csr_mix(" << ids.array(src.array)
         << "_READ(" << index_expr(src.offset) << ")));\n";
    }
    const std::string& id = ids.array(instr.stmt.array);
    os << pad << "  " << id << '(' << target << ") = csr_h;\n";
    os << pad << "  " << id << "_COUNT(" << target << ") += 1u;\n";
    os << pad << "  csr_executed += 1;\n";
    os << pad << "}\n";
  };

  auto emit_statement = [&](const Instruction& instr, int indent) {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const bool guarded = !instr.guard.empty();
    if (guarded) {
      const std::string& reg = ids.reg(instr.guard);
      os << pad << "if (" << reg << " <= 0 && " << reg << " > -n) {\n";
    }
    const std::string inner_pad = guarded ? pad + "  " : pad;
    if (exact) {
      emit_exact_statement(instr, inner_pad);
    } else {
      emit_numeric_statement(instr, inner_pad);
    }
    if (guarded) {
      // The VM counts guard-disabled issues; keep the native counter in step.
      if (exact) {
        os << pad << "} else {\n" << pad << "  csr_disabled += 1;\n" << pad << "}\n";
      } else {
        os << pad << "}\n";
      }
    }
  };

  for (const LoopSegment& seg : program.segments) {
    if (seg.trip_count() == 0) continue;
    if (seg.straight_line()) {
      os << "  i = " << seg.begin << ";\n";
    } else {
      os << "  for (i = " << seg.begin << "; i <= " << seg.end << "; i += " << seg.step
         << ") {\n";
    }
    const int indent = seg.straight_line() ? 2 : 4;
    for (const Instruction& instr : seg.instructions) {
      const std::string pad(static_cast<std::size_t>(indent), ' ');
      switch (instr.kind) {
        case InstrKind::kStatement:
          emit_statement(instr, indent);
          break;
        case InstrKind::kSetup:
          os << pad << ids.reg(instr.reg) << " = " << instr.value << ";\n";
          break;
        case InstrKind::kDecrement:
          os << pad << ids.reg(instr.reg) << " -= " << instr.value << ";\n";
          break;
      }
    }
    if (!seg.straight_line()) os << "  }\n";
  }
  os << "}\n";

  if (exact) {
    // State-descriptor table: everything a dlopen-ing host needs to reset
    // the kernel's buffers and read back the final observable state. Kept
    // as parallel flat arrays (no struct) so the host/kernel ABI cannot
    // drift through layout or padding differences.
    os << "\nconst int32_t csr_abi_version = 1;\n";
    os << "const int32_t csr_array_count = " << ranges.size() << ";\n";
    const auto emit_table = [&](const char* type, const char* name, auto&& cell) {
      os << "const " << type << ' ' << name << "[] = {";
      if (ranges.empty()) {
        os << "0";  // C forbids empty initializer lists; count is 0 anyway
      } else {
        bool first = true;
        for (const auto& entry : ranges) {
          if (!first) os << ", ";
          first = false;
          cell(entry.first, entry.second);
        }
      }
      os << "};\n";
    };
    emit_table("char* const", "csr_array_names",
               [&](const std::string& array, const IndexRange&) {
                 os << c_string_literal(array);
               });
    emit_table("int64_t", "csr_array_base",
               [&](const std::string&, const IndexRange& r) { os << r.min; });
    emit_table("int64_t", "csr_array_extent",
               [&](const std::string&, const IndexRange& r) {
                 os << (r.max - r.min + 1);
               });
    os << "uint64_t* const csr_array_values[] = {";
    if (ranges.empty()) {
      os << "0";
    } else {
      bool first = true;
      for (const auto& [array, range] : ranges) {
        if (!first) os << ", ";
        first = false;
        os << ids.array(array) << "_buf";
      }
    }
    os << "};\n";
    os << "uint32_t* const csr_array_counts[] = {";
    if (ranges.empty()) {
      os << "0";
    } else {
      bool first = true;
      for (const auto& [array, range] : ranges) {
        if (!first) os << ", ";
        first = false;
        os << ids.array(array) << "_cnt";
      }
    }
    os << "};\n";
  }
  return os.str();
}

}  // namespace csr
