#pragma once

/// \file retimed_unfolded.hpp
/// Code generation for loops that are retimed FIRST and THEN unfolded — the
/// order the paper recommends (Theorems 4.5/4.7: smaller code, and the CSR
/// form needs no more registers than the retimed loop alone).
///
/// Expanded shape: retiming prologue, unfolded steady-state loop over the
/// retimed body (⌊(n−M_r)/f⌋ trips), then the remainder iterations merged
/// with the retiming epilogue as straight-line code.
///
/// CSR shape (Theorem 4.6/4.7): one loop of ⌈(n+M_r+Q_head)/f⌉ trips with
/// Q_head = (f − M_r mod f) mod f leading dummy slots; |N_r| conditional
/// registers, each set to (M_r − r) + Q_head and decremented after every
/// copy, so each register again holds 1 − (target iteration) at issue time
/// and the window 0 ≥ p > −n keeps exactly iterations 1..n alive.

#include "dfg/graph.hpp"
#include "loopir/program.hpp"
#include "retiming/retiming.hpp"

namespace csr {

/// Expanded retimed-then-unfolded program. Requires a legal retiming,
/// factor ≥ 1 and n > M_r.
[[nodiscard]] LoopProgram retimed_unfolded_program(const DataFlowGraph& g,
                                                   const Retiming& r, int factor,
                                                   std::int64_t n);

/// CSR retimed-then-unfolded program — prologue, epilogue and remainder all
/// removed with |N_r| registers.
[[nodiscard]] LoopProgram retimed_unfolded_csr_program(const DataFlowGraph& g,
                                                       const Retiming& r, int factor,
                                                       std::int64_t n);

}  // namespace csr
