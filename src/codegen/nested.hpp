#pragma once

/// \file nested.hpp
/// Row-major lowering from (retimed) 2-D loop nests to the existing 1-D
/// LoopIR, so the VM (incl. kSuper), native and batch engines execute the
/// nested family unchanged.
///
/// **Linearization theorem.** Under the repo's abstract statement semantics
/// (every node writes its own array indexed by iteration, reading uniform
/// offsets), row-major execution of a rows×cols nest — iteration (r,c) ↦
/// flat index i = r·cols + c — makes a dependence with distance vector
/// (d_row, d_col) exactly a 1-D dependence at flat distance
/// d_row·cols + d_col. The nest is therefore *equal*, statement for
/// statement, to the 1-D loop over n = rows·cols iterations of the
/// linearized graph (mdfg/graph.hpp), and the lowering delegates to the
/// proven 1-D generators:
///
///   nested_original(g)      = original_program(linearized(g, cols), rows·cols)
///   nested_retimed(g, r)    = retimed_program(..., r.col_retiming(), ...)
///   nested_retimed_csr(...) = retimed_csr_program(...)
///
/// A pure-*column* vector retiming r(v) = (0, r_col(v)) is exactly a 1-D
/// retiming of the linearized graph, and the lowered pipeline runs
/// *continuously* across row boundaries (one global prologue/epilogue, not
/// one per row) — which is why the closed forms in codesize/md_model.hpp
/// are independent of rows and cols. Row components would require skewing
/// the nest, which the row-major lowering deliberately does not support;
/// the MD engine only emits column retimings.
///
/// Legality needs cols ≥ MdOptimalRetiming::min_cols so every (retimed)
/// linearized delay is non-negative and row-carried edges stay non-zero;
/// the generators throw InvalidArgument below that.

#include <cstdint>

#include "loopir/program.hpp"
#include "mdfg/graph.hpp"
#include "retiming/md_retiming.hpp"

namespace csr {

/// The untransformed nest: one statement per node, rows·cols iterations.
/// Requires a legal MDFG and rows, cols ≥ 1.
[[nodiscard]] LoopProgram nested_original_program(const MdDataFlowGraph& g,
                                                  std::int64_t rows, std::int64_t cols);

/// The software-pipelined nest in expanded (prologue/epilogue) form.
/// Requires a legal pure-column retiming and rows·cols > M_r.
[[nodiscard]] LoopProgram nested_retimed_program(const MdDataFlowGraph& g,
                                                 const MdRetiming& r, std::int64_t rows,
                                                 std::int64_t cols);

/// The software-pipelined nest in CSR form (prologue/epilogue removed with
/// |N_r| conditional registers). Same requirements.
[[nodiscard]] LoopProgram nested_retimed_csr_program(const MdDataFlowGraph& g,
                                                     const MdRetiming& r,
                                                     std::int64_t rows,
                                                     std::int64_t cols);

}  // namespace csr
