#include "codegen/nested.hpp"

#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {

void require_shape(std::int64_t rows, std::int64_t cols) {
  CSR_REQUIRE(rows >= 1, "nested lowering needs rows >= 1");
  CSR_REQUIRE(cols >= 1, "nested lowering needs cols >= 1");
}

Retiming column_retiming(const MdDataFlowGraph& g, const MdRetiming& r,
                         const DataFlowGraph& lin, std::int64_t cols) {
  if (!r.pure_column()) {
    throw InvalidArgument(
        "row-major lowering supports pure-column retimings only (graph '" +
        g.name() + "')");
  }
  const Retiming col = r.col_retiming();
  if (!is_legal_retiming(lin, col)) {
    throw InvalidArgument("cols=" + std::to_string(cols) +
                          " is below this retiming's min_cols for graph '" +
                          g.name() + "'");
  }
  return col;
}

}  // namespace

LoopProgram nested_original_program(const MdDataFlowGraph& g, std::int64_t rows,
                                    std::int64_t cols) {
  require_shape(rows, cols);
  return original_program(linearized(g, cols), rows * cols);
}

LoopProgram nested_retimed_program(const MdDataFlowGraph& g, const MdRetiming& r,
                                   std::int64_t rows, std::int64_t cols) {
  require_shape(rows, cols);
  const DataFlowGraph lin = linearized(g, cols);
  return retimed_program(lin, column_retiming(g, r, lin, cols), rows * cols);
}

LoopProgram nested_retimed_csr_program(const MdDataFlowGraph& g, const MdRetiming& r,
                                       std::int64_t rows, std::int64_t cols) {
  require_shape(rows, cols);
  const DataFlowGraph lin = linearized(g, cols);
  return retimed_csr_program(lin, column_retiming(g, r, lin, cols), rows * cols);
}

}  // namespace csr
