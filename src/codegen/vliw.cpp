#include "codegen/vliw.hpp"

#include <algorithm>
#include <map>

#include "codegen/registers.hpp"
#include "codegen/statements.hpp"
#include "dfg/algorithms.hpp"
#include "schedule/list_scheduler.hpp"
#include "support/check.hpp"

namespace csr {

VliwKernel pack_vliw_kernel(const DataFlowGraph& g, const Retiming& r, std::int64_t n,
                            const ResourceModel& model, const VliwOptions& options) {
  CSR_REQUIRE(g.unit_time(), "VLIW packing requires unit-time nodes");
  CSR_REQUIRE(options.scalar_slots >= 1, "need at least one scalar slot per word");
  const Retiming norm = r.normalized();
  const int depth = norm.max_value();
  CSR_REQUIRE(is_legal_retiming(g, norm), "retiming is not legal for this graph");
  CSR_REQUIRE(n > depth, "trip count must exceed the pipeline depth M_r");

  // Schedule the retimed body under the machine's functional units; each
  // control step becomes one instruction word.
  const DataFlowGraph retimed = apply_retiming(g, norm);
  const StaticSchedule schedule = list_schedule(retimed, model);
  const int body_words = schedule.length(retimed);

  const RegisterPlan plan(norm.distinct_values());
  const auto base = node_statements(g);

  VliwKernel kernel;
  kernel.words.resize(static_cast<std::size_t>(body_words));

  // Guarded statements go into the word of their control step.
  std::map<std::string, int> last_guard_word;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::string& reg = plan.reg_for(norm[v]);
    const int word = schedule.start(v);
    kernel.words[static_cast<std::size_t>(word)].statements.push_back(
        Instruction::statement(shifted(base[v], norm[v]), reg));
    auto [it, inserted] = last_guard_word.try_emplace(reg, word);
    if (!inserted) it->second = std::max(it->second, word);
  }

  // Decrements: a register may be decremented in the same word as its last
  // guarded statement (guard tests see pre-update values within a word) but
  // never earlier. Fill free scalar slots greedily; extend the kernel when
  // every eligible word is full.
  for (const std::string& reg : plan.names()) {
    const int earliest = last_guard_word.count(reg) ? last_guard_word[reg] : 0;
    int word = earliest;
    while (word < static_cast<int>(kernel.words.size()) &&
           static_cast<int>(kernel.words[static_cast<std::size_t>(word)].register_ops
                                .size()) >= options.scalar_slots) {
      ++word;
    }
    if (word == static_cast<int>(kernel.words.size())) {
      kernel.words.emplace_back();
    }
    kernel.words[static_cast<std::size_t>(word)].register_ops.push_back(
        Instruction::decrement(reg));
  }
  kernel.words_per_trip = static_cast<int>(kernel.words.size());

  // Utilization: filled slots over total issue capacity.
  std::int64_t capacity_per_word = options.scalar_slots;
  {
    std::map<std::string, int> classes;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      classes[model.node_class(g, v)] = model.units(model.node_class(g, v));
    }
    for (const auto& [cls, units] : classes) capacity_per_word += units;
  }
  std::int64_t filled = 0;
  for (const VliwWord& word : kernel.words) {
    filled += static_cast<std::int64_t>(word.statements.size() + word.register_ops.size());
  }
  kernel.utilization = static_cast<double>(filled) /
                       static_cast<double>(capacity_per_word * kernel.words_per_trip);

  // Executable form: flatten words in order — statements first, register
  // updates after, preserving the parallel-issue semantics sequentially.
  kernel.program.name = g.name() + " (VLIW CSR kernel)";
  kernel.program.n = n;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  for (const int value : plan.classes_desc()) {
    setup.instructions.push_back(Instruction::setup(plan.reg_for(value), depth - value));
  }
  kernel.program.segments.push_back(std::move(setup));

  LoopSegment loop;
  loop.begin = 1 - depth;
  loop.end = n;
  loop.step = 1;
  for (const VliwWord& word : kernel.words) {
    for (const Instruction& instr : word.statements) loop.instructions.push_back(instr);
    for (const Instruction& instr : word.register_ops) loop.instructions.push_back(instr);
  }
  kernel.program.segments.push_back(std::move(loop));
  return kernel;
}

namespace {

/// Words needed to issue a subset of the retimed body's statements under
/// the model: greedy ASAP over the zero-delay edges *within the subset*,
/// with per-class word capacity. Unit-time nodes, one word per step.
std::int64_t stage_words(const DataFlowGraph& retimed, const ResourceModel& model,
                         const std::vector<bool>& in_stage) {
  const auto order = zero_delay_topological_order(retimed);
  CSR_ENSURE(order.has_value(), "retimed graph has a zero-delay cycle");
  std::map<std::pair<std::string, int>, int> used;
  std::vector<int> word(retimed.node_count(), 0);
  std::int64_t total = 0;
  for (const NodeId v : *order) {
    if (!in_stage[v]) continue;
    int earliest = 0;
    for (const EdgeId e : retimed.in_edges(v)) {
      const Edge& edge = retimed.edge(e);
      if (edge.delay != 0 || !in_stage[edge.from]) continue;
      earliest = std::max(earliest, word[edge.from] + 1);
    }
    const std::string cls = model.node_class(retimed, v);
    const int cap = model.units(cls);
    while (used[{cls, earliest}] >= cap) ++earliest;
    ++used[{cls, earliest}];
    word[v] = earliest;
    total = std::max<std::int64_t>(total, earliest + 1);
  }
  return total;
}

}  // namespace

VliwCycleAccounting vliw_cycle_accounting(const DataFlowGraph& g, const Retiming& r,
                                          std::int64_t n, const ResourceModel& model,
                                          const VliwOptions& options) {
  const Retiming norm = r.normalized();
  const int depth = norm.max_value();
  const VliwKernel kernel = pack_vliw_kernel(g, norm, n, model, options);
  const DataFlowGraph retimed = apply_retiming(g, norm);

  VliwCycleAccounting acct;
  acct.kernel_words = kernel.words_per_trip;
  // Prologue stage k (virtual index i = 1−M..0) issues nodes with
  // i + r(v) ≥ 1; epilogue stage at i = n−M+1+k keeps targets ≤ n.
  for (int k = 0; k < depth; ++k) {
    std::vector<bool> pro(g.node_count(), false);
    std::vector<bool> epi(g.node_count(), false);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if ((1 - depth + k) + norm[v] >= 1) pro[v] = true;
      if (norm[v] <= depth - 1 - k) epi[v] = true;
    }
    acct.prologue_words += stage_words(retimed, model, pro);
    acct.epilogue_words += stage_words(retimed, model, epi);
  }
  acct.expanded_cycles =
      acct.prologue_words + (n - depth) * acct.kernel_words + acct.epilogue_words;
  acct.csr_cycles = (n + depth) * acct.kernel_words;
  acct.overhead = static_cast<double>(acct.csr_cycles) /
                      static_cast<double>(acct.expanded_cycles) -
                  1.0;
  return acct;
}

}  // namespace csr
