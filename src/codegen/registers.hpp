#pragma once

/// \file registers.hpp
/// Conditional-register allocation for CSR code. One register serves every
/// node class that needs the same guard window; for a retimed loop the
/// classes are the distinct retiming values (Theorem 4.3), for an
/// unfolded-retimed loop the distinct per-copy iteration offsets. Registers
/// are named p1, p2, ... with p1 guarding the deepest-pipelined class
/// (largest retiming value), matching Figure 3(b).

#include <string>
#include <vector>

namespace csr {

class RegisterPlan {
 public:
  /// Builds a plan for the given guard classes (any distinct integers; one
  /// register each). Registers are named in descending class order.
  explicit RegisterPlan(std::vector<int> classes);

  [[nodiscard]] std::size_t count() const { return classes_desc_.size(); }

  /// Register name for `cls`; throws LogicError for unknown classes.
  [[nodiscard]] const std::string& reg_for(int cls) const;

  /// Classes in descending order (the order registers are numbered in).
  [[nodiscard]] const std::vector<int>& classes_desc() const { return classes_desc_; }

  /// Register names in p1, p2, ... order.
  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<int> classes_desc_;
  std::vector<std::string> names_;
};

}  // namespace csr
