#pragma once

/// \file unfolded.hpp
/// Code generation for unfolded (unrolled) loops:
///
///   * the *expanded* form of Figure 5(a): f statement copies per trip for
///     ⌊n/f⌋ trips plus n mod f straight-line remainder iterations;
///   * the *CSR* form (Figure 5(b), corrected): only the unfolded body, one
///     conditional register guarding every copy, decremented after each
///     copy, running for ⌈n/f⌉ trips. The paper's figure decrements once
///     per trip by f, which mis-orders the guard window when n mod f ≥ 2;
///     the per-copy decrement used here (and implied by the paper's own
///     Table 2 arithmetic) is correct for every n.

#include "dfg/graph.hpp"
#include "loopir/program.hpp"

namespace csr {

/// Expanded unfolded program. Requires a legal graph, factor ≥ 1, n ≥ 1.
[[nodiscard]] LoopProgram unfolded_program(const DataFlowGraph& g, int factor,
                                           std::int64_t n);

/// CSR unfolded program — remainder iterations removed with one register.
[[nodiscard]] LoopProgram unfolded_csr_program(const DataFlowGraph& g, int factor,
                                               std::int64_t n);

}  // namespace csr
