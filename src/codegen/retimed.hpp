#pragma once

/// \file retimed.hpp
/// Code generation for software-pipelined (retimed) loops, in both shapes:
///
///   * the *expanded* form of Figure 3(a): prologue + new loop body +
///     epilogue, with code size L + Σr(v) + Σ(M_r − r(v));
///   * the *CSR* form of Figure 3(b): only the loop body, every statement
///     guarded by the conditional register of its retiming value, one setup
///     and one decrement per register, running for n + M_r trips.
///
/// The retiming is normalized internally. Both programs compute exactly
/// v[1..n] for every node v (Theorems 4.1/4.2).

#include "dfg/graph.hpp"
#include "loopir/program.hpp"
#include "retiming/retiming.hpp"

namespace csr {

/// Expanded software-pipelined program. Requires a legal retiming and
/// n > M_r (the pipeline must fill and drain within the trip count).
[[nodiscard]] LoopProgram retimed_program(const DataFlowGraph& g, const Retiming& r,
                                          std::int64_t n);

/// CSR software-pipelined program (prologue/epilogue removed with |N_r|
/// conditional registers). Same requirements.
[[nodiscard]] LoopProgram retimed_csr_program(const DataFlowGraph& g, const Retiming& r,
                                              std::int64_t n);

}  // namespace csr
