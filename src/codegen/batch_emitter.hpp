#pragma once

/// \file batch_emitter.hpp
/// Emission of *batch kernels*: one C translation unit that executes many
/// (n, initial-state) instances of the same loop shape per call, over
/// struct-of-arrays state. Array cells are laid out lane-innermost —
/// `buf[(idx - base) * W + lane]` — so every statement's per-lane accesses
/// are contiguous and the innermost lane loop auto-vectorizes.
///
/// Lanes must share the program's *shape*: identical segments, steps,
/// instruction sequences, guards, statement arrays/offsets/op_seeds and
/// decrement amounts. The quantities the sweep varies with trip count are
/// parametric per lane and become constant tables in the emitted unit:
///
///   * the guard bound n (`csr_lane_n[]`),
///   * segment begin and trip count (`csr_seg<k>_begin[]`, `csr_seg<k>_trips[]`),
///   * setup initial values (`csr_setup<k>_val[]`).
///
/// Ragged batches (lanes with different trip counts) run each segment as a
/// lockstep loop over the minimum trip count — every lane live, no masking,
/// fully vectorizable — followed by a *remainder loop* up to the maximum
/// trip count in which a lane participates only while `t < its trips`.
/// Array index ranges are the union over lanes; cells a short lane never
/// writes keep count 0 and read back as VM boundary values, so per-lane
/// semantics are exactly those of a single-cell run.
///
/// Emitted units use the exact VM hash semantics of
/// CEmitterOptions::Semantics::kExact and export a batched `csr_*`
/// descriptor table (ABI version 2, `csr_batch_width`, per-lane
/// `csr_executed[]`/`csr_disabled[]`) consumed by src/native/batch.hpp.

#include <string>
#include <vector>

#include "loopir/program.hpp"

namespace csr {

struct BatchEmitterOptions {
  /// Name of the emitted function.
  std::string function_name = "csr_kernel";
};

/// Structural fingerprint of a program modulo the lane-parametric values
/// (n, segment bounds, setup initial values). Two programs can share one
/// batch kernel iff their shape keys are equal.
[[nodiscard]] std::string batch_shape_key(const LoopProgram& program);

/// True when `a` and `b` can execute as lanes of one batch kernel.
[[nodiscard]] bool batch_compatible(const LoopProgram& a, const LoopProgram& b);

/// Emits a self-contained C translation unit whose kernel executes every
/// program in `lanes` (width = lanes.size()). Throws InvalidArgument when
/// `lanes` is empty, a lane fails validation, or the lanes' shape keys
/// differ.
[[nodiscard]] std::string to_batch_c_source(const std::vector<LoopProgram>& lanes,
                                            const BatchEmitterOptions& options = {});

}  // namespace csr
