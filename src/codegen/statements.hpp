#pragma once

/// \file statements.hpp
/// Mapping DFG nodes to loop-IR statements. Node v with in-edges
/// e_k = (u_k → v, d_k) becomes the statement
///
///     v[i] = u_0[i − d_0] op u_1[i − d_1] op ...
///
/// in *original iteration space*. Every loop transformation in this library
/// is then a pure re-indexing: copy `c` of the statement (from retiming
/// and/or unfolding) is the same statement with all offsets shifted by +c,
/// so the value written to v[I] is computed from exactly the same cells no
/// matter how the loop was restructured — which is what the equivalence
/// tests verify.

#include <vector>

#include "dfg/graph.hpp"
#include "loopir/program.hpp"

namespace csr {

/// The statement of node `v` in original iteration space (target offset 0).
/// Operands follow in-edge id order for determinism. The printing operator
/// is "*" for nodes whose name starts with 'M'/'m' (the DSP benchmark
/// convention for multipliers) and "+" otherwise.
[[nodiscard]] Statement node_statement(const DataFlowGraph& g, NodeId v);

/// All node statements, indexed by NodeId.
[[nodiscard]] std::vector<Statement> node_statements(const DataFlowGraph& g);

/// Shifts the target and every source offset by `delta` — the statement for
/// iteration i+delta expressed at loop index i.
[[nodiscard]] Statement shifted(Statement s, std::int64_t delta);

/// Array names of all nodes (the observable state of programs over `g`).
[[nodiscard]] std::vector<std::string> array_names(const DataFlowGraph& g);

}  // namespace csr
