#include "codegen/registers.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace csr {

RegisterPlan::RegisterPlan(std::vector<int> classes) {
  std::sort(classes.begin(), classes.end(), std::greater<>());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  classes_desc_ = std::move(classes);
  names_.reserve(classes_desc_.size());
  for (std::size_t k = 0; k < classes_desc_.size(); ++k) {
    names_.push_back("p" + std::to_string(k + 1));
  }
}

const std::string& RegisterPlan::reg_for(int cls) const {
  const auto it = std::find(classes_desc_.begin(), classes_desc_.end(), cls);
  CSR_EXPECT(it != classes_desc_.end(), "register requested for unknown guard class");
  return names_[static_cast<std::size_t>(it - classes_desc_.begin())];
}

}  // namespace csr
