#pragma once

/// \file emit_common.hpp
/// Helpers shared by the single-program C emitter (c_emitter.cpp) and the
/// batched SoA emitter (batch_emitter.cpp): identifier sanitation and
/// collision-free renaming, index/hex/string-literal formatting, and the
/// exact-semantics preamble restating the VM's mix / boundary-value
/// contract. Internal to src/codegen/ — not part of the public API.

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace csr::emit {

struct IndexRange {
  std::int64_t min = 0;
  std::int64_t max = 0;
  void widen(std::int64_t value) {
    if (value < min) min = value;
    if (value > max) max = value;
  }
};

inline std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out.insert(out.begin(), 'a');
  }
  return out;
}

/// Suffixes an array identifier also claims: its backing buffer, and in
/// exact mode the write-count buffer and the read/count accessor macros.
constexpr const char* kArraySuffixes[] = {"_buf", "_cnt", "_COUNT", "_READ"};

/// Collision-free mapping from IR names to C identifiers. Sanitizing alone
/// can merge distinct names ("a.b" and "a_b" both become "a_b"), silently
/// aliasing two arrays onto one buffer in the emitted kernel; this table
/// uniques them with a numeric suffix. Arrays and conditional registers get
/// separate namespaces in the IR but share one C scope, so both draw from
/// the same pool of used identifiers.
class IdentifierTable {
 public:
  explicit IdentifierTable(std::set<std::string> reserved)
      : used_(std::move(reserved)) {}

  const std::string& array(const std::string& name) { return id('a', name); }
  const std::string& reg(const std::string& name) { return id('r', name); }

 private:
  const std::string& id(char kind, const std::string& name) {
    const std::string key = kind + name;
    const auto it = assigned_.find(key);
    if (it != assigned_.end()) return it->second;
    const std::string base = sanitize(name);
    const auto taken = [&](const std::string& c) {
      if (used_.count(c) != 0) return true;
      if (kind == 'a') {
        for (const char* suffix : kArraySuffixes) {
          if (used_.count(c + suffix) != 0) return true;
        }
      }
      return false;
    };
    std::string candidate = base;
    for (int suffix = 2; taken(candidate); ++suffix) {
      candidate = base + "_" + std::to_string(suffix);
    }
    used_.insert(candidate);
    if (kind == 'a') {
      for (const char* suffix : kArraySuffixes) used_.insert(candidate + suffix);
    }
    return assigned_.emplace(key, std::move(candidate)).first->second;
  }

  std::map<std::string, std::string> assigned_;
  std::set<std::string> used_;
};

/// `i`, `i + k` or `i - k` for a loop-relative offset.
inline std::string index_expr(std::int64_t offset) {
  std::ostringstream os;
  os << "i";
  if (offset > 0) os << " + " << offset;
  if (offset < 0) os << " - " << -offset;
  return os.str();
}

inline std::string hex_u64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << std::uppercase << v << "ULL";
  return os.str();
}

/// A C string literal for `s` (octal-escapes non-printables; IR names are
/// normally plain identifiers but nothing enforces that).
inline std::string c_string_literal(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20 || u > 0x7E) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\%03o", u);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

/// The VM's mix / boundary-value contract (vm/machine.cpp), restated as C.
/// CSR_BOUNDARY's seed argument is the per-array op_seed; the salt constant
/// must match kBoundarySalt.
constexpr const char* kExactPreamble =
    "static uint64_t csr_mix(uint64_t z) {\n"
    "  z ^= z >> 30;\n"
    "  z *= 0xBF58476D1CE4E5B9ULL;\n"
    "  z ^= z >> 27;\n"
    "  z *= 0x94D049BB133111EBULL;\n"
    "  return z ^ (z >> 31);\n"
    "}\n"
    "#define CSR_BOUNDARY(seed, idx) \\\n"
    "  csr_mix((seed) ^ csr_mix((uint64_t)(idx) ^ 0xA5A5A5A5A5A5A5A5ULL))\n";

}  // namespace csr::emit
