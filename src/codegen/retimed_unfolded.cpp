#include "codegen/retimed_unfolded.hpp"

#include "codegen/registers.hpp"
#include "codegen/statements.hpp"
#include "dfg/algorithms.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace csr {

namespace {

struct Body {
  std::vector<NodeId> order;     // zero-delay topo order of the retimed graph
  std::vector<Statement> stmts;  // retimed statements, parallel to `order`
};

Body retimed_body(const DataFlowGraph& g, const Retiming& r) {
  const DataFlowGraph retimed = apply_retiming(g, r);
  const auto order = zero_delay_topological_order(retimed);
  CSR_ENSURE(order.has_value(), "retimed graph has a zero-delay cycle");
  const auto base = node_statements(g);
  Body body;
  body.order = *order;
  for (const NodeId v : *order) {
    body.stmts.push_back(shifted(base[v], r[v]));
  }
  return body;
}

}  // namespace

LoopProgram retimed_unfolded_program(const DataFlowGraph& g, const Retiming& r,
                                     int factor, std::int64_t n) {
  CSR_REQUIRE(factor >= 1, "unfolding factor must be >= 1");
  const Retiming norm = r.normalized();
  const int depth = norm.max_value();
  CSR_REQUIRE(is_legal_retiming(g, norm), "retiming is not legal for this graph");
  CSR_REQUIRE(n > depth, "trip count must exceed the pipeline depth M_r");
  const Body body = retimed_body(g, norm);

  LoopProgram program;
  program.name = g.name() + " (retimed+unfolded x" + std::to_string(factor) + ")";
  program.n = n;

  // Retiming prologue, identical to the plain retimed program.
  for (std::int64_t i = 1 - depth; i <= 0; ++i) {
    LoopSegment seg;
    seg.begin = seg.end = i;
    for (std::size_t k = 0; k < body.order.size(); ++k) {
      if (i + norm[body.order[k]] >= 1) {
        seg.instructions.push_back(Instruction::statement(body.stmts[k]));
      }
    }
    if (!seg.instructions.empty()) program.segments.push_back(std::move(seg));
  }

  // The retimed loop has n − M_r trips; unfold ⌊(n−M_r)/f⌋ of them. Copy j
  // runs the retimed body for index i + j; same-trip cross-copy
  // dependencies always flow from a lower copy index (j − d_r(e) ≤ j), so
  // ascending-j emission is dependency-safe.
  const std::int64_t new_trips = n - depth;
  const std::int64_t full = new_trips / factor;
  if (full >= 1) {
    LoopSegment loop;
    loop.begin = 1;
    loop.end = 1 + (full - 1) * factor;
    loop.step = factor;
    for (int j = 0; j < factor; ++j) {
      for (const Statement& s : body.stmts) {
        loop.instructions.push_back(Instruction::statement(shifted(s, j)));
      }
    }
    program.segments.push_back(std::move(loop));
  }

  // Remainder of the unfolding merged with the retiming epilogue: run the
  // retimed body straight-line for i = f·⌊(n−M)/f⌋+1 .. n, keeping targets
  // ≤ n.
  for (std::int64_t i = full * factor + 1; i <= n; ++i) {
    LoopSegment seg;
    seg.begin = seg.end = i;
    for (std::size_t k = 0; k < body.order.size(); ++k) {
      if (i + norm[body.order[k]] <= n) {
        seg.instructions.push_back(Instruction::statement(body.stmts[k]));
      }
    }
    if (!seg.instructions.empty()) program.segments.push_back(std::move(seg));
  }
  return program;
}

LoopProgram retimed_unfolded_csr_program(const DataFlowGraph& g, const Retiming& r,
                                         int factor, std::int64_t n) {
  CSR_REQUIRE(factor >= 1, "unfolding factor must be >= 1");
  const Retiming norm = r.normalized();
  const int depth = norm.max_value();
  CSR_REQUIRE(is_legal_retiming(g, norm), "retiming is not legal for this graph");
  CSR_REQUIRE(n > depth, "trip count must exceed the pipeline depth M_r");
  const Body body = retimed_body(g, norm);
  const RegisterPlan plan(norm.distinct_values());

  LoopProgram program;
  program.name =
      g.name() + " (retimed+unfolded x" + std::to_string(factor) + ", CSR)";
  program.n = n;

  // Q_head dummy slots align the pipeline fill to a whole number of
  // unfolded trips (Theorem 4.6).
  const int q_head = (factor - depth % factor) % factor;
  const std::int64_t i0 = 1 - depth - q_head;

  LoopSegment setup;
  setup.begin = setup.end = 0;
  for (const int value : plan.classes_desc()) {
    setup.instructions.push_back(
        Instruction::setup(plan.reg_for(value), depth - value + q_head));
  }
  program.segments.push_back(std::move(setup));

  // Trips must cover targets up to n for r(v) = 0 nodes:
  // ⌈(n + M_r + Q_head)/f⌉ trips in total.
  const std::int64_t trips = (n + depth + q_head + factor - 1) / factor;
  LoopSegment loop;
  loop.begin = i0;
  loop.end = i0 + (trips - 1) * factor;
  loop.step = factor;
  for (int j = 0; j < factor; ++j) {
    for (std::size_t k = 0; k < body.order.size(); ++k) {
      const int value = norm[body.order[k]];
      loop.instructions.push_back(
          Instruction::statement(shifted(body.stmts[k], j), plan.reg_for(value)));
    }
    // Decrement every register once per copy: register of class r then holds
    // 1 − (i + j + r) = 1 − target at each guarded statement.
    for (const std::string& reg : plan.names()) {
      loop.instructions.push_back(Instruction::decrement(reg));
    }
  }
  program.segments.push_back(std::move(loop));
  return program;
}

}  // namespace csr
