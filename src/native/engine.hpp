#pragma once

/// \file engine.hpp
/// The native execution engine — the third engine of the differential
/// harness, beside the VM's ExecMode::kFast and ExecMode::kReference
/// interpreters. A loop program is emitted as exact-semantics C
/// (CEmitterOptions::Semantics::kExact), compiled by the host toolchain into
/// a shared object (content-hash cached, compile.hpp), dlopened, executed,
/// and its final array state read back through the `csr_*` descriptor table
/// the emitter exports. The result answers the same queries as Machine and
/// implements StateView, so all three engines cross-diff array-by-array with
/// the vm/equivalence helpers.
///
/// Thread safety: compiled modules stay loaded for the life of the process
/// and are shared; because a kernel's buffers are static, concurrent runs of
/// the *same* kernel serialize on a per-module mutex (distinct programs run
/// fully in parallel — each has its own translation unit). Toolchain
/// unavailability is a reported outcome, never an abort, so a sweep over
/// `engine=native` degrades to skipped cells on hosts without a compiler.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "loopir/program.hpp"
#include "native/compile.hpp"
#include "vm/equivalence.hpp"

namespace csr::native {

/// Final array state read back from one native kernel run; mirrors the
/// Machine query API and plugs into diff_observable_state /
/// check_write_discipline via StateView.
class NativeResult final : public StateView {
 public:
  /// Value of `array[index]`; the VM's boundary value when never written.
  [[nodiscard]] std::uint64_t read(const std::string& array,
                                   std::int64_t index) const override;
  [[nodiscard]] int write_count(const std::string& array,
                                std::int64_t index) const override;
  [[nodiscard]] std::int64_t total_writes(const std::string& array) const override;
  /// Statement-execution counters, same contract as Machine's.
  [[nodiscard]] std::int64_t executed_statements() const { return executed_; }
  [[nodiscard]] std::int64_t disabled_statements() const { return disabled_; }

 private:
  friend struct NativeResultBuilder;  // engine.cpp's snapshot writer
  friend struct BatchResultBuilder;   // batch.cpp's per-lane snapshot writer

  struct ArrayState {
    std::int64_t base = 0;
    std::int64_t writes = 0;
    std::vector<std::uint64_t> values;
    std::vector<std::uint32_t> counts;
  };
  std::map<std::string, ArrayState> arrays_;
  std::int64_t executed_ = 0;
  std::int64_t disabled_ = 0;
};

enum class NativeStatus {
  kOk,
  kCompileFailed,  ///< missing/broken host compiler — callers should skip
  kLoadFailed,     ///< dlopen/dlsym failure or kernel ABI mismatch
};

struct NativeOutcome {
  NativeStatus status = NativeStatus::kCompileFailed;
  bool cache_hit = false;      ///< the shared object came from the cache
  bool timed_out = false;      ///< the compile subprocess hit its deadline
  std::string diagnostic;      ///< why status != kOk
  double compile_seconds = 0;  ///< emit + compile (or cache lookup) time
  double run_seconds = 0;      ///< buffer reset + kernel execution time
  NativeResult result;         ///< valid only when status == kOk

  [[nodiscard]] bool ok() const { return status == NativeStatus::kOk; }
};

/// Emits, compiles (cached) and runs `program` natively. Never throws for
/// toolchain problems — inspect `status`/`diagnostic`; throws InvalidArgument
/// only when the program fails validation (same contract as Machine::run).
[[nodiscard]] NativeOutcome run_native(const LoopProgram& program,
                                       const CompileOptions& options = {});

}  // namespace csr::native
