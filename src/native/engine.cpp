#include "native/engine.hpp"

#include <dlfcn.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>

#include "codegen/c_emitter.hpp"
#include "observe/observe.hpp"
#include "vm/machine.hpp"

namespace csr::native {

/// Fills a NativeResult from a kernel module's descriptor table (friend of
/// NativeResult, so the snapshot stays out of the public API).
struct NativeResultBuilder;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The function symbol every exact-mode kernel exports.
constexpr const char* kKernelSymbol = "csr_kernel";
constexpr std::int32_t kAbiVersion = 1;

/// One loaded shared object: the kernel entry point plus the emitter's
/// `csr_*` descriptor table. Buffers are static inside the object, so runs
/// hold `run_mutex`.
struct KernelModule {
  std::mutex run_mutex;
  void (*kernel)() = nullptr;
  std::int32_t array_count = 0;
  const char* const* names = nullptr;
  const std::int64_t* base = nullptr;
  const std::int64_t* extent = nullptr;
  std::uint64_t* const* values = nullptr;
  std::uint32_t* const* counts = nullptr;
  std::int64_t* executed = nullptr;
  std::int64_t* disabled = nullptr;
};

/// Modules are content-addressed (one per .so path) and stay loaded for the
/// life of the process; reloading would only repeat dlopen work.
std::map<std::string, std::unique_ptr<KernelModule>>& module_registry() {
  static auto* registry = new std::map<std::string, std::unique_ptr<KernelModule>>();
  return *registry;
}

KernelModule* load_module(const std::string& so_path, std::string& diagnostic) {
  static std::mutex registry_mutex;
  const std::lock_guard<std::mutex> lock(registry_mutex);
  auto& registry = module_registry();
  const auto it = registry.find(so_path);
  if (it != registry.end()) return it->second.get();

  CSR_SPAN("native", "dlopen");
  observe::MetricsRegistry::global()
      .counter("csr_native_dlopen_total", "Kernel shared objects loaded")
      .increment();
  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = ::dlerror();
    diagnostic = "dlopen failed: " + std::string(err != nullptr ? err : "?");
    return nullptr;
  }
  auto module = std::make_unique<KernelModule>();
  bool ok = true;
  const auto resolve = [&](const char* name) -> void* {
    void* sym = ::dlsym(handle, name);
    if (sym == nullptr) {
      if (!diagnostic.empty()) diagnostic += "; ";
      diagnostic += "missing kernel symbol '" + std::string(name) + "'";
      ok = false;
    }
    return sym;
  };
  const auto* abi = static_cast<const std::int32_t*>(resolve("csr_abi_version"));
  module->kernel = reinterpret_cast<void (*)()>(resolve(kKernelSymbol));
  const auto* count = static_cast<const std::int32_t*>(resolve("csr_array_count"));
  module->names = static_cast<const char* const*>(resolve("csr_array_names"));
  module->base = static_cast<const std::int64_t*>(resolve("csr_array_base"));
  module->extent = static_cast<const std::int64_t*>(resolve("csr_array_extent"));
  module->values = static_cast<std::uint64_t* const*>(resolve("csr_array_values"));
  module->counts = static_cast<std::uint32_t* const*>(resolve("csr_array_counts"));
  module->executed = static_cast<std::int64_t*>(resolve("csr_executed"));
  module->disabled = static_cast<std::int64_t*>(resolve("csr_disabled"));
  if (ok && *abi != kAbiVersion) {
    diagnostic = "kernel ABI version " + std::to_string(*abi) + ", host expects " +
                 std::to_string(kAbiVersion);
    ok = false;
  }
  if (!ok) {
    ::dlclose(handle);
    return nullptr;
  }
  module->array_count = *count;
  return registry.emplace(so_path, std::move(module)).first->second.get();
}

/// Zeroes the kernel's static state so it runs from a fresh machine.
void reset_module(KernelModule& module) {
  for (std::int32_t a = 0; a < module.array_count; ++a) {
    const auto cells = static_cast<std::size_t>(module.extent[a]);
    std::memset(module.values[a], 0, cells * sizeof(std::uint64_t));
    std::memset(module.counts[a], 0, cells * sizeof(std::uint32_t));
  }
  *module.executed = 0;
  *module.disabled = 0;
}

}  // namespace

struct NativeResultBuilder {
  static void snapshot(const KernelModule& module, NativeResult& result) {
    for (std::int32_t a = 0; a < module.array_count; ++a) {
      NativeResult::ArrayState state;
      state.base = module.base[a];
      const auto cells = static_cast<std::size_t>(module.extent[a]);
      state.values.assign(module.values[a], module.values[a] + cells);
      state.counts.assign(module.counts[a], module.counts[a] + cells);
      state.writes = std::accumulate(state.counts.begin(), state.counts.end(),
                                     std::int64_t{0});
      result.arrays_.emplace(module.names[a], std::move(state));
    }
    result.executed_ = *module.executed;
    result.disabled_ = *module.disabled;
  }
};

std::uint64_t NativeResult::read(const std::string& array, std::int64_t index) const {
  const auto it = arrays_.find(array);
  if (it != arrays_.end()) {
    const ArrayState& state = it->second;
    if (index >= state.base &&
        index < state.base + static_cast<std::int64_t>(state.values.size())) {
      const auto slot = static_cast<std::size_t>(index - state.base);
      if (state.counts[slot] != 0) return state.values[slot];
    }
  }
  return boundary_value(array, index);
}

int NativeResult::write_count(const std::string& array, std::int64_t index) const {
  const auto it = arrays_.find(array);
  if (it == arrays_.end()) return 0;
  const ArrayState& state = it->second;
  if (index < state.base ||
      index >= state.base + static_cast<std::int64_t>(state.counts.size())) {
    return 0;
  }
  return static_cast<int>(state.counts[static_cast<std::size_t>(index - state.base)]);
}

std::int64_t NativeResult::total_writes(const std::string& array) const {
  const auto it = arrays_.find(array);
  return it == arrays_.end() ? 0 : it->second.writes;
}

NativeOutcome run_native(const LoopProgram& program, const CompileOptions& options) {
  CSR_SPAN("native", "run_native");
  static observe::Histogram& kernel_seconds =
      observe::MetricsRegistry::global().histogram(
          "csr_native_kernel_run_seconds", observe::latency_seconds_bounds(),
          "Wall time of one compiled kernel execution");
  NativeOutcome outcome;

  const auto compile_start = Clock::now();
  CEmitterOptions emitter;
  emitter.semantics = CEmitterOptions::Semantics::kExact;
  emitter.function_name = kKernelSymbol;
  const std::string source = to_c_source(program, emitter);  // throws if invalid

  const CompileResult compiled = compile_shared_object(source, options);
  outcome.cache_hit = compiled.cache_hit;
  outcome.timed_out = compiled.timed_out;
  outcome.compile_seconds = seconds_since(compile_start);
  if (!compiled.ok) {
    outcome.status = NativeStatus::kCompileFailed;
    outcome.diagnostic = compiled.diagnostic;
    return outcome;
  }

  std::string diagnostic;
  KernelModule* module = load_module(compiled.shared_object, diagnostic);
  if (module == nullptr) {
    outcome.status = NativeStatus::kLoadFailed;
    outcome.diagnostic = diagnostic;
    return outcome;
  }

  const std::lock_guard<std::mutex> lock(module->run_mutex);
  observe::Span run_span("native", "kernel_run");
  const auto run_start = Clock::now();
  reset_module(*module);
  module->kernel();
  outcome.run_seconds = seconds_since(run_start);
  kernel_seconds.observe(outcome.run_seconds);
  NativeResultBuilder::snapshot(*module, outcome.result);
  outcome.status = NativeStatus::kOk;
  return outcome;
}

}  // namespace csr::native
