#include "native/batch.hpp"

#include <dlfcn.h>

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>

#include "codegen/batch_emitter.hpp"
#include "observe/observe.hpp"

namespace csr::native {

/// Fills one NativeResult per lane from a batch module's SoA descriptor
/// table (friend of NativeResult, like engine.cpp's NativeResultBuilder).
struct BatchResultBuilder;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr const char* kKernelSymbol = "csr_kernel";
constexpr std::int32_t kBatchAbiVersion = 2;

/// One loaded batch shared object: the kernel entry point plus the batched
/// `csr_*` descriptor table. Buffers are static SoA storage of
/// extent[a] * width cells per array; counters are per-lane arrays.
struct BatchModule {
  std::mutex run_mutex;
  void (*kernel)() = nullptr;
  std::int32_t width = 0;
  std::int32_t array_count = 0;
  const char* const* names = nullptr;
  const std::int64_t* base = nullptr;
  const std::int64_t* extent = nullptr;
  std::uint64_t* const* values = nullptr;
  std::uint32_t* const* counts = nullptr;
  std::int64_t* executed = nullptr;  ///< [width]
  std::int64_t* disabled = nullptr;  ///< [width]
};

/// Batch modules are content-addressed by .so path, separate from the
/// single-cell registry (the two ABIs resolve different symbol shapes).
std::map<std::string, std::unique_ptr<BatchModule>>& batch_registry() {
  static auto* registry = new std::map<std::string, std::unique_ptr<BatchModule>>();
  return *registry;
}

BatchModule* load_batch_module(const std::string& so_path,
                               std::int32_t expected_width,
                               std::string& diagnostic) {
  static std::mutex registry_mutex;
  const std::lock_guard<std::mutex> lock(registry_mutex);
  auto& registry = batch_registry();
  const auto it = registry.find(so_path);
  if (it != registry.end()) return it->second.get();

  CSR_SPAN("native", "batch_dlopen");
  observe::MetricsRegistry::global()
      .counter("csr_batch_dlopen_total", "Batch kernel shared objects loaded")
      .increment();
  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = ::dlerror();
    diagnostic = "dlopen failed: " + std::string(err != nullptr ? err : "?");
    return nullptr;
  }
  auto module = std::make_unique<BatchModule>();
  bool ok = true;
  const auto resolve = [&](const char* name) -> void* {
    void* sym = ::dlsym(handle, name);
    if (sym == nullptr) {
      if (!diagnostic.empty()) diagnostic += "; ";
      diagnostic += "missing kernel symbol '" + std::string(name) + "'";
      ok = false;
    }
    return sym;
  };
  const auto* abi = static_cast<const std::int32_t*>(resolve("csr_abi_version"));
  const auto* width = static_cast<const std::int32_t*>(resolve("csr_batch_width"));
  module->kernel = reinterpret_cast<void (*)()>(resolve(kKernelSymbol));
  const auto* count = static_cast<const std::int32_t*>(resolve("csr_array_count"));
  module->names = static_cast<const char* const*>(resolve("csr_array_names"));
  module->base = static_cast<const std::int64_t*>(resolve("csr_array_base"));
  module->extent = static_cast<const std::int64_t*>(resolve("csr_array_extent"));
  module->values = static_cast<std::uint64_t* const*>(resolve("csr_array_values"));
  module->counts = static_cast<std::uint32_t* const*>(resolve("csr_array_counts"));
  module->executed = static_cast<std::int64_t*>(resolve("csr_executed"));
  module->disabled = static_cast<std::int64_t*>(resolve("csr_disabled"));
  if (ok && *abi != kBatchAbiVersion) {
    diagnostic = "kernel ABI version " + std::to_string(*abi) + ", host expects " +
                 std::to_string(kBatchAbiVersion);
    ok = false;
  }
  if (ok && *width != expected_width) {
    diagnostic = "kernel batch width " + std::to_string(*width) +
                 ", host expects " + std::to_string(expected_width);
    ok = false;
  }
  if (!ok) {
    ::dlclose(handle);
    return nullptr;
  }
  module->width = *width;
  module->array_count = *count;
  return registry.emplace(so_path, std::move(module)).first->second.get();
}

/// Zeroes the batch kernel's static SoA state across all lanes.
void reset_batch_module(BatchModule& module) {
  const auto width = static_cast<std::size_t>(module.width);
  for (std::int32_t a = 0; a < module.array_count; ++a) {
    const auto cells = static_cast<std::size_t>(module.extent[a]) * width;
    std::memset(module.values[a], 0, cells * sizeof(std::uint64_t));
    std::memset(module.counts[a], 0, cells * sizeof(std::uint32_t));
  }
  std::memset(module.executed, 0, width * sizeof(std::int64_t));
  std::memset(module.disabled, 0, width * sizeof(std::int64_t));
}

}  // namespace

struct BatchResultBuilder {
  /// De-interleaves lane `lane` of the SoA buffers into a NativeResult with
  /// the same observable layout run_native would produce for that lane.
  static void snapshot(const BatchModule& module, std::int32_t lane,
                       NativeResult& result) {
    const auto width = static_cast<std::size_t>(module.width);
    for (std::int32_t a = 0; a < module.array_count; ++a) {
      NativeResult::ArrayState state;
      state.base = module.base[a];
      const auto cells = static_cast<std::size_t>(module.extent[a]);
      state.values.resize(cells);
      state.counts.resize(cells);
      const std::uint64_t* values = module.values[a];
      const std::uint32_t* counts = module.counts[a];
      for (std::size_t c = 0; c < cells; ++c) {
        state.values[c] = values[c * width + static_cast<std::size_t>(lane)];
        state.counts[c] = counts[c * width + static_cast<std::size_t>(lane)];
      }
      state.writes = std::accumulate(state.counts.begin(), state.counts.end(),
                                     std::int64_t{0});
      result.arrays_.emplace(module.names[a], std::move(state));
    }
    result.executed_ = module.executed[lane];
    result.disabled_ = module.disabled[lane];
  }
};

BatchOutcome run_native_batch(const std::vector<LoopProgram>& programs,
                              const CompileOptions& options) {
  CSR_SPAN("native", "run_native_batch");
  auto& registry = observe::MetricsRegistry::global();
  static observe::Histogram& kernel_seconds = registry.histogram(
      "csr_batch_kernel_run_seconds", observe::latency_seconds_bounds(),
      "Wall time of one batched kernel execution (all lanes)");
  static observe::Counter& lane_counter = registry.counter(
      "csr_batch_lanes_total", "Lanes executed through batch kernels");
  static observe::Counter& run_counter =
      registry.counter("csr_batch_kernel_runs_total", "Batched kernel executions");

  BatchOutcome outcome;
  const auto width = static_cast<std::int32_t>(programs.size());

  const auto compile_start = Clock::now();
  // Throws on empty/invalid/shape-incompatible input — same contract as
  // the emitter, surfaced before any toolchain work.
  const std::string source = to_batch_c_source(programs);

  CompileOptions batch_options = options;
  batch_options.layout = "soa-v1-w" + std::to_string(width);
  const CompileResult compiled = compile_shared_object(source, batch_options);
  outcome.cache_hit = compiled.cache_hit;
  outcome.timed_out = compiled.timed_out;
  outcome.compile_seconds = seconds_since(compile_start);
  if (!compiled.ok) {
    outcome.status = NativeStatus::kCompileFailed;
    outcome.diagnostic = compiled.diagnostic;
    return outcome;
  }

  std::string diagnostic;
  BatchModule* module = load_batch_module(compiled.shared_object, width, diagnostic);
  if (module == nullptr) {
    outcome.status = NativeStatus::kLoadFailed;
    outcome.diagnostic = diagnostic;
    return outcome;
  }

  const std::lock_guard<std::mutex> lock(module->run_mutex);
  observe::Span run_span("native", "batch_kernel_run");
  run_span.arg("width", std::to_string(width));
  const auto run_start = Clock::now();
  reset_batch_module(*module);
  module->kernel();
  outcome.run_seconds = seconds_since(run_start);
  kernel_seconds.observe(outcome.run_seconds);
  run_counter.increment();
  lane_counter.increment(width);
  outcome.lanes.resize(programs.size());
  for (std::int32_t lane = 0; lane < width; ++lane) {
    BatchResultBuilder::snapshot(*module, lane,
                                 outcome.lanes[static_cast<std::size_t>(lane)]);
  }
  outcome.status = NativeStatus::kOk;
  return outcome;
}

}  // namespace csr::native
