#pragma once

/// \file batch.hpp
/// Batched native execution: many (n, initial-state) lanes of one loop
/// shape compiled into a single SoA kernel (codegen/batch_emitter.hpp) and
/// executed with one call. Per-lane final state is read back through the
/// batched `csr_*` descriptor table (ABI version 2: `csr_batch_width`,
/// per-lane `csr_executed[]`/`csr_disabled[]`, lane-innermost buffers) into
/// one NativeResult per lane, each observably identical to what
/// run_native() would have produced for that lane alone — the batch
/// differential harness (ctest label `batch`) holds this bit-for-bit.
///
/// Same availability contract as run_native: toolchain problems are
/// reported outcomes, never aborts. Modules stay loaded for the life of
/// the process and runs of one module serialize on its mutex.

#include <string>
#include <vector>

#include "loopir/program.hpp"
#include "native/compile.hpp"
#include "native/engine.hpp"

namespace csr::native {

/// Outcome of one batched kernel run; `lanes` is parallel to the input
/// programs and valid only when ok().
struct BatchOutcome {
  NativeStatus status = NativeStatus::kCompileFailed;
  bool cache_hit = false;
  bool timed_out = false;
  std::string diagnostic;
  double compile_seconds = 0;
  double run_seconds = 0;  ///< one reset + one kernel call for all lanes
  std::vector<NativeResult> lanes;

  [[nodiscard]] bool ok() const { return status == NativeStatus::kOk; }
};

/// Emits, compiles (cached, layout-keyed "soa-v1-w<W>") and runs the batch
/// kernel for `programs` (width = programs.size()). Throws InvalidArgument
/// when `programs` is empty, a program fails validation, or the programs'
/// batch shapes differ (batch_shape_key); toolchain failures come back in
/// `status`/`diagnostic`.
[[nodiscard]] BatchOutcome run_native_batch(const std::vector<LoopProgram>& programs,
                                            const CompileOptions& options = {});

}  // namespace csr::native
