#pragma once

/// \file compile.hpp
/// Host-compiler invocation behind a content-addressed cache. The native
/// execution engine (engine.hpp) compiles emitted C into shared objects;
/// this module owns the toolchain interaction:
///
///   * the cache key is a hash of (source text, flags, compiler), so
///     repeated sweep cells — and repeated test runs — reuse binaries;
///   * compilation writes to a unique temporary and atomically renames into
///     the cache, so concurrent compiles (threads or processes) of the same
///     source are safe and the cache never contains a half-written object;
///   * failure is a value, not an exception: a missing compiler, a sandboxed
///     temp directory or a cc error all come back as `ok == false` with the
///     toolchain's own output in `diagnostic`, letting callers (the sweep
///     driver, tests) degrade gracefully instead of aborting;
///   * every compiler subprocess runs under an optional **deadline**
///     (`CompileOptions::deadline_seconds`): on expiry the whole process
///     group is killed and the result reports `timed_out` — a hung compiler
///     can stall one sweep cell, never the sweep.
///
/// Compiler selection: `CompileOptions::compiler` if non-empty, else the
/// `CSR_CC` environment variable (honored verbatim with no fallback, so
/// tests can inject a bogus compiler), else the C++ compiler that built this
/// library (driving it in C mode via `-x c`), else `cc`.
///
/// Fault injection: when `CompileOptions::fake_compiler` (default: the
/// `CSR_FAKE_CC` environment variable) is non-empty, the toolchain
/// invocation is replaced by a scripted stand-in so retry/timeout paths can
/// be tested deterministically without a broken toolchain:
///
///     hang[:secs]   the "compiler" sleeps (default 600 s) and produces
///                   nothing — exercises deadline enforcement;
///     fail          always exits non-zero with a diagnostic;
///     ok-after=N    attempts 1..N−1 for a given cache key fail, the Nth
///                   runs the real compiler — exercises bounded retries.
///
/// Locking discipline: per-key mutexes serialize compilation of identical
/// sources within the process; the registry handing them out is a leaf-free
/// two-level hierarchy (registry lock, then one key lock) whose ordering is
/// asserted at runtime — acquiring the registry lock while holding a key
/// lock, or nesting two key locks on one thread, throws LogicError instead
/// of deadlocking.

#include <cstdint>
#include <string>

namespace csr::native {

struct CompileOptions {
  /// C compiler driver; empty = auto-detect (see file comment).
  std::string compiler;
  /// Codegen flags; part of the cache key. `-x c` keeps a C++ driver usable.
  std::string flags = "-O2 -fPIC -shared -w -x c -std=c11";
  /// Cache directory; empty = $CSR_NATIVE_CACHE_DIR, else
  /// <system temp dir>/csr-native-cache.
  std::string cache_dir;
  /// Wall-clock budget for one compiler subprocess; 0 = unbounded. On
  /// expiry the subprocess group is killed and the result is a failure
  /// with `timed_out` set.
  double deadline_seconds = 0.0;
  /// Fault-injection spec (see file comment); empty = $CSR_FAKE_CC.
  std::string fake_compiler;
  /// Kernel state-layout tag, part of the cache key. Single-cell kernels
  /// leave it empty; the batch engine sets "soa-v1-w<width>" so a batch
  /// kernel and a single-cell kernel derived from the same program text can
  /// never collide in the cache (the layouts have incompatible ABIs).
  std::string layout;
};

struct CompileResult {
  bool ok = false;
  bool cache_hit = false;
  bool timed_out = false;     ///< the compiler subprocess hit the deadline
  std::string shared_object;  ///< path of the compiled .so when ok
  std::string diagnostic;     ///< toolchain output / failure reason when !ok
};

/// Compiles `c_source` into a shared object (cache-aware, thread- and
/// process-safe, never throws — see the file comment).
[[nodiscard]] CompileResult compile_shared_object(const std::string& c_source,
                                                  const CompileOptions& options = {});

/// The compiler auto-detection result used when `options.compiler` is empty.
[[nodiscard]] std::string default_compiler();

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t failures = 0;
};

/// Process-wide compile-cache counters (benches and tests).
[[nodiscard]] CacheStats compile_cache_stats();

/// Clears the per-key attempt counters behind the `ok-after=N` fault spec,
/// so tests can replay injection scenarios from a clean slate.
void reset_fake_cc_attempts();

/// True when the current compiler selection can compile and dlopen a trivial
/// kernel. Probed once per distinct compiler string, so it is cheap to call
/// before every native test; respects CSR_CC changes between calls.
[[nodiscard]] bool native_available();

}  // namespace csr::native
