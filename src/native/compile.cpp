#include "native/compile.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

namespace csr::native {

namespace {

namespace fs = std::filesystem;

std::atomic<std::int64_t> g_hits{0};
std::atomic<std::int64_t> g_misses{0};
std::atomic<std::int64_t> g_failures{0};

std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string cache_key(const std::string& source, const CompileOptions& options,
                      const std::string& compiler) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(source, h);
  h = fnv1a("\x1f", h);
  h = fnv1a(options.flags, h);
  h = fnv1a("\x1f", h);
  h = fnv1a(compiler, h);
  std::ostringstream os;
  os << 'k' << std::hex << h;
  return os.str();
}

fs::path cache_directory(const CompileOptions& options, std::string& problem) {
  fs::path dir;
  if (!options.cache_dir.empty()) {
    dir = options.cache_dir;
  } else if (const char* env = std::getenv("CSR_NATIVE_CACHE_DIR");
             env != nullptr && *env != '\0') {
    dir = env;
  } else {
    std::error_code ec;
    dir = fs::temp_directory_path(ec);
    if (ec) {
      problem = "no usable temp directory: " + ec.message();
      return {};
    }
    dir /= "csr-native-cache";
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    problem = "cannot create cache directory " + dir.string() + ": " + ec.message();
    return {};
  }
  return dir;
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += '\'';
  return out;
}

/// Runs `command` through the shell, capturing stdout+stderr. Returns the
/// process exit status (-1 when the shell could not be spawned).
int run_command(const std::string& command, std::string& output) {
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    output += buffer;
    if (output.size() > 16384) break;  // a page of diagnostics is plenty
  }
  return ::pclose(pipe);
}

/// Serializes compilation per cache key within this process; cross-process
/// safety comes from the atomic rename.
std::mutex& key_mutex(const std::string& key) {
  static std::mutex table_mutex;
  static std::map<std::string, std::mutex> table;
  const std::lock_guard<std::mutex> lock(table_mutex);
  return table[key];
}

std::atomic<std::uint64_t> g_temp_counter{0};

}  // namespace

std::string default_compiler() {
  if (const char* env = std::getenv("CSR_CC"); env != nullptr && *env != '\0') {
    return env;
  }
#ifdef CSR_HOST_CXX
  return CSR_HOST_CXX;
#else
  return "cc";
#endif
}

CompileResult compile_shared_object(const std::string& c_source,
                                    const CompileOptions& options) {
  CompileResult result;
  const std::string compiler =
      options.compiler.empty() ? default_compiler() : options.compiler;
  if (compiler.empty()) {
    result.diagnostic = "no host C compiler configured";
    ++g_failures;
    return result;
  }
  std::string problem;
  const fs::path dir = cache_directory(options, problem);
  if (dir.empty()) {
    result.diagnostic = problem;
    ++g_failures;
    return result;
  }

  const std::string key = cache_key(c_source, options, compiler);
  const fs::path so_path = dir / (key + ".so");
  const std::lock_guard<std::mutex> lock(key_mutex(key));

  std::error_code ec;
  if (fs::exists(so_path, ec)) {
    result.ok = true;
    result.cache_hit = true;
    result.shared_object = so_path.string();
    ++g_hits;
    return result;
  }

  // Content-addressed, so the source file doubles as the cache's own
  // provenance record; written via a temp + rename like the object.
  const std::string unique =
      "." + std::to_string(::getpid()) + "." + std::to_string(++g_temp_counter);
  const fs::path c_path = dir / (key + ".c");
  const fs::path c_tmp = dir / (key + ".c.tmp" + unique);
  {
    std::ofstream out(c_tmp);
    out << c_source;
    if (!out) {
      result.diagnostic = "cannot write " + c_tmp.string();
      fs::remove(c_tmp, ec);
      ++g_failures;
      return result;
    }
  }
  fs::rename(c_tmp, c_path, ec);
  if (ec) {
    result.diagnostic = "cannot move source into cache: " + ec.message();
    fs::remove(c_tmp, ec);
    ++g_failures;
    return result;
  }

  const fs::path so_tmp = dir / (key + ".so.tmp" + unique);
  const std::string command = compiler + " " + options.flags + " -o " +
                              shell_quote(so_tmp.string()) + " " +
                              shell_quote(c_path.string());
  std::string output;
  const int status = run_command(command, output);
  if (status != 0 || !fs::exists(so_tmp, ec)) {
    std::ostringstream diag;
    diag << "native compile failed (exit " << status << "): " << command;
    if (!output.empty()) diag << '\n' << output;
    result.diagnostic = diag.str();
    fs::remove(so_tmp, ec);
    ++g_failures;
    return result;
  }
  fs::rename(so_tmp, so_path, ec);
  if (ec) {
    // Lost a cross-process race or an unwritable cache; the object is still
    // good if someone else's rename won.
    if (!fs::exists(so_path, ec)) {
      result.diagnostic = "cannot move object into cache: " + ec.message();
      ++g_failures;
      return result;
    }
    fs::remove(so_tmp, ec);
  }
  result.ok = true;
  result.shared_object = so_path.string();
  ++g_misses;
  return result;
}

CacheStats compile_cache_stats() {
  return CacheStats{g_hits.load(), g_misses.load(), g_failures.load()};
}

bool native_available() {
  static std::mutex probe_mutex;
  static std::map<std::string, bool> probed;
  const std::string compiler = default_compiler();
  const std::lock_guard<std::mutex> lock(probe_mutex);
  const auto it = probed.find(compiler);
  if (it != probed.end()) return it->second;

  const CompileResult probe = compile_shared_object(
      "/* csr native-engine availability probe */\nvoid csr_probe(void) {}\n");
  bool ok = probe.ok;
  if (ok) {
    void* handle = ::dlopen(probe.shared_object.c_str(), RTLD_NOW | RTLD_LOCAL);
    ok = handle != nullptr && ::dlsym(handle, "csr_probe") != nullptr;
    if (handle != nullptr) ::dlclose(handle);
  }
  probed.emplace(compiler, ok);
  return ok;
}

}  // namespace csr::native
