#include "native/compile.hpp"

#include <dlfcn.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "observe/observe.hpp"
#include "support/check.hpp"
#include "support/hash.hpp"

namespace csr::native {

namespace {

namespace fs = std::filesystem;

/// Cache accounting lives in the global MetricsRegistry (the ad-hoc local
/// atomics it replaces told the same story a second time); CacheStats is a
/// read-out of these counters.
struct CompileMetrics {
  observe::Counter& hits;
  observe::Counter& misses;
  observe::Counter& failures;
  observe::Histogram& compile_seconds;

  static CompileMetrics& get() {
    static CompileMetrics metrics = [] {
      auto& reg = observe::MetricsRegistry::global();
      return CompileMetrics{
          reg.counter("csr_native_compile_cache_hits_total",
                      "Compiles satisfied by a cached shared object"),
          reg.counter("csr_native_compile_cache_misses_total",
                      "Compiles that ran the toolchain successfully"),
          reg.counter("csr_native_compile_failures_total",
                      "Compiles that failed or timed out"),
          reg.histogram("csr_native_compile_seconds",
                        observe::latency_seconds_bounds(),
                        "Wall time of one compile_shared_object call"),
      };
    }();
    return metrics;
  }
};

/// Fault-injection spec in effect: explicit option first, then $CSR_FAKE_CC.
std::string effective_fake_spec(const CompileOptions& options) {
  if (!options.fake_compiler.empty()) return options.fake_compiler;
  const char* env = std::getenv("CSR_FAKE_CC");
  return env != nullptr ? env : "";
}

std::string cache_key(const std::string& source, const CompileOptions& options,
                      const std::string& compiler) {
  // The fake spec is part of the key: an injected-fault compile must never
  // be satisfied by (or pollute) an object the real toolchain produced.
  // The layout tag keeps single-cell and batch (SoA) kernels apart even if
  // their source texts ever coincide — the two ABIs are incompatible.
  return content_key('k', {source, options.flags, compiler,
                           effective_fake_spec(options), options.layout});
}

fs::path cache_directory(const CompileOptions& options, std::string& problem) {
  fs::path dir;
  if (!options.cache_dir.empty()) {
    dir = options.cache_dir;
  } else if (const char* env = std::getenv("CSR_NATIVE_CACHE_DIR");
             env != nullptr && *env != '\0') {
    dir = env;
  } else {
    std::error_code ec;
    dir = fs::temp_directory_path(ec);
    if (ec) {
      problem = "no usable temp directory: " + ec.message();
      return {};
    }
    dir /= "csr-native-cache";
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    problem = "cannot create cache directory " + dir.string() + ": " + ec.message();
    return {};
  }
  return dir;
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += '\'';
  return out;
}

/// Runs `command` through the shell in its own process group, capturing
/// stdout+stderr, enforcing `deadline_seconds` (0 = none) by killing the
/// group on expiry. Returns the exit status; -1 when the child could not be
/// spawned or died on a signal, -2 when the deadline fired (`timed_out` is
/// also set). Replaces the previous popen() runner, which had no way to
/// bound a hung toolchain.
int run_command(const std::string& command, double deadline_seconds,
                std::string& output, bool& timed_out) {
  timed_out = false;
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    ::setpgid(0, 0);  // own group, so a deadline kill reaps grandchildren too
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    ::execl("/bin/sh", "sh", "-c", command.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::setpgid(pid, pid);  // both sides race to set it; either winning is fine
  ::close(fds[1]);

  const auto start = std::chrono::steady_clock::now();
  char buffer[4096];
  for (;;) {
    int timeout_ms = -1;
    if (deadline_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      const double remaining = deadline_seconds - elapsed;
      if (remaining <= 0) {
        timed_out = true;
        ::kill(-pid, SIGKILL);
        break;
      }
      timeout_ms = static_cast<int>(remaining * 1000.0) + 1;
    }
    struct pollfd p = {fds[0], POLLIN, 0};
    const int ready = ::poll(&p, 1, timeout_ms);
    if (ready > 0) {
      const ssize_t k = ::read(fds[0], buffer, sizeof(buffer));
      if (k > 0) {
        if (output.size() < 16384) {  // a page of diagnostics is plenty
          output.append(buffer, static_cast<std::size_t>(k));
        }
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      break;  // EOF (or unrecoverable read error): the child closed its end
    }
    if (ready == 0) {
      timed_out = true;
      ::kill(-pid, SIGKILL);
      break;
    }
    if (errno != EINTR) break;
  }
  ::close(fds[0]);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (timed_out) return -2;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// ---------------------------------------------------------------------------
// Lock hierarchy of the compile cache.
//
// Level 1: the key-mutex registry lock (short map lookups only).
// Level 2: one per-key mutex (held across a whole toolchain invocation).
//
// The old code handed out bare `std::mutex&` references from the registry
// with nothing preventing a caller from re-entering the cache — or a future
// eviction pass from invalidating the reference — while a key lock was
// held. KeyLock now owns the mutex by shared_ptr (safe against eviction)
// and a thread-local level counter turns any ordering violation into an
// immediate LogicError instead of a latent deadlock.

int& lock_level() {
  thread_local int level = 0;
  return level;
}

std::mutex& key_registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, std::shared_ptr<std::mutex>>& key_registry() {
  static auto* registry = new std::map<std::string, std::shared_ptr<std::mutex>>();
  return *registry;
}

/// Serializes compilation per cache key within this process (cross-process
/// safety comes from the atomic rename), asserting the lock order above.
class KeyLock {
 public:
  explicit KeyLock(const std::string& key) {
    CSR_ENSURE(lock_level() == 0,
               "compile-cache lock order violated: key lock requested at level " +
                   std::to_string(lock_level()));
    {
      lock_level() = 1;
      const std::lock_guard<std::mutex> registry_lock(key_registry_mutex());
      std::shared_ptr<std::mutex>& slot = key_registry()[key];
      if (slot == nullptr) slot = std::make_shared<std::mutex>();
      mutex_ = slot;
      lock_level() = 0;
    }
    mutex_->lock();
    lock_level() = 2;
  }
  ~KeyLock() {
    mutex_->unlock();
    lock_level() = 0;
  }
  KeyLock(const KeyLock&) = delete;
  KeyLock& operator=(const KeyLock&) = delete;

 private:
  std::shared_ptr<std::mutex> mutex_;
};

// ---------------------------------------------------------------------------
// Fault injection (CSR_FAKE_CC / CompileOptions::fake_compiler).

struct FakeSpec {
  enum class Mode { kNone, kHang, kFail, kOkAfter };
  Mode mode = Mode::kNone;
  double hang_seconds = 600.0;
  int ok_after = 1;
};

FakeSpec parse_fake_spec(const std::string& spec) {
  FakeSpec fake;
  if (spec.empty()) return fake;
  if (spec == "hang" || spec.rfind("hang:", 0) == 0) {
    fake.mode = FakeSpec::Mode::kHang;
    if (spec.size() > 5) fake.hang_seconds = std::atof(spec.c_str() + 5);
    if (fake.hang_seconds <= 0) fake.hang_seconds = 600.0;
  } else if (spec == "fail") {
    fake.mode = FakeSpec::Mode::kFail;
  } else if (spec.rfind("ok-after=", 0) == 0) {
    fake.mode = FakeSpec::Mode::kOkAfter;
    fake.ok_after = std::atoi(spec.c_str() + 9);
    if (fake.ok_after < 1) fake.ok_after = 1;
  } else {
    // Unknown specs behave like `fail` so a typo cannot silently disable
    // the injection a test asked for.
    fake.mode = FakeSpec::Mode::kFail;
  }
  return fake;
}

std::mutex& fake_attempts_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, int>& fake_attempts() {
  static auto* attempts = new std::map<std::string, int>();
  return *attempts;
}

std::atomic<std::uint64_t> g_temp_counter{0};

}  // namespace

std::string default_compiler() {
  if (const char* env = std::getenv("CSR_CC"); env != nullptr && *env != '\0') {
    return env;
  }
#ifdef CSR_HOST_CXX
  return CSR_HOST_CXX;
#else
  return "cc";
#endif
}

void reset_fake_cc_attempts() {
  const std::lock_guard<std::mutex> lock(fake_attempts_mutex());
  fake_attempts().clear();
}

CompileResult compile_shared_object(const std::string& c_source,
                                    const CompileOptions& options) {
  CompileMetrics& metrics = CompileMetrics::get();
  observe::Span span("native", "compile");
  observe::ScopedTimer timer(metrics.compile_seconds);
  CompileResult result;
  const std::string compiler =
      options.compiler.empty() ? default_compiler() : options.compiler;
  if (compiler.empty()) {
    result.diagnostic = "no host C compiler configured";
    metrics.failures.increment();
    return result;
  }
  std::string problem;
  const fs::path dir = cache_directory(options, problem);
  if (dir.empty()) {
    result.diagnostic = problem;
    metrics.failures.increment();
    return result;
  }

  const std::string key = cache_key(c_source, options, compiler);
  const fs::path so_path = dir / (key + ".so");
  const KeyLock lock(key);

  std::error_code ec;
  if (fs::exists(so_path, ec)) {
    result.ok = true;
    result.cache_hit = true;
    result.shared_object = so_path.string();
    metrics.hits.increment();
    span.arg("cache_hit", true);
    return result;
  }
  span.arg("cache_hit", false);

  // Content-addressed, so the source file doubles as the cache's own
  // provenance record; written via a temp + rename like the object.
  const std::string unique =
      "." + std::to_string(::getpid()) + "." + std::to_string(++g_temp_counter);
  const fs::path c_path = dir / (key + ".c");
  const fs::path c_tmp = dir / (key + ".c.tmp" + unique);
  {
    std::ofstream out(c_tmp);
    out << c_source;
    if (!out) {
      result.diagnostic = "cannot write " + c_tmp.string();
      fs::remove(c_tmp, ec);
      metrics.failures.increment();
      return result;
    }
  }
  fs::rename(c_tmp, c_path, ec);
  if (ec) {
    result.diagnostic = "cannot move source into cache: " + ec.message();
    fs::remove(c_tmp, ec);
    metrics.failures.increment();
    return result;
  }

  const fs::path so_tmp = dir / (key + ".so.tmp" + unique);
  std::string command = compiler + " " + options.flags + " -o " +
                        shell_quote(so_tmp.string()) + " " +
                        shell_quote(c_path.string());

  // Fault injection replaces (or, for ok-after=N, delays) the real
  // toolchain command; see the file comment of compile.hpp.
  const FakeSpec fake = parse_fake_spec(effective_fake_spec(options));
  switch (fake.mode) {
    case FakeSpec::Mode::kNone:
      break;
    case FakeSpec::Mode::kHang: {
      std::ostringstream cmd;
      cmd << "sleep " << fake.hang_seconds;
      command = cmd.str();
      break;
    }
    case FakeSpec::Mode::kFail:
      command = "echo 'csr-fake-cc: injected failure'; exit 1";
      break;
    case FakeSpec::Mode::kOkAfter: {
      int attempt = 0;
      {
        const std::lock_guard<std::mutex> attempts_lock(fake_attempts_mutex());
        attempt = ++fake_attempts()[key];
      }
      if (attempt < fake.ok_after) {
        command = "echo 'csr-fake-cc: injected failure (attempt " +
                  std::to_string(attempt) + ")'; exit 1";
      }
      break;
    }
  }

  std::string output;
  bool timed_out = false;
  const int status = run_command(command, options.deadline_seconds, output, timed_out);
  if (status != 0 || !fs::exists(so_tmp, ec)) {
    std::ostringstream diag;
    if (timed_out) {
      diag << "native compile timed out after " << options.deadline_seconds
           << "s: " << command;
    } else {
      diag << "native compile failed (exit " << status << "): " << command;
    }
    if (!output.empty()) diag << '\n' << output;
    result.timed_out = timed_out;
    result.diagnostic = diag.str();
    fs::remove(so_tmp, ec);
    metrics.failures.increment();
    return result;
  }
  fs::rename(so_tmp, so_path, ec);
  if (ec) {
    // Lost a cross-process race or an unwritable cache; the object is still
    // good if someone else's rename won.
    if (!fs::exists(so_path, ec)) {
      result.diagnostic = "cannot move object into cache: " + ec.message();
      metrics.failures.increment();
      return result;
    }
    fs::remove(so_tmp, ec);
  }
  result.ok = true;
  result.shared_object = so_path.string();
  metrics.misses.increment();
  return result;
}

CacheStats compile_cache_stats() {
  CompileMetrics& metrics = CompileMetrics::get();
  return CacheStats{static_cast<std::int64_t>(metrics.hits.value()),
                    static_cast<std::int64_t>(metrics.misses.value()),
                    static_cast<std::int64_t>(metrics.failures.value())};
}

bool native_available() {
  static std::mutex probe_mutex;
  static std::map<std::string, bool> probed;
  // The fault-injection hook changes what a compiler string does, so it is
  // part of the memo key — a probe under CSR_FAKE_CC must not poison the
  // verdict for the real toolchain (or vice versa).
  const char* fake_env = std::getenv("CSR_FAKE_CC");
  const std::string compiler =
      default_compiler() + '\x1f' + (fake_env != nullptr ? fake_env : "");
  {
    const std::lock_guard<std::mutex> lock(probe_mutex);
    const auto it = probed.find(compiler);
    if (it != probed.end()) return it->second;
  }
  // Probe outside the mutex: holding a cache-external lock across a whole
  // toolchain invocation (as the previous code did) both serialized
  // first-probes and nested foreign locks around the cache's own hierarchy.
  // Two threads racing the first probe of one compiler just both probe.
  const CompileResult probe = compile_shared_object(
      "/* csr native-engine availability probe */\nvoid csr_probe(void) {}\n");
  bool ok = probe.ok;
  if (ok) {
    void* handle = ::dlopen(probe.shared_object.c_str(), RTLD_NOW | RTLD_LOCAL);
    ok = handle != nullptr && ::dlsym(handle, "csr_probe") != nullptr;
    if (handle != nullptr) ::dlclose(handle);
  }
  const std::lock_guard<std::mutex> lock(probe_mutex);
  probed.emplace(compiler, ok);
  return ok;
}

}  // namespace csr::native
