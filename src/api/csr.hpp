#pragma once

/// \file csr.hpp
/// The public umbrella header. One include gives an application the stable
/// surface of the library — the sweep driver and its configuration builder,
/// the exporters, the benchmark suite, and the observability layer:
///
///     #include "api/csr.hpp"
///
///     int main() {
///       using namespace csr::driver;
///       csr::observe::Tracer::global().set_enabled(true);
///       const SweepRun run = run_sweep(SweepConfig().benchmarks({"iir"}));
///       std::cout << to_csv(run.results);
///     }
///
/// Deeper headers (dfg/, retiming/, codegen/, vm/, native/, ...) remain
/// available for programs that work below the driver, but everything here
/// is what the deprecation policy keeps stable: types reachable from this
/// header are renamed only through `[[deprecated]]` shims that live for at
/// least one release. (The pre-SweepConfig sweep overloads and the old
/// JsonOptions alias completed that cycle and have been removed.)
///
/// Programs that serve sweeps over the network layer their server on top of
/// this same surface — see serve/server.hpp and docs/SERVING.md.

#include "benchmarks/benchmarks.hpp"
#include "driver/config.hpp"
#include "mdfg/builders.hpp"
#include "driver/export.hpp"
#include "driver/export_schema.hpp"
#include "driver/sweep.hpp"
#include "observe/observe.hpp"
#include "schedule/resources.hpp"
#include "support/enum_names.hpp"
#include "support/rational.hpp"
