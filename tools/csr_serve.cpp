// csr_serve — the long-running query daemon over the sweep pipeline.
//
// Boots a SweepService (warm-starting its cache from the persistent result
// journal when --journal is given), binds the HTTP server, wires SIGTERM /
// SIGINT to graceful drain, and blocks until drained. See docs/SERVING.md
// for the endpoint contract and a runbook.
//
// Usage:
//   csr_serve [--host H] [--port P] [--journal FILE] [--workers N]
//             [--queue-limit N] [--cache-capacity N] [--sweep-threads N]
//             [--batch-width N] [--port-file FILE]
//   csr_serve --oneshot BODY
//
// --port 0 asks the kernel for an ephemeral port; the bound port is printed
// on stdout (and written to --port-file) so test harnesses can discover it.
//
// --oneshot takes a /v1/sweep request body, runs it through the plain
// offline driver::run_sweep (no server, no cache, no single flight) and
// prints the shared-exporter bytes to stdout. CI's smoke job diffs a served
// response against this to prove the service's byte-identity guarantee.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "driver/config.hpp"
#include "driver/export.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --oneshot BODY      run a /v1/sweep body through the offline\n"
      << "                      run_sweep pipeline, print the export, exit\n"
      << "  --host H            bind address        (default 127.0.0.1)\n"
      << "  --port P            bind port, 0=ephemeral (default 8080)\n"
      << "  --journal FILE      persistent result journal; warm-starts the\n"
      << "                      cache and absorbs newly executed cells\n"
      << "  --workers N         connection worker threads (default 8)\n"
      << "  --queue-limit N     accepted-but-unclaimed connections (default 64)\n"
      << "  --cache-capacity N  cached cells across all shards (default 65536)\n"
      << "  --sweep-threads N   threads per sweep, 0=hardware (default 0)\n"
      << "  --batch-width N     lanes per batched kernel run (default 1);\n"
      << "                      results are byte-identical at any width\n"
      << "  --port-file FILE    write the bound port (for scripts)\n";
}

bool parse_unsigned(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

/// The byte-identity reference path: the same body the server accepts, run
/// through the plain offline pipeline with none of the serving machinery.
int run_oneshot(const std::string& body) {
  csr::serve::QueryResult rejection;
  const auto query = csr::serve::parse_query(body, &rejection);
  if (!query.has_value()) {
    std::cerr << "csr_serve: --oneshot body rejected (" << rejection.status
              << "): " << rejection.error << "\n";
    return 1;
  }
  csr::driver::SweepConfig config;
  config.grid() = query->config.grid();
  config.options().verify = query->config.options().verify;
  const csr::driver::SweepRun run = csr::driver::run_sweep(config);
  std::cout << (query->format == csr::driver::ExportFormat::kCsv
                    ? csr::driver::to_csv(run.results)
                    : csr::driver::to_json(run.results));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  csr::serve::ServiceOptions service_options;
  csr::serve::ServerOptions server_options;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "csr_serve: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t n = 0;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--oneshot") {
      return run_oneshot(value());
    } else if (arg == "--host") {
      server_options.host = value();
    } else if (arg == "--port") {
      if (!parse_unsigned(value(), &n) || n > 65535) {
        std::cerr << "csr_serve: bad --port\n";
        return 2;
      }
      server_options.port = static_cast<std::uint16_t>(n);
    } else if (arg == "--journal") {
      service_options.journal_path = value();
    } else if (arg == "--workers") {
      if (!parse_unsigned(value(), &n) || n == 0) {
        std::cerr << "csr_serve: bad --workers\n";
        return 2;
      }
      server_options.worker_threads = static_cast<unsigned>(n);
    } else if (arg == "--queue-limit") {
      if (!parse_unsigned(value(), &n) || n == 0) {
        std::cerr << "csr_serve: bad --queue-limit\n";
        return 2;
      }
      server_options.queue_limit = n;
    } else if (arg == "--cache-capacity") {
      if (!parse_unsigned(value(), &n) || n == 0) {
        std::cerr << "csr_serve: bad --cache-capacity\n";
        return 2;
      }
      service_options.cache_capacity = n;
    } else if (arg == "--sweep-threads") {
      if (!parse_unsigned(value(), &n)) {
        std::cerr << "csr_serve: bad --sweep-threads\n";
        return 2;
      }
      service_options.sweep_threads = static_cast<unsigned>(n);
    } else if (arg == "--batch-width") {
      if (!parse_unsigned(value(), &n) || n == 0) {
        std::cerr << "csr_serve: bad --batch-width\n";
        return 2;
      }
      service_options.sweep_batch_width = n;
    } else if (arg == "--port-file") {
      port_file = value();
    } else {
      std::cerr << "csr_serve: unknown option " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  csr::serve::SweepService service(service_options);
  if (service.warm_started_cells() > 0) {
    std::cerr << "csr_serve: warm-started " << service.warm_started_cells()
              << " cells from " << service_options.journal_path << "\n";
  }

  csr::serve::Server server(service, server_options);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "csr_serve: " << error << "\n";
    return 1;
  }
  if (!csr::serve::Server::install_signal_handlers(&server)) {
    std::cerr << "csr_serve: failed to install signal handlers\n";
    server.stop();
    return 1;
  }

  std::cout << "csr_serve: listening on " << server_options.host << ":"
            << server.port() << std::endl;
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      std::cerr << "csr_serve: cannot write " << port_file << "\n";
      server.stop();
      return 1;
    }
  }

  // Block until SIGTERM/SIGINT triggers drain, then let stop() finish the
  // in-flight work and join every thread.
  server.wait_until_drained();
  server.stop();
  std::cerr << "csr_serve: drained, served " << server.requests_served()
            << " requests\n";
  return 0;
}
