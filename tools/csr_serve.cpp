// csr_serve — the long-running query daemon over the sweep pipeline.
//
// Boots a SweepService (warm-starting its cache from the persistent result
// journal when --journal is given), binds the epoll reactor, wires SIGTERM /
// SIGINT to graceful drain, and blocks until drained. See docs/SERVING.md
// for the endpoint contract and a runbook.
//
// Usage:
//   csr_serve [--host H] [--port P] [--journal FILE] [--event-threads N]
//             [--compute-threads N] [--max-inflight N] [--max-connections N]
//             [--cache-capacity N] [--sweep-threads N] [--batch-width N]
//             [--no-coalesce] [--cluster N] [--port-file FILE]
//   csr_serve --oneshot BODY
//
// --port 0 asks the kernel for an ephemeral port; the bound port is printed
// on stdout (and written to --port-file) so test harnesses can discover it.
//
// --cluster N forks N worker processes that share the port via SO_REUSEPORT
// (the kernel load-balances accepted connections across them) — the
// single-box rehearsal of multi-node sharding. The parent discovers the
// port, writes --port-file, forwards SIGTERM/SIGINT to every child and
// waits for all of them. Each child keeps its own journal
// (<journal>.<index>) so append streams never interleave; results are
// byte-identical regardless of which sibling answers.
//
// --oneshot takes a /v1/sweep request body, runs it through the plain
// offline driver::run_sweep (no server, no cache, no single flight) and
// prints the shared-exporter bytes to stdout. CI's smoke job diffs a served
// response against this to prove the service's byte-identity guarantee.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "driver/config.hpp"
#include "driver/export.hpp"
#include "serve/config.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --oneshot BODY       run a /v1/sweep body through the offline\n"
      << "                       run_sweep pipeline, print the export, exit\n"
      << "  --host H             bind address        (default 127.0.0.1)\n"
      << "  --port P             bind port, 0=ephemeral (default 8080)\n"
      << "  --journal FILE       persistent result journal; warm-starts the\n"
      << "                       cache and absorbs newly executed cells\n"
      << "  --event-threads N    epoll event loops, 0=auto (default 0)\n"
      << "  --compute-threads N  sweep compute pool, 0=hardware (default 0)\n"
      << "  --max-inflight N     queued+executing sweeps before 503 (default 256)\n"
      << "  --max-connections N  open connections before 503 (default 4096)\n"
      << "  --cache-capacity N   cached cells across all shards (default 65536)\n"
      << "  --sweep-threads N    threads per sweep, 0=hardware (default 0)\n"
      << "  --batch-width N      lanes per batched kernel run (default 8);\n"
      << "                       results are byte-identical at any width\n"
      << "  --no-coalesce        disable cross-request cell batching\n"
      << "  --cluster N          fork N SO_REUSEPORT worker processes\n"
      << "  --port-file FILE     write the bound port (for scripts)\n";
}

bool parse_unsigned(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

/// The byte-identity reference path: the same body the server accepts, run
/// through the plain offline pipeline with none of the serving machinery.
int run_oneshot(const std::string& body) {
  csr::serve::QueryResult rejection;
  const auto query = csr::serve::parse_query(body, &rejection);
  if (!query.has_value()) {
    std::cerr << "csr_serve: --oneshot body rejected (" << rejection.status
              << "): " << rejection.error << "\n";
    return 1;
  }
  csr::driver::SweepConfig config;
  config.grid() = query->config.grid();
  config.options().verify = query->config.options().verify;
  const csr::driver::SweepRun run = csr::driver::run_sweep(config);
  std::cout << (query->format == csr::driver::ExportFormat::kCsv
                    ? csr::driver::to_csv(run.results)
                    : csr::driver::to_json(run.results));
  return 0;
}

/// Runs one server to completion: boot, announce, drain, stop.
int serve(csr::serve::ServerConfig config, const std::string& port_file,
          bool announce) {
  csr::serve::SweepService service(config);
  if (service.warm_started_cells() > 0) {
    std::cerr << "csr_serve: warm-started " << service.warm_started_cells()
              << " cells from " << config.service().journal_path << "\n";
  }

  csr::serve::Server server(service, config);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "csr_serve: " << error << "\n";
    return 1;
  }
  if (!csr::serve::Server::install_signal_handlers(&server)) {
    std::cerr << "csr_serve: failed to install signal handlers\n";
    server.stop();
    return 1;
  }

  if (announce) {
    std::cout << "csr_serve: listening on " << config.reactor().host << ":"
              << server.port() << std::endl;
    if (!port_file.empty()) {
      std::ofstream out(port_file, std::ios::trunc);
      out << server.port() << "\n";
      if (!out) {
        std::cerr << "csr_serve: cannot write " << port_file << "\n";
        server.stop();
        return 1;
      }
    }
  }

  // Block until SIGTERM/SIGINT triggers drain, then let stop() finish the
  // in-flight work and join every thread.
  server.wait_until_drained();
  server.stop();
  std::cerr << "csr_serve: drained, served " << server.requests_served()
            << " requests\n";
  return 0;
}

/// Child pids, visible to the parent's forwarding signal handler.
std::vector<pid_t> g_children;
extern "C" void forward_signal(int sig) {
  for (const pid_t pid : g_children) {
    if (pid > 0) ::kill(pid, sig);
  }
}

/// Binds an SO_REUSEPORT socket just long enough to discover which port the
/// cluster will share, so --port 0 works: every child binds the same
/// concrete port afterwards. Returns 0 on failure.
std::uint16_t discover_cluster_port(const std::string& host,
                                    std::uint16_t requested) {
  if (requested != 0) return requested;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  const bool ok =
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0;
  ::close(fd);
  return ok ? ntohs(addr.sin_port) : 0;
}

/// Forks `workers` SO_REUSEPORT siblings of one server config and babysits
/// them: forwards SIGTERM/SIGINT, reaps, reports the worst exit status.
int serve_cluster(csr::serve::ServerConfig config, unsigned workers,
                  const std::string& port_file) {
  config.reuse_port(true);
  const std::uint16_t port =
      discover_cluster_port(config.reactor().host, config.reactor().port);
  if (port == 0) {
    std::cerr << "csr_serve: cannot allocate a cluster port\n";
    return 1;
  }
  config.port(port);

  const std::string journal = config.service().journal_path;
  for (unsigned i = 0; i < workers; ++i) {
    // One journal per child: the append stream stays single-writer, and a
    // restart warm-starts each child from its own file. Keys are content
    // hashes, so the files never disagree about a cell.
    if (!journal.empty()) {
      config.journal(journal + "." + std::to_string(i));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::cerr << "csr_serve: fork: " << std::strerror(errno) << "\n";
      forward_signal(SIGTERM);
      return 1;
    }
    if (pid == 0) {
      // Children announce nothing; the parent owns stdout and the port file.
      std::exit(serve(config, "", /*announce=*/false));
    }
    g_children.push_back(pid);
  }

  struct sigaction action{};
  action.sa_handler = forward_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  // Children bind after warm-starting their journals, so the port is not
  // accepting yet. Probe until a connect succeeds before announcing or
  // writing the port file — scripts treat either as "ready to query".
  for (int attempt = 0; attempt < 600; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, config.reactor().host.c_str(), &addr.sin_addr);
    const bool up =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    ::close(fd);
    if (up) break;
    struct timespec delay{0, 50'000'000};  // 50ms
    ::nanosleep(&delay, nullptr);
  }

  std::cout << "csr_serve: cluster of " << workers << " listening on "
            << config.reactor().host << ":" << port << std::endl;
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << port << "\n";
    if (!out) {
      std::cerr << "csr_serve: cannot write " << port_file << "\n";
      forward_signal(SIGTERM);
      return 1;
    }
  }

  int worst = 0;
  for (std::size_t reaped = 0; reaped < g_children.size();) {
    int status = 0;
    const pid_t pid = ::wait(&status);
    if (pid < 0) {
      if (errno == EINTR) continue;
      break;
    }
    ++reaped;
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      worst = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      worst = 128 + WTERMSIG(status);
    }
  }
  std::cerr << "csr_serve: cluster drained\n";
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  csr::serve::ServerConfig config;
  config.batch_width(8);  // serving default: batching + coalescing on
  std::string port_file;
  unsigned cluster = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "csr_serve: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t n = 0;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--oneshot") {
      return run_oneshot(value());
    } else if (arg == "--host") {
      config.host(value());
    } else if (arg == "--port") {
      if (!parse_unsigned(value(), &n) || n > 65535) {
        std::cerr << "csr_serve: bad --port\n";
        return 2;
      }
      config.port(static_cast<std::uint16_t>(n));
    } else if (arg == "--journal") {
      config.journal(value());
    } else if (arg == "--event-threads") {
      if (!parse_unsigned(value(), &n)) {
        std::cerr << "csr_serve: bad --event-threads\n";
        return 2;
      }
      config.event_threads(static_cast<unsigned>(n));
    } else if (arg == "--compute-threads") {
      if (!parse_unsigned(value(), &n)) {
        std::cerr << "csr_serve: bad --compute-threads\n";
        return 2;
      }
      config.compute_threads(static_cast<unsigned>(n));
    } else if (arg == "--max-inflight") {
      if (!parse_unsigned(value(), &n) || n == 0) {
        std::cerr << "csr_serve: bad --max-inflight\n";
        return 2;
      }
      config.max_inflight(n);
    } else if (arg == "--max-connections") {
      if (!parse_unsigned(value(), &n) || n == 0) {
        std::cerr << "csr_serve: bad --max-connections\n";
        return 2;
      }
      config.max_connections(n);
    } else if (arg == "--cache-capacity") {
      if (!parse_unsigned(value(), &n) || n == 0) {
        std::cerr << "csr_serve: bad --cache-capacity\n";
        return 2;
      }
      config.cache_capacity(n);
    } else if (arg == "--sweep-threads") {
      if (!parse_unsigned(value(), &n)) {
        std::cerr << "csr_serve: bad --sweep-threads\n";
        return 2;
      }
      config.sweep_threads(static_cast<unsigned>(n));
    } else if (arg == "--batch-width") {
      if (!parse_unsigned(value(), &n) || n == 0) {
        std::cerr << "csr_serve: bad --batch-width\n";
        return 2;
      }
      config.batch_width(n);
    } else if (arg == "--no-coalesce") {
      config.coalesce(false);
    } else if (arg == "--cluster") {
      if (!parse_unsigned(value(), &n) || n == 0 || n > 64) {
        std::cerr << "csr_serve: bad --cluster\n";
        return 2;
      }
      cluster = static_cast<unsigned>(n);
    } else if (arg == "--port-file") {
      port_file = value();
    } else {
      std::cerr << "csr_serve: unknown option " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  if (cluster > 1) return serve_cluster(config, cluster, port_file);
  return serve(config, port_file, /*announce=*/true);
}
