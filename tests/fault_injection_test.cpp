// Fault injection for the native toolchain path (CSR_FAKE_CC /
// CompileOptions::fake_compiler): hung compilers must hit their subprocess
// deadline, transient failures must be retried with bounded backoff, and a
// cell whose toolchain never recovers must degrade to VM verification with
// the failure preserved — injected faults may cost a cell time, never abort
// a sweep. Also hammers the compile cache's per-key locking from many
// threads, the regression test for the lock-ordering discipline.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "driver/config.hpp"
#include "native/compile.hpp"
#include "native/engine.hpp"

namespace csr {
namespace {

/// Restores (or clears) an environment variable on scope exit so fault
/// injection cannot leak into other tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_value_ = false;
};

/// A private, empty compile-cache directory for the test's scope. The real
/// cache is content-addressed and persists across processes — exactly what
/// attempt-counting tests must NOT see, or a success cached by an earlier
/// run satisfies "attempt 1" instantly.
class ScopedCacheDir {
 public:
  explicit ScopedCacheDir(const char* name)
      : dir_(::testing::TempDir() + name), env_("CSR_NATIVE_CACHE_DIR", dir_.c_str()) {
    std::filesystem::remove_all(dir_);
  }
  ~ScopedCacheDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] const std::string& path() const { return dir_; }

 private:
  std::string dir_;
  ScopedEnv env_;
};

driver::SweepCell native_cell() {
  driver::SweepCell cell;
  cell.benchmark = "IIR Filter";
  cell.exec = driver::ExecEngine::kNative;
  cell.transform = driver::Transform::kRetimedCsr;
  cell.n = 23;
  return cell;
}

driver::RetryPolicy fast_retry(int attempts) {
  driver::RetryPolicy retry;
  retry.max_attempts = attempts;
  retry.backoff_base = 0.001;  // keep injected-failure tests fast
  retry.backoff_max = 0.002;
  return retry;
}

TEST(FakeCompiler, FailSpecAlwaysFailsWithDiagnostic) {
  native::CompileOptions options;
  options.fake_compiler = "fail";
  const native::CompileResult r =
      native::compile_shared_object("int csr_fake_fail_probe;", options);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.timed_out);
  EXPECT_NE(r.diagnostic.find("injected failure"), std::string::npos) << r.diagnostic;
}

TEST(FakeCompiler, UnknownSpecBehavesLikeFail) {
  native::CompileOptions options;
  options.fake_compiler = "explode-colorfully";
  EXPECT_FALSE(native::compile_shared_object("int csr_fake_unknown_probe;", options).ok);
}

TEST(FakeCompiler, HangSpecIsKilledAtTheDeadline) {
  native::CompileOptions options;
  options.fake_compiler = "hang:30";
  options.deadline_seconds = 0.4;
  const auto start = std::chrono::steady_clock::now();
  const native::CompileResult r =
      native::compile_shared_object("int csr_fake_hang_probe;", options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.timed_out);
  EXPECT_NE(r.diagnostic.find("timed out"), std::string::npos) << r.diagnostic;
  // Deadline enforcement, not the fake's 30 s sleep, ended the subprocess.
  EXPECT_LT(elapsed, 10.0);
}

TEST(FakeCompiler, OkAfterSucceedsOnTheNthAttempt) {
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  const ScopedCacheDir cache("csr_okafter_cache");
  native::reset_fake_cc_attempts();
  native::CompileOptions options;
  options.fake_compiler = "ok-after=3";
  const std::string source = "int csr_fake_okafter_probe;";
  const native::CompileResult a1 = native::compile_shared_object(source, options);
  EXPECT_FALSE(a1.ok);
  EXPECT_NE(a1.diagnostic.find("attempt 1"), std::string::npos) << a1.diagnostic;
  const native::CompileResult a2 = native::compile_shared_object(source, options);
  EXPECT_FALSE(a2.ok);
  EXPECT_NE(a2.diagnostic.find("attempt 2"), std::string::npos) << a2.diagnostic;
  const native::CompileResult a3 = native::compile_shared_object(source, options);
  EXPECT_TRUE(a3.ok) << a3.diagnostic;
  EXPECT_FALSE(a3.shared_object.empty());
}

TEST(FakeCompiler, AttemptCountersArePerCacheKey) {
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  const ScopedCacheDir cache("csr_perkey_cache");
  native::reset_fake_cc_attempts();
  native::CompileOptions options;
  options.fake_compiler = "ok-after=2";
  // Two distinct sources count attempts independently: each needs its own
  // second try.
  EXPECT_FALSE(native::compile_shared_object("int csr_per_key_a;", options).ok);
  EXPECT_FALSE(native::compile_shared_object("int csr_per_key_b;", options).ok);
  EXPECT_TRUE(native::compile_shared_object("int csr_per_key_a;", options).ok);
  EXPECT_TRUE(native::compile_shared_object("int csr_per_key_b;", options).ok);
}

TEST(FakeCompiler, EnvironmentVariableDrivesInjection) {
  ScopedEnv env("CSR_FAKE_CC", "fail");
  const native::CompileResult r =
      native::compile_shared_object("int csr_fake_env_probe;");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.diagnostic.find("injected failure"), std::string::npos);
}

TEST(SweepRetry, PersistentFailureRetriesThenFallsBackToVm) {
  ScopedEnv env("CSR_FAKE_CC", "fail");
  driver::SweepOptions options;
  options.retry = fast_retry(3);
  const driver::SweepResult r = driver::evaluate_cell(native_cell(), options);
  EXPECT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.retries, 2);  // 3 attempts = 2 retries
  EXPECT_TRUE(r.engine_fallback);
  EXPECT_NE(r.fallback_reason.find("injected failure"), std::string::npos)
      << r.fallback_reason;
  EXPECT_TRUE(r.verified);  // the VM carried the differential check
  EXPECT_TRUE(r.discipline_ok);
}

TEST(SweepRetry, TransientFailureRecoversWithinTheRetryBudget) {
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  const ScopedCacheDir cache("csr_transient_cache");
  native::reset_fake_cc_attempts();
  ScopedEnv env("CSR_FAKE_CC", "ok-after=2");
  driver::SweepOptions options;
  options.retry = fast_retry(3);
  const driver::SweepResult r = driver::evaluate_cell(native_cell(), options);
  EXPECT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.retries, 1);  // failed once, recovered on attempt 2
  EXPECT_FALSE(r.engine_fallback) << r.fallback_reason;
  EXPECT_TRUE(r.verified);  // verified natively this time
}

TEST(SweepRetry, HungCompilerHitsDeadlineAndNeverAbortsTheSweep) {
  ScopedEnv env("CSR_FAKE_CC", "hang:30");
  driver::SweepOptions options;
  options.retry = fast_retry(2);
  options.retry.compile_deadline = 0.3;
  const auto start = std::chrono::steady_clock::now();
  const driver::SweepResult r = driver::evaluate_cell(native_cell(), options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.retries, 1);
  EXPECT_TRUE(r.engine_fallback);
  EXPECT_NE(r.fallback_reason.find("timed out"), std::string::npos)
      << r.fallback_reason;
  EXPECT_TRUE(r.verified);
  EXPECT_LT(elapsed, 20.0);  // two deadlines + backoff, not two 30 s hangs
}

TEST(SweepRetry, WholeNativeSweepSurvivesInjectedFailures) {
  // End-to-end: a multi-cell sweep over the native axis with a failing
  // toolchain completes every cell (via fallback), aggregates its retries
  // and fallbacks, and stays feasible throughout.
  ScopedEnv env("CSR_FAKE_CC", "fail");
  const auto [results, stats] =
      driver::run_sweep(driver::SweepConfig()
                            .benchmarks({"IIR Filter"})
                            .trip_counts({23})
                            .exec_engines({driver::ExecEngine::kNative})
                            .transforms({driver::Transform::kOriginal,
                                         driver::Transform::kRetimedCsr})
                            .factors({})
                            .threads(2)
                            .retry(fast_retry(2)));
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.feasible) << r.error;
    EXPECT_TRUE(r.engine_fallback);
    EXPECT_TRUE(r.verified);
  }
  EXPECT_EQ(stats.fallbacks, 2u);
  EXPECT_EQ(stats.retries, 2u);  // one retry per cell
  EXPECT_EQ(stats.executed, 2u);
}

TEST(CompileCache, EightThreadsHammeringCollidingKeysStaysConsistent) {
  // Regression test for the per-key locking rework: eight threads compile a
  // small set of colliding sources concurrently; every call must succeed
  // with a consistent shared object per source, and the runtime
  // lock-ordering assertions must stay quiet throughout.
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  const std::vector<std::string> sources = {
      "int csr_hammer_a; int csr_hammer_a2;",
      "int csr_hammer_b;",
      "int csr_hammer_c; int csr_hammer_c2; int csr_hammer_c3;",
  };
  std::vector<std::vector<std::string>> seen(sources.size());
  std::mutex seen_mutex;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t which = static_cast<std::size_t>(t + round) % sources.size();
        const native::CompileResult r =
            native::compile_shared_object(sources[which]);
        if (!r.ok) {
          ++failures;
          continue;
        }
        const std::lock_guard<std::mutex> lock(seen_mutex);
        seen[which].push_back(r.shared_object);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    ASSERT_FALSE(seen[i].empty()) << i;
    for (const std::string& path : seen[i]) {
      EXPECT_EQ(path, seen[i].front()) << i;  // one object per source, ever
    }
  }
}

}  // namespace
}  // namespace csr
