// Tests for the code-size theory: the closed-form predictions against
// generated programs, the paper's Theorem 4.4/4.5 formulas, the ordering
// result S_{r,f} ≤ S_{f,r}, register-count theorems and the budget
// formulas of Section 4.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/unfolded.hpp"
#include "codegen/unfolded_retimed.hpp"
#include "codesize/model.hpp"
#include "retiming/opt.hpp"
#include "unfolding/unfold.hpp"

namespace csr {
namespace {

TEST(Model, OriginalSizeIsNodeCount) {
  EXPECT_EQ(original_size(benchmarks::elliptic_filter()), 34);
  EXPECT_EQ(original_size(benchmarks::figure4_example()), 3);
}

TEST(Model, RegistersRequiredIsDistinctValues) {
  EXPECT_EQ(registers_required(Retiming(std::vector<int>{3, 2, 2, 1, 0})), 4);
  EXPECT_EQ(registers_required(Retiming(std::vector<int>{0, 0})), 1);
}

TEST(Model, RegistersRequiredUnfoldedCountsOffsets) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const Unfolding u(g, 2);
  // Zero retiming: offsets are the copy indices {0, 1}.
  EXPECT_EQ(registers_required_unfolded(u, Retiming(u.graph().node_count())), 2);
  // Retimining one copy by 1 adds offset 0 + 2·1 = 2.
  Retiming r(u.graph().node_count());
  r.set(u.copy(1, 0), 1);  // legal: B copy 0 has delayed in-edges
  EXPECT_EQ(registers_required_unfolded(u, r), 3);
}

TEST(Model, PaperFormulas) {
  // Theorem 4.4 with L = 26, M' = 2, f = 3, n = 101:
  EXPECT_EQ(paper_unfolded_retimed_size(26, 2, 3, 101), 3 * 26 * 3 + 2 * 26);
  // Theorem 4.5 with the same parameters:
  EXPECT_EQ(paper_retimed_unfolded_size(26, 2, 3, 101), 5 * 26 + 2 * 26);
}

TEST(Model, OrderingTheoremPaperFormulas) {
  // S_{r,f} ≤ S_{f,r} for any L, M, f (with the same depth): (M+f) ≤ (M+1)f
  // whenever M, f ≥ 1.
  for (int m = 0; m <= 4; ++m) {
    for (int f = 1; f <= 5; ++f) {
      EXPECT_LE(paper_retimed_unfolded_size(10, m, f, 100),
                paper_unfolded_retimed_size(10, m, f, 100));
    }
  }
}

TEST(Model, OrderingHoldsOnBenchmarksWithMeasuredDepths) {
  // The real comparison of Section 4: retime-then-unfold (depth from the
  // original graph) versus unfold-then-retime (depth from the unfolded
  // graph), both at their minimum cycle periods.
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    for (const int f : {2, 3}) {
      const Unfolding u(g, f);
      const OptimalRetiming uopt = minimum_period_retiming(u.graph());
      const std::int64_t s_rf = predicted_retimed_unfolded_size(g, r, f, 101);
      const std::int64_t s_fr = predicted_unfolded_retimed_size(u, uopt.retiming, 101);
      EXPECT_LE(s_rf, s_fr) << info.name << " f=" << f;
    }
  }
}

TEST(Model, CsrAlwaysSmallerThanExpandedOnBenchmarks) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    ASSERT_GE(r.max_value(), 1) << info.name;  // there is something to remove
    EXPECT_LT(predicted_retimed_csr_size(g, r), predicted_retimed_size(g, r))
        << info.name;
    for (const int f : {2, 3}) {
      EXPECT_LT(predicted_retimed_unfolded_csr_size(g, r, f),
                predicted_retimed_unfolded_size(g, r, f, 101))
          << info.name;
    }
  }
}

TEST(Model, PredictionsMatchGeneratedPrograms) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const std::int64_t n = 101;
    EXPECT_EQ(retimed_program(g, r, n).code_size(), predicted_retimed_size(g, r));
    EXPECT_EQ(retimed_csr_program(g, r, n).code_size(),
              predicted_retimed_csr_size(g, r));
    for (const int f : {2, 3, 4}) {
      EXPECT_EQ(unfolded_program(g, f, n).code_size(), predicted_unfolded_size(g, f, n));
      EXPECT_EQ(unfolded_csr_program(g, f, n).code_size(),
                predicted_unfolded_csr_size(g, f));
      EXPECT_EQ(retimed_unfolded_program(g, r, f, n).code_size(),
                predicted_retimed_unfolded_size(g, r, f, n));
      EXPECT_EQ(retimed_unfolded_csr_program(g, r, f, n).code_size(),
                predicted_retimed_unfolded_csr_size(g, r, f));
      const Unfolding u(g, f);
      const OptimalRetiming uopt = minimum_period_retiming(u.graph());
      EXPECT_EQ(unfolded_retimed_program(u, uopt.retiming, n).code_size(),
                predicted_unfolded_retimed_size(u, uopt.retiming, n));
      EXPECT_EQ(unfolded_retimed_csr_program(u, uopt.retiming, n).code_size(),
                predicted_unfolded_retimed_csr_size(u, uopt.retiming));
    }
  }
}

TEST(Model, BudgetFormulas) {
  // L_req = 100, L = 10, M_r = 2 → max unfolding factor 8.
  EXPECT_EQ(max_unfolding_factor(100, 10, 2), 8);
  // L_req = 100, L = 10, f = 3 → max depth 7.
  EXPECT_EQ(max_retiming_depth(100, 10, 3), 7);
  // Infeasible budgets go non-positive.
  EXPECT_LE(max_unfolding_factor(10, 10, 2), 0);
}

TEST(Model, BudgetFormulasAreConsistentWithSizeModel) {
  // Using the paper's own size model S_{r,f} ≈ (M+f)·L, a factor chosen by
  // max_unfolding_factor never exceeds L_req (ignoring the remainder term).
  const std::int64_t l = 15;
  const std::int64_t l_req = 200;
  for (int depth = 0; depth <= 5; ++depth) {
    const std::int64_t f = max_unfolding_factor(l_req, l, depth);
    if (f >= 1) {
      EXPECT_LE((depth + f) * l, l_req);
    }
  }
}

TEST(Model, Table1Reproduction) {
  // The paper's Table 1 columns (Ret = L + |V|·M, CR = L + 2·|N_r|) for the
  // measured retimings of the reconstructed benchmarks. Elliptic is the row
  // where the paper's own numbers are inconsistent (see DESIGN.md); our
  // value follows its Table 2 depth.
  struct Row {
    const char* name;
    std::int64_t ret, cr, regs;
  };
  const Row rows[] = {
      {"IIR Filter", 16, 12, 2},           {"Differential Equation", 33, 17, 3},
      {"All-pole Filter", 60, 23, 4},      {"Elliptical Filter", 102, 40, 3},
      {"4-stage Lattice Filter", 78, 32, 3}, {"Volterra Filter", 54, 31, 2},
  };
  for (const Row& row : rows) {
    const auto& graphs = benchmarks::table_benchmarks();
    const auto it = std::find_if(graphs.begin(), graphs.end(), [&](const auto& b) {
      return b.name == std::string(row.name);
    });
    ASSERT_NE(it, graphs.end());
    const DataFlowGraph g = it->factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    EXPECT_EQ(predicted_retimed_size(g, r), row.ret) << row.name;
    EXPECT_EQ(predicted_retimed_csr_size(g, r), row.cr) << row.name;
    EXPECT_EQ(registers_required(r), row.regs) << row.name;
  }
}

TEST(Model, NoOverflowForDeepPipelinesAndLargeFactors) {
  // Regression: the size formulas mixed int depth/factor with int64 sizes.
  // With depth = factor = 2^30 the old `factor + depth` wrapped in 32-bit
  // arithmetic before being widened, yielding a negative "size".
  const DataFlowGraph g = benchmarks::figure4_example();  // L = 3
  const int big = 1 << 30;
  const std::int64_t n = std::int64_t{1} << 40;
  const Retiming deep(std::vector<int>{0, 0, big});

  // (n − depth) mod f = 0 here, so the size is L · (f + depth) = 3 · 2^31.
  EXPECT_EQ(predicted_retimed_unfolded_size(g, deep, big, n),
            3 * ((std::int64_t{1} << 31)));
  EXPECT_EQ(paper_retimed_unfolded_size(3, big, big, n),
            3 * (std::int64_t{1} << 31));
  // (M' + 1) · L · f: ≈ 3.5 · 10^18, far beyond 32-bit range but exact in 64.
  EXPECT_EQ(paper_unfolded_retimed_size(3, big, big, n),
            (std::int64_t{big} + 1) * 3 * big);
  // f · L + f · |N_r| + |N_r| with |N_r| = 2 distinct values.
  EXPECT_EQ(predicted_retimed_unfolded_csr_size(g, deep, big),
            std::int64_t{big} * 3 + std::int64_t{big} * 2 + 2);
  // (f + n mod f) · L with f = 2^30, n mod f = 0.
  EXPECT_EQ(predicted_unfolded_size(g, big, n), std::int64_t{big} * 3);
  EXPECT_EQ(predicted_unfolded_csr_size(g, big), std::int64_t{big} * 3 + big + 1);
}

}  // namespace
}  // namespace csr
