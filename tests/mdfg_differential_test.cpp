// The nested-family differential harness: the MD-retimed and CSR lowerings
// of every bundled 2-D benchmark must leave exactly the same observable
// array state as the naive (untransformed) nest, on the map-backed
// reference interpreter, the fast VM and the native compiled kernel alike
// (docs/ENGINES.md). On top of the per-program checks, the sweep level runs
// the full nested grid with verification on — every feasible cell verified,
// measured_size ≤ predicted_size — and must export byte-identical results
// at any batch width.

#include <gtest/gtest.h>

#include <algorithm>

#include "codegen/nested.hpp"
#include "codegen/statements.hpp"
#include "driver/config.hpp"
#include "driver/export.hpp"
#include "mdfg/builders.hpp"
#include "mdfg/graph.hpp"
#include "native/engine.hpp"
#include "retiming/md_retiming.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

struct NestedCase {
  std::string benchmark;
  std::int64_t rows;
  std::int64_t cols;
};

std::string case_name(const ::testing::TestParamInfo<NestedCase>& info) {
  return info.param.benchmark + "_r" + std::to_string(info.param.rows) + "_c" +
         std::to_string(info.param.cols);
}

std::vector<NestedCase> make_cases() {
  std::vector<NestedCase> cases;
  for (const auto& info : mdfg::md_benchmarks()) {
    // Inner trip counts at or beyond every engine's min_cols (the exact
    // lift on conv3x3 needs 19), plus a rows=1 degenerate nest.
    cases.push_back({info.name, 4, 24});
    cases.push_back({info.name, 7, 19});
    cases.push_back({info.name, 1, 32});
  }
  return cases;
}

class NestedDifferentialTest : public ::testing::TestWithParam<NestedCase> {
 protected:
  void SetUp() override {
    graph_ = mdfg::find_md_benchmark(GetParam().benchmark)->factory();
    rows_ = GetParam().rows;
    cols_ = GetParam().cols;
    n_ = rows_ * cols_;
    arrays_ = array_names(linearized(graph_, cols_));
    reference_ = run_program(nested_original_program(graph_, rows_, cols_));
  }

  void expect_matches_naive(const LoopProgram& p, const char* label) {
    // Map-backed reference interpreter and fast VM against the naive nest.
    for (const ExecMode mode : {ExecMode::kReference, ExecMode::kFast}) {
      const Machine m = run_program(p, mode);
      const auto diffs = diff_observable_state(reference_, m, arrays_, n_);
      EXPECT_TRUE(diffs.empty())
          << label << ": " << (diffs.empty() ? "" : diffs.front());
      const auto discipline = check_write_discipline(m, arrays_, n_);
      EXPECT_TRUE(discipline.empty())
          << label << ": " << (discipline.empty() ? "" : discipline.front());
    }
    if (native::native_available()) {
      const native::NativeOutcome out = native::run_native(p);
      ASSERT_TRUE(out.ok()) << label << ": " << out.diagnostic;
      EXPECT_TRUE(diff_observable_state(MachineView(reference_), out.result,
                                        arrays_, n_)
                      .empty())
          << label;
      EXPECT_TRUE(check_write_discipline(out.result, arrays_, n_).empty()) << label;
    }
  }

  MdDataFlowGraph graph_;
  std::vector<std::string> arrays_;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t n_ = 0;
  Machine reference_;
};

TEST_P(NestedDifferentialTest, RetimedNestMatchesNaive) {
  for (const bool exact : {false, true}) {
    const MdOptimalRetiming out =
        exact ? md_exact_optimal_retiming(graph_) : md_minimum_period_retiming(graph_);
    if (cols_ < out.min_cols || n_ <= out.retiming.col_retiming().max_value()) {
      continue;  // this shape cannot host the deeper lift
    }
    expect_matches_naive(nested_retimed_program(graph_, out.retiming, rows_, cols_),
                         exact ? "exact retimed" : "retimed");
    expect_matches_naive(
        nested_retimed_csr_program(graph_, out.retiming, rows_, cols_),
        exact ? "exact CSR" : "CSR");
  }
}

INSTANTIATE_TEST_SUITE_P(Family, NestedDifferentialTest,
                         ::testing::ValuesIn(make_cases()), case_name);

// Sweep-level: the full nested grid (both MD engines, VM and native
// execution, all nested transforms) verifies every feasible cell against
// the naive nest and never generates more code than the closed forms
// predict.
TEST(NestedSweepTest, FullGridVerifiesAndMeetsTheSizeModel) {
  std::vector<std::string> names;
  for (const auto& info : mdfg::md_benchmarks()) names.push_back(info.name);
  driver::SweepConfig config = driver::SweepConfig()
                                   .benchmarks(names)
                                   .shapes({{3, 24}, {5, 19}})
                                   .engines({driver::Engine::kOptRetiming,
                                             driver::Engine::kOptExact})
                                   .exec_engines({driver::ExecEngine::kVm,
                                                  driver::ExecEngine::kNative})
                                   .verify(true);
  const driver::SweepRun run = driver::run_sweep(config);
  ASSERT_FALSE(run.results.empty());
  std::size_t feasible = 0;
  for (const auto& r : run.results) {
    EXPECT_EQ(r.cell.rows * r.cell.cols, r.cell.n);
    if (!r.feasible) continue;
    ++feasible;
    EXPECT_TRUE(r.verified) << r.cell.benchmark << " " << r.error;
    EXPECT_TRUE(r.discipline_ok) << r.cell.benchmark;
    ASSERT_GE(r.measured_size, 0);
    EXPECT_LE(r.measured_size, r.predicted_size) << r.cell.benchmark;
  }
  // Every benchmark contributes feasible cells at these shapes.
  EXPECT_GE(feasible, 4u * 2u * 2u);
}

// Batch width must never change results: the same nested grid executed
// cell-by-cell and with four-lane batching exports byte-identically.
TEST(NestedSweepTest, BatchWidthInvariant) {
  std::vector<std::string> names;
  for (const auto& info : mdfg::md_benchmarks()) names.push_back(info.name);
  driver::SweepConfig config =
      driver::SweepConfig()
          .benchmarks(names)
          .shapes({{4, 24}})
          .exec_engines({driver::ExecEngine::kVm, driver::ExecEngine::kNative})
          .verify(true);
  const driver::SweepRun single = driver::run_sweep(driver::SweepConfig(config));
  const driver::SweepRun batched =
      driver::run_sweep(driver::SweepConfig(config).batch_width(4));
  EXPECT_EQ(driver::to_csv(single.results), driver::to_csv(batched.results));
  EXPECT_EQ(driver::to_json(single.results), driver::to_json(batched.results));
}

}  // namespace
}  // namespace csr
