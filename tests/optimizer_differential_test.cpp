// The differential harness around the fixpoint peephole pipeline: optimized
// programs must be semantically identical to their unoptimized forms across
// all three execution engines (map reference, VM fast path, native compiled
// kernel), and a real sweep must report a measured size that never exceeds
// the paper's closed-form prediction — strictly beating it where guards are
// provably redundant. CI runs this suite under the `optimizer` label, and
// again under ASan/UBSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "dfg/random.hpp"
#include "driver/config.hpp"
#include "driver/export.hpp"
#include "loopir/pipeline.hpp"
#include "native/engine.hpp"
#include "retiming/opt.hpp"
#include "support/rng.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

std::vector<std::string> table_benchmark_names() {
  std::vector<std::string> names;
  for (const auto& info : benchmarks::table_benchmarks()) {
    names.push_back(info.name);
  }
  return names;
}

/// Optimizes `p` and checks the result against the *unoptimized* program on
/// the map reference interpreter and the VM fast path (and, when a host
/// compiler exists, the native engine): byte-identical observable state and
/// the same executed-statement count between engines.
void expect_equivalent_everywhere(const LoopProgram& p,
                                  const std::vector<std::string>& arrays,
                                  std::int64_t n) {
  const PipelineResult result = optimize_pipeline(p);
  ASSERT_TRUE(result.converged);
  ASSERT_LE(result.size_after, result.size_before);

  const Machine expected = run_program(p);  // unoptimized, VM
  const Machine reference = run_program(result.program, ExecMode::kReference);
  const Machine vm = run_program(result.program, ExecMode::kFast);

  const MachineView expected_view(expected);
  const MachineView reference_view(reference);
  const MachineView vm_view(vm);
  const auto a = diff_observable_state(expected_view, reference_view, arrays, n);
  ASSERT_TRUE(a.empty()) << "unoptimized-vs-optimized(map): " << a[0];
  const auto b = diff_observable_state(expected_view, vm_view, arrays, n);
  ASSERT_TRUE(b.empty()) << "unoptimized-vs-optimized(vm): " << b[0];
  ASSERT_TRUE(check_write_discipline(vm, arrays, n).empty());

  if (native::native_available()) {
    const native::NativeOutcome out = native::run_native(result.program);
    ASSERT_TRUE(out.ok()) << out.diagnostic;
    const auto c = diff_observable_state(vm_view, out.result, arrays, n);
    ASSERT_TRUE(c.empty()) << "optimized vm-vs-native: " << c[0];
    ASSERT_EQ(out.result.executed_statements(), vm.executed_statements());
  }
}

TEST(OptimizerDifferential, OptimizedBenchmarkVariantsMatchAcrossEngines) {
  // Six benchmarks × the guarded codegen variants, each optimized and then
  // cross-checked unoptimized-vs-optimized × map/vm/native.
  for (const auto& info : benchmarks::all_graphs()) {
    const DataFlowGraph g = info.factory();
    const auto arrays = array_names(g);
    const Retiming r = minimum_period_retiming(g).retiming;
    const std::int64_t n = 13;
    std::vector<LoopProgram> programs;
    programs.push_back(unfolded_csr_program(g, 2, n));
    programs.push_back(unfolded_csr_program(g, 3, n));
    if (n > r.max_value()) {
      programs.push_back(retimed_csr_program(g, r, n));
      programs.push_back(retimed_unfolded_csr_program(g, r, 3, n));
    }
    for (const LoopProgram& p : programs) {
      SCOPED_TRACE(::testing::Message() << info.name << ": " << p.name);
      expect_equivalent_everywhere(p, arrays, n);
    }
  }
}

TEST(OptimizerDifferential, OptimizedRandomDfgsMatchAcrossEngines) {
  // The randomized leg. Native kernels are fresh compiles, so the trial
  // count stays small; the map/vm legs inside run for every trial.
  SplitMix64 rng(0x0D1FF7E57ull);
  RandomDfgOptions options;
  options.max_nodes = 8;
  for (int trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    const DataFlowGraph g = random_dfg(rng, options);
    const std::int64_t n = 11 + trial;
    expect_equivalent_everywhere(unfolded_csr_program(g, 2 + trial % 3, n),
                                 array_names(g), n);
  }
}

TEST(OptimizerDifferential, SweepMeasuredSizeNeverExceedsClosedForm) {
  // The acceptance criterion over a real sweep: all six benchmarks × every
  // transform × factors {2,3,4} on both software engines. Every cell's
  // measured size is at most the closed-form prediction, every cell still
  // verifies against the original loop (the sweep executes the *optimized*
  // program, so `verified` is itself a differential), and the unfolded-CSR
  // f=3 cells — whose first two guards are provably redundant at n=101 —
  // come in strictly below the model on every benchmark.
  driver::SweepGrid grid;  // default transforms: all nine
  const driver::SweepRun run =
      run_sweep(driver::SweepConfig()
                    .benchmarks(table_benchmark_names())
                    .exec_engines({driver::ExecEngine::kVm, driver::ExecEngine::kMap})
                    .transforms(grid.transforms)
                    .factors({2, 3, 4})
                    .trip_counts({101})
                    .threads(0));
  ASSERT_FALSE(run.results.empty());
  int strict_wins = 0;
  for (const driver::SweepResult& res : run.results) {
    SCOPED_TRACE(res.cell.benchmark + " transform=" +
                 std::string(to_string(res.cell.transform)) + " f=" +
                 std::to_string(res.cell.factor) + " exec=" +
                 std::string(to_string(res.cell.exec)));
    ASSERT_TRUE(res.feasible) << res.error;
    EXPECT_TRUE(res.verified);
    EXPECT_TRUE(res.discipline_ok);
    ASSERT_GE(res.measured_size, 0);
    EXPECT_LE(res.measured_size, res.code_size);
    if (res.predicted_size >= 0) {
      EXPECT_LE(res.measured_size, res.predicted_size);
    }
    if (res.cell.transform == driver::Transform::kUnfoldedCsr &&
        res.cell.factor == 3) {
      EXPECT_EQ(res.measured_size, res.predicted_size - 1);
      ++strict_wins;
    }
  }
  EXPECT_EQ(strict_wins, 6 * 2);  // six benchmarks × two exec engines
}

TEST(OptimizerDifferential, NativeSweepCellsCarryTheSameStrictWin) {
  // The strict win again, measured through the native C emitter: the same
  // unfolded-CSR f=3 cells compiled and executed as shared objects. Hosts
  // without a toolchain degrade to the VM (fallback preserved) — the
  // measured size and the verification bit must hold either way.
  const driver::SweepRun run =
      run_sweep(driver::SweepConfig()
                    .benchmarks(table_benchmark_names())
                    .exec_engines({driver::ExecEngine::kNative})
                    .transforms({driver::Transform::kUnfoldedCsr})
                    .factors({3})
                    .trip_counts({101})
                    .threads(0));
  ASSERT_EQ(run.results.size(), 6u);
  for (const driver::SweepResult& res : run.results) {
    SCOPED_TRACE(res.cell.benchmark);
    ASSERT_TRUE(res.feasible) << res.error;
    EXPECT_TRUE(res.verified);
    EXPECT_TRUE(res.discipline_ok);
    EXPECT_EQ(res.measured_size, res.predicted_size - 1);
  }
}

TEST(OptimizerDifferential, FixpointBoundHoldsOnEveryBenchmarkVariant) {
  // The iteration-bound acceptance clause, pinned under this label: every
  // benchmark × variant converges in at most three rounds (one or two that
  // change the program plus the clean round), far inside the default bound.
  for (const auto& info : benchmarks::all_graphs()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    for (const std::int64_t n : {12, 101}) {
      std::vector<LoopProgram> programs;
      for (const int f : {2, 3, 4}) {
        programs.push_back(unfolded_csr_program(g, f, n));
        if (n > r.max_value()) {
          programs.push_back(retimed_unfolded_csr_program(g, r, f, n));
        }
      }
      if (n > r.max_value()) programs.push_back(retimed_csr_program(g, r, n));
      for (const LoopProgram& p : programs) {
        SCOPED_TRACE(::testing::Message() << info.name << " n=" << n << ": "
                                          << p.name);
        const PipelineResult result = optimize_pipeline(p);
        EXPECT_TRUE(result.converged);
        EXPECT_LE(result.iterations, 3);
        EXPECT_LE(result.iterations, PipelineOptions{}.max_iterations);
      }
    }
  }
}

TEST(OptimizerDifferential, MeasuredSizeRoundTripsThroughJournalAndExports) {
  const driver::SweepRun run =
      run_sweep(driver::SweepConfig()
                    .benchmarks({table_benchmark_names().front()})
                    .transforms({driver::Transform::kUnfoldedCsr})
                    .factors({3})
                    .trip_counts({101}));
  ASSERT_EQ(run.results.size(), 1u);
  const driver::SweepResult& res = run.results.front();
  ASSERT_TRUE(res.feasible) << res.error;
  ASSERT_GT(res.measured_size, 0);
  EXPECT_EQ(res.measured_size, res.predicted_size - 1);

  // Journal payload codec round-trips the new field.
  driver::SweepResult replayed;
  ASSERT_TRUE(driver::from_journal_payload(driver::to_journal_payload(res),
                                           res.cell, replayed));
  EXPECT_EQ(replayed.measured_size, res.measured_size);

  // Exports: CSV appends the column after optimality_gap, JSON keys it.
  const std::string csv = driver::to_csv(run.results);
  EXPECT_NE(csv.find("measured_size"), std::string::npos);
  EXPECT_NE(csv.find("," + std::to_string(res.measured_size) + ",1,-,-\n"),
            std::string::npos);
  const std::string json = driver::to_json(run.results);
  EXPECT_NE(json.find("\"measured_size\": " + std::to_string(res.measured_size)),
            std::string::npos);

  // Cells where no codegen ran export the -1 sentinel as "-" in CSV.
  driver::SweepResult missing;
  missing.cell = res.cell;
  missing.feasible = true;
  missing.evaluated = true;
  EXPECT_EQ(missing.measured_size, -1);
  EXPECT_NE(driver::to_csv({missing}).find(",-,1,-,-\n"), std::string::npos);
  EXPECT_NE(driver::to_json({missing}).find("\"measured_size\": -1"),
            std::string::npos);
}

}  // namespace
}  // namespace csr
