// Conformance tests for the epoll reactor (src/serve/server.cpp) beyond the
// basic routing suite: keep-alive and pipelining discipline (in-order
// responses across compute/inline boundaries, requests arriving in
// interleaved partial reads, pipelined requests split across epoll event
// batches), graceful drain of idle keep-alive connections, the typed error
// envelope on every non-200, and the /v1/version build-info surface.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "driver/cell_exec.hpp"
#include "serve/config.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace csr::serve {
namespace {

/// A minimal blocking HTTP/1.1 client for loopback tests.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_raw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, 0);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool request(const std::string& method, const std::string& target,
               const std::string& body = "",
               const std::string& extra_headers = "") {
    return send_raw(wire(method, target, body, extra_headers));
  }

  static std::string wire(const std::string& method, const std::string& target,
                          const std::string& body = "",
                          const std::string& extra_headers = "") {
    std::string out = method + " " + target + " HTTP/1.1\r\nHost: t\r\n";
    out += extra_headers;
    if (!body.empty()) {
      out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    out += "\r\n" + body;
    return out;
  }

  /// Reads one full response. Returns the status code, or -1 on EOF/parse
  /// trouble. Headers and body land in the accessors.
  int read_response() {
    char chunk[64 * 1024];
    std::size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return -1;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    headers_ = buffer_.substr(0, header_end);
    std::string lower = headers_;
    for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    const std::size_t cl = lower.find("content-length:");
    if (cl == std::string::npos) return -1;
    const std::size_t length =
        std::strtoull(headers_.c_str() + cl + 15, nullptr, 10);
    const std::size_t total = header_end + 4 + length;
    while (buffer_.size() < total) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return -1;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    body_ = buffer_.substr(header_end + 4, length);
    buffer_.erase(0, total);
    return std::atoi(headers_.c_str() + 9);
  }

  [[nodiscard]] const std::string& headers() const { return headers_; }
  [[nodiscard]] const std::string& body() const { return body_; }

 private:
  int fd_ = -1;
  std::string buffer_;
  std::string headers_;
  std::string body_;
};

constexpr const char* kSmallQuery =
    R"({"benchmarks":["IIR Filter"],"transforms":["retimed_csr"]})";

ServerConfig quick_config() {
  ServerConfig config;
  config.port(0)  // ephemeral: tests must never collide on a fixed port
      .event_threads(2)
      .compute_threads(2)
      .poll_interval_ms(20);  // keep drain/stop latencies test-sized
  return config;
}

/// The envelope contract: every non-200 body is
/// {"error": {"code": ..., "message": ...}}.
void expect_envelope(const std::string& body, const std::string& code) {
  EXPECT_NE(body.find("{\"error\": {\"code\": \"" + code + "\""),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"message\": \""), std::string::npos) << body;
}

// --- keep-alive + pipelining -------------------------------------------------

TEST(Reactor, InterleavedPartialReadsAssembleIndependently) {
  // Two connections pinned to one event loop, each dribbling its request in
  // fragments — including splits inside the request line and inside the
  // body. The per-connection parsers must assemble both without cross-talk.
  ServerConfig config = quick_config();
  config.event_threads(1);
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TestClient a(server.port());
  TestClient b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  const std::string wire_a =
      TestClient::wire("POST", "/v1/sweep", kSmallQuery);
  const std::string wire_b = TestClient::wire("GET", "/v1/benchmarks");

  // Interleave fragments: A's request line is cut mid-token, B's whole
  // request lands between A's fragments, then A's body arrives in two
  // pieces.
  ASSERT_TRUE(a.send_raw(wire_a.substr(0, 9)));  // "POST /v1/"
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(b.send_raw(wire_b.substr(0, 12)));
  ASSERT_TRUE(a.send_raw(wire_a.substr(9, 40)));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(b.send_raw(wire_b.substr(12)));
  EXPECT_EQ(b.read_response(), 200);  // B completes while A is still partial
  EXPECT_NE(b.body().find("IIR Filter"), std::string::npos);
  ASSERT_TRUE(a.send_raw(wire_a.substr(49)));
  EXPECT_EQ(a.read_response(), 200);
  EXPECT_NE(a.headers().find("X-Csr-Cache:"), std::string::npos);

  server.stop();
}

TEST(Reactor, PipelinedResponsesStayInOrderAcrossComputeBoundary) {
  // Three pipelined requests where the first crosses into the compute pool
  // (cache miss, held open by the hook) and the second is answered inline on
  // the event thread. The inline answer must *not* overtake the computed
  // one: responses flush strictly in request order. The third request rides
  // a later epoll batch (sent after a pause) and still sequences last.
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  ServerConfig config = quick_config();
  config.compute_hook([&] {
    entered.store(true);
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw(TestClient::wire("POST", "/v1/sweep", kSmallQuery) +
                              TestClient::wire("GET", "/healthz")));
  for (int i = 0; i < 2000 && !entered.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(entered.load());
  // Batch boundary: the sweep is mid-compute when the third request arrives.
  ASSERT_TRUE(client.request("GET", "/v1/version"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  release.store(true);

  EXPECT_EQ(client.read_response(), 200);  // the sweep, first in, first out
  EXPECT_NE(client.headers().find("X-Csr-Cache: miss"), std::string::npos);
  EXPECT_EQ(client.read_response(), 200);
  EXPECT_EQ(client.body(), "ok\n");  // healthz waited its turn
  EXPECT_EQ(client.read_response(), 200);
  EXPECT_NE(client.body().find("journal_payload_version"), std::string::npos);
  server.stop();
}

TEST(Reactor, KeepAliveConnectionServesManyRequests) {
  ServerConfig config = quick_config();
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(client.request("GET", "/healthz"));
    ASSERT_EQ(client.read_response(), 200) << "request " << i;
    EXPECT_NE(client.headers().find("Connection: keep-alive"), std::string::npos);
  }
  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_GE(server.requests_served(), 32u);
  server.stop();
}

// --- graceful drain ----------------------------------------------------------

TEST(Reactor, DrainReapsIdleKeepAliveConnections) {
  ServerConfig config = quick_config();
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // An idle keep-alive connection: one completed request, then parked.
  TestClient idle(server.port());
  ASSERT_TRUE(idle.connected());
  ASSERT_TRUE(idle.request("GET", "/healthz"));
  ASSERT_EQ(idle.read_response(), 200);

  server.request_drain();
  server.wait_until_drained();  // must not block: drain already requested

  // The parked connection is closed by the server, not left to time out.
  EXPECT_EQ(idle.read_response(), -1);

  // New arrivals during drain get an immediate 503 draining envelope.
  TestClient late(server.port());
  ASSERT_TRUE(late.connected());
  EXPECT_EQ(late.read_response(), 503);
  expect_envelope(late.body(), "draining");
  EXPECT_NE(late.headers().find("Retry-After:"), std::string::npos);

  server.stop();
}

// --- error envelope + version surface ----------------------------------------

TEST(Reactor, EveryRejectionCarriesTheTypedEnvelope) {
  ServerConfig config = quick_config();
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.request("GET", "/no/such/endpoint"));
  EXPECT_EQ(client.read_response(), 404);
  EXPECT_NE(client.headers().find("application/json"), std::string::npos);
  expect_envelope(client.body(), "not_found");

  ASSERT_TRUE(client.request("GET", "/v1/sweep"));
  EXPECT_EQ(client.read_response(), 405);
  EXPECT_NE(client.headers().find("Allow: POST"), std::string::npos);
  expect_envelope(client.body(), "method_not_allowed");

  ASSERT_TRUE(client.request("POST", "/v1/sweep", "{malformed"));
  EXPECT_EQ(client.read_response(), 400);
  expect_envelope(client.body(), "bad_request");

  ASSERT_TRUE(client.request("POST", "/v1/sweep",
                             R"({"benchmarks":["no such graph"]})"));
  EXPECT_EQ(client.read_response(), 422);
  expect_envelope(client.body(), "invalid_query");

  server.stop();
}

TEST(Reactor, HeaderDeadlineExpiresAs504Envelope) {
  ServerConfig config = quick_config();
  config.compute_hook(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(30)); });
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.request("POST", "/v1/sweep", kSmallQuery,
                             "X-Csr-Deadline-Ms: 5\r\n"));
  EXPECT_EQ(client.read_response(), 504);
  expect_envelope(client.body(), "deadline_expired");
  EXPECT_EQ(service.sweeps_executed(), 0u);
  server.stop();
}

TEST(Reactor, VersionAdvertisesPayloadVersionColumnsAndBatchPolicy) {
  ServerConfig config = quick_config();
  config.batch_width(8).coalesce(true);
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.request("GET", "/v1/version"));
  EXPECT_EQ(client.read_response(), 200);
  const std::string& body = client.body();
  EXPECT_NE(body.find("\"journal_payload_version\": \"" +
                      std::string(driver::journal_payload_version()) + "\""),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"columns\""), std::string::npos);
  EXPECT_NE(body.find("\"measured_size\""), std::string::npos);
  EXPECT_NE(body.find("\"batch\": {\"width\": 8, \"coalesce\": true}"),
            std::string::npos)
      << body;
  server.stop();
}

}  // namespace
}  // namespace csr::serve
