// The paper's Section 4 theorems, one named test each. The paper omits its
// proofs ("due to the limited space"); these tests are the mechanized
// counterpart — every claim is checked by executing generated programs in
// the VM or by measuring generated code, across all benchmark graphs.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "dfg/algorithms.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded_retimed.hpp"
#include "codesize/model.hpp"
#include "retiming/opt.hpp"
#include "unfolding/unfold.hpp"
#include "vm/equivalence.hpp"
#include "vm/trace.hpp"

namespace csr {
namespace {

constexpr std::int64_t kN = 23;

/// Theorem 4.1: the prologue can be replaced by conditionally executing the
/// loop body for M_r trips, node v executing r(v) times starting from trip
/// M_r − r(v) + 1.
TEST(Theorem41, PrologueReplacedByConditionalExecution) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const int depth = r.max_value();
    const LoopProgram csr = retimed_csr_program(g, r, kN);
    const auto trace = trace_program(csr);

    // The first M_r loop trips are the conditional prologue. Count per-node
    // enabled statements there and check the start trip.
    std::map<std::string, int> executions;
    std::map<std::string, std::int64_t> first_trip;
    int trip_index = 0;
    for (const TripTrace& trip : trace) {
      if (trip.enabled.empty() && trip.disabled.empty()) continue;  // setups
      ++trip_index;
      if (trip_index > depth) break;
      for (const std::string& cell : trip.enabled) {
        const std::string array = cell.substr(0, cell.find('['));
        ++executions[array];
        first_trip.try_emplace(array, trip_index);
      }
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const std::string& name = g.node(v).name;
      EXPECT_EQ(executions[name], r[v]) << info.name << ' ' << name;
      if (r[v] > 0) {
        EXPECT_EQ(first_trip[name], depth - r[v] + 1) << info.name << ' ' << name;
      }
    }
  }
}

/// Theorem 4.2: the epilogue is the mirror image — node v executes
/// M_r − r(v) times in the last M_r trips.
TEST(Theorem42, EpilogueReplacedByConditionalExecution) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const int depth = r.max_value();
    const LoopProgram csr = retimed_csr_program(g, r, kN);
    const auto trace = trace_program(csr);

    std::vector<const TripTrace*> loop_trips;
    for (const TripTrace& trip : trace) {
      if (!trip.enabled.empty() || !trip.disabled.empty()) loop_trips.push_back(&trip);
    }
    ASSERT_EQ(static_cast<std::int64_t>(loop_trips.size()), kN + depth) << info.name;

    std::map<std::string, int> executions;
    for (std::size_t k = loop_trips.size() - static_cast<std::size_t>(depth);
         k < loop_trips.size(); ++k) {
      for (const std::string& cell : loop_trips[k]->enabled) {
        ++executions[cell.substr(0, cell.find('['))];
      }
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(executions[g.node(v).name], depth - r[v])
          << info.name << ' ' << g.node(v).name;
    }
  }
}

/// Theorem 4.3: |N_r| conditional registers remove the prologue and
/// epilogue completely, and the resulting code is only the loop body plus
/// the register overhead — the optimal size.
TEST(Theorem43, TotalCodeReductionForRetimedLoop) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const LoopProgram csr = retimed_csr_program(g, r, kN);
    EXPECT_EQ(static_cast<std::int64_t>(csr.conditional_registers().size()),
              registers_required(r))
        << info.name;
    EXPECT_EQ(csr.code_size(), original_size(g) + 2 * registers_required(r))
        << info.name;
    // Correctness of the reduced code.
    EXPECT_TRUE(compare_programs(original_program(g, kN), csr, array_names(g)).empty())
        << info.name;
  }
}

/// Theorem 4.4: the unfolded-retimed code size is (M'_r + 1)·L·f + Q_f.
TEST(Theorem44, UnfoldedRetimedSizeFormula) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    for (const int f : {2, 3}) {
      const Unfolding u(g, f);
      const OptimalRetiming uopt = minimum_period_retiming(u.graph());
      if (kN / f <= uopt.retiming.max_value()) continue;
      const LoopProgram p = unfolded_retimed_program(u, uopt.retiming, kN);
      EXPECT_EQ(p.code_size(),
                paper_unfolded_retimed_size(original_size(g),
                                            uopt.retiming.max_value(), f, kN))
          << info.name << " f=" << f;
    }
  }
}

/// Theorem 4.5: folding the unfolded retiming (r_f(u) = Σ r(u_i)) onto the
/// original graph and unfolding reaches the same cycle period, and
/// S_{r,f} ≤ S_{f,r}.
TEST(Theorem45, RetimeFirstNeverLarger) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    for (const int f : {2, 3}) {
      const Unfolding u(g, f);
      const OptimalRetiming uopt = minimum_period_retiming(u.graph());
      const Retiming folded = u.fold_retiming(uopt.retiming).normalized();
      ASSERT_TRUE(is_legal_retiming(g, folded)) << info.name;
      EXPECT_LE(cycle_period(unfold(apply_retiming(g, folded), f)), uopt.period)
          << info.name << " f=" << f;
      if (kN > folded.max_value() && kN / f > uopt.retiming.max_value()) {
        const std::int64_t s_rf =
            retimed_unfolded_program(g, folded, f, kN).code_size();
        const std::int64_t s_fr =
            unfolded_retimed_program(u, uopt.retiming, kN).code_size();
        EXPECT_LE(s_rf, s_fr) << info.name << " f=" << f;
      }
    }
  }
}

/// Theorem 4.6: the retimed-unfolded CSR loop hides the prologue in
/// ⌈M_r/f⌉ unfolded trips, with Q_head = (f − M_r mod f) mod f leading
/// dummy slots, and node v starts after M_r − r(v) + Q_head slots.
TEST(Theorem46, PrologueHiddenInUnfoldedTrips) {
  const DataFlowGraph g = benchmarks::allpole_filter();  // M_r = 3
  const Retiming r = minimum_period_retiming(g).retiming;
  const int depth = r.max_value();
  for (const int f : {2, 3, 4}) {
    const int q_head = (f - depth % f) % f;
    const LoopProgram csr = retimed_unfolded_csr_program(g, r, f, kN);
    // Loop starts at 1 − M_r − Q_head, so the fill occupies
    // (M_r + Q_head)/f = ⌈M_r/f⌉ whole trips.
    const LoopSegment& loop = csr.segments.back();
    EXPECT_EQ(loop.begin, 1 - depth - q_head) << "f=" << f;
    EXPECT_EQ((depth + q_head) % f, 0) << "f=" << f;
    EXPECT_EQ((depth + q_head) / f, (depth + f - 1) / f) << "f=" << f;
    // And the program is correct.
    EXPECT_TRUE(compare_programs(original_program(g, kN), csr, array_names(g)).empty())
        << "f=" << f;
  }
}

/// Theorem 4.7: the retimed-unfolded CSR form needs exactly as many
/// conditional registers as the retimed loop alone, for every factor, and
/// removes prologue, epilogue and remainder completely.
TEST(Theorem47, RegisterCountInvariantUnderUnfolding) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const std::size_t base = retimed_csr_program(g, r, kN).conditional_registers().size();
    for (const int f : {2, 3, 4, 5}) {
      const LoopProgram csr = retimed_unfolded_csr_program(g, r, f, kN);
      EXPECT_EQ(csr.conditional_registers().size(), base) << info.name << " f=" << f;
      EXPECT_EQ(csr.code_size(),
                f * original_size(g) + (f + 1) * static_cast<std::int64_t>(base))
          << info.name << " f=" << f;
      EXPECT_TRUE(compare_programs(original_program(g, kN), csr, array_names(g)).empty())
          << info.name << " f=" << f;
    }
  }
}

/// Section 4's budget formulas: M_f = ⌊L_req/L⌋ − M_r and the dual.
TEST(Section4, BudgetFormulasBoundTheCsrSize) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const std::int64_t l = original_size(g);
    const std::int64_t l_req = 6 * l;
    const std::int64_t max_f = max_unfolding_factor(l_req, l, r.max_value());
    ASSERT_GE(max_f, 1) << info.name;
    // The expanded retimed-unfolded body at that factor fits the budget
    // under the paper's own (M + f)·L accounting.
    EXPECT_LE((r.max_value() + max_f) * l, l_req) << info.name;
    EXPECT_EQ(max_retiming_depth(l_req, l, static_cast<int>(max_f)), r.max_value())
        << info.name;
  }
}

}  // namespace
}  // namespace csr
