// The work-stealing scheduler (driver/scheduler.hpp): every index executes
// exactly once, for any thread count and victim permutation; the shared cell
// budget bounds execution; exceptions propagate after the pool drains.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "driver/scheduler.hpp"

namespace csr::driver {
namespace {

TEST(WorkSteal, EveryIndexRunsExactlyOnce) {
  for (const unsigned threads : {0u, 1u, 2u, 3u, 8u, 16u}) {
    for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                    std::size_t{7}, std::size_t{100}}) {
      std::vector<std::atomic<int>> hits(count);
      StealOptions options;
      options.threads = threads;
      const StealStats stats = work_steal_for(
          count, options,
          [&](std::size_t i, const TaskStats&) { hits[i].fetch_add(1); });
      EXPECT_EQ(stats.executed, count) << threads << '/' << count;
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << threads << '/' << count << '@' << i;
      }
    }
  }
}

TEST(WorkSteal, MoreThreadsThanTasksStillRunsEverything) {
  std::atomic<int> runs{0};
  StealOptions options;
  options.threads = 16;
  const StealStats stats =
      work_steal_for(3, options, [&](std::size_t, const TaskStats&) { ++runs; });
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(runs.load(), 3);
}

TEST(WorkSteal, BudgetBoundsExecutionExactly) {
  for (const unsigned threads : {1u, 4u}) {
    std::atomic<int> runs{0};
    StealOptions options;
    options.threads = threads;
    options.budget = 10;
    const StealStats stats = work_steal_for(
        100, options, [&](std::size_t, const TaskStats&) { ++runs; });
    EXPECT_EQ(stats.executed, 10u) << threads;
    EXPECT_EQ(runs.load(), 10) << threads;
  }
}

TEST(WorkSteal, BudgetLargerThanCountIsNoBound) {
  std::atomic<int> runs{0};
  StealOptions options;
  options.threads = 4;
  options.budget = 1000;
  const StealStats stats =
      work_steal_for(20, options, [&](std::size_t, const TaskStats&) { ++runs; });
  EXPECT_EQ(stats.executed, 20u);
  EXPECT_EQ(runs.load(), 20);
}

TEST(WorkSteal, SkewedTasksTriggerStealing) {
  // One block of slow tasks at the front of the index space: the owner of
  // that block is busy while its siblings drain their own deques and then
  // steal. With enough skew, at least one steal must happen.
  std::atomic<int> runs{0};
  StealOptions options;
  options.threads = 4;
  options.seed = 42;
  const StealStats stats = work_steal_for(64, options, [&](std::size_t i,
                                                           const TaskStats&) {
    if (i < 16) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ++runs;
  });
  EXPECT_EQ(stats.executed, 64u);
  EXPECT_EQ(runs.load(), 64);
  EXPECT_GT(stats.steal_ops, 0u);
  EXPECT_GE(stats.tasks_stolen, stats.steal_ops);  // steal-half moves >= 1
}

TEST(WorkSteal, TaskStatsIdentifyTheExecutingWorker) {
  const unsigned threads = 3;
  std::vector<unsigned> worker_of(30, 999);
  StealOptions options;
  options.threads = threads;
  work_steal_for(30, options, [&](std::size_t i, const TaskStats& stats) {
    worker_of[i] = stats.worker;
  });
  for (const unsigned w : worker_of) EXPECT_LT(w, threads);
}

TEST(WorkSteal, FirstExceptionPropagatesAfterDraining) {
  std::atomic<int> runs{0};
  StealOptions options;
  options.threads = 4;
  EXPECT_THROW(
      work_steal_for(50, options,
                     [&](std::size_t i, const TaskStats&) {
                       ++runs;
                       if (i == 25) throw std::runtime_error("task 25 failed");
                     }),
      std::runtime_error);
  // The pool joined before rethrowing: no task can still be running, and
  // the ones that ran before/alongside the failure were counted.
  EXPECT_GT(runs.load(), 0);
}

TEST(WorkSteal, SerialPathHonorsBudgetAndOrder) {
  std::vector<std::size_t> order;
  StealOptions options;
  options.threads = 1;
  options.budget = 5;
  const StealStats stats = work_steal_for(
      10, options,
      [&](std::size_t i, const TaskStats& task) {
        order.push_back(i);
        EXPECT_EQ(task.worker, 0u);
        EXPECT_FALSE(task.stolen);
      });
  EXPECT_EQ(stats.executed, 5u);
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(stats.steal_ops, 0u);
}

}  // namespace
}  // namespace csr::driver
