// Golden-file snapshots of the fixpoint peephole pipeline: for each paper
// benchmark the pass-by-pass IR dumps (loopir/printer `to_source` after
// every pass that changed the program) are compared byte-for-byte against
// tests/golden/*.ir. The snapshots tell the optimization story end to end —
// which guards the window pass drops, which decrements coalesce, what dce
// retires — so any intentional pass change shows up as a readable diff.
//
// To update the snapshots after an intentional change, run:
//
//     CSR_UPDATE_GOLDEN=1 build/tests/golden_optimizer_test
//
// then review `git diff tests/golden/` before committing.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/unfolded.hpp"
#include "loopir/pipeline.hpp"

namespace csr {
namespace {

struct GoldenCase {
  const char* file;  ///< file name under tests/golden/
  DataFlowGraph (*factory)();
  int factor;
  std::int64_t n;
};

// All snapshots are unfolded-CSR forms — the shape where every pass fires.
// f | n (the ×3, n=12 cases): every guard is always-enabled, so the window
// pass strips them all, condense merges the three decrements and dce retires
// the register entirely. The ×3, n=101 case is the measured-beats-predicted
// witness: two guards drop, one decrement pair coalesces, the third guard
// (and with it the register) must stay.
constexpr GoldenCase kCases[] = {
    {"iir_unfolded_csr_passes.ir", benchmarks::iir_filter, 3, 12},
    {"diffeq_unfolded_csr_passes.ir", benchmarks::differential_equation_solver, 3,
     12},
    {"allpole_unfolded_csr_passes.ir", benchmarks::allpole_filter, 3, 12},
    {"elliptic_unfolded_csr_passes.ir", benchmarks::elliptic_filter, 3, 12},
    {"lattice_unfolded_csr_passes.ir", benchmarks::lattice_filter, 3, 12},
    {"volterra_unfolded_csr_passes.ir", benchmarks::volterra_filter, 3, 12},
    {"iir_unfolded_csr_n101_passes.ir", benchmarks::iir_filter, 3, 101},
};

std::string render(const GoldenCase& c) {
  const LoopProgram program = unfolded_csr_program(c.factory(), c.factor, c.n);
  PipelineOptions options;
  options.capture_snapshots = true;
  const PipelineResult result = optimize_pipeline(program, options);

  std::ostringstream out;
  for (const PipelineSnapshot& snapshot : result.snapshots) {
    out << "== " << snapshot.label << " ==\n" << snapshot.ir << '\n';
  }
  out << "== summary ==\n"
      << "size " << result.size_before << " -> " << result.size_after
      << ", converged in " << result.iterations << " iterations\n"
      << "guards_dropped " << result.totals.guards_dropped
      << ", statements_removed " << result.totals.statements_removed
      << ", register_ops_removed " << result.totals.register_ops_removed
      << ", decrements_coalesced " << result.totals.decrements_coalesced
      << ", setups_folded " << result.totals.setups_folded
      << ", segments_removed " << result.totals.segments_removed << '\n';
  return out.str();
}

std::filesystem::path golden_path(const GoldenCase& c) {
  return std::filesystem::path(CSR_GOLDEN_DIR) / c.file;
}

bool update_mode() {
  const char* flag = std::getenv("CSR_UPDATE_GOLDEN");
  return flag != nullptr && *flag != '\0' && std::string(flag) != "0";
}

std::string golden_case_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  std::string name = info.param.file;
  name.resize(name.size() - 3);  // drop ".ir"
  return name;
}

class GoldenOptimizerTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenOptimizerTest, MatchesSnapshot) {
  const GoldenCase& c = GetParam();
  const std::string actual = render(c);
  const std::filesystem::path path = golden_path(c);

  if (update_mode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "updated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << path << " missing — regenerate with CSR_UPDATE_GOLDEN=1 "
                  << "build/tests/golden_optimizer_test";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "pass-by-pass dump drifted from " << path
      << "\nIf the change is intentional: CSR_UPDATE_GOLDEN=1 "
      << "build/tests/golden_optimizer_test, then review `git diff tests/golden/`.";
}

INSTANTIATE_TEST_SUITE_P(Snapshots, GoldenOptimizerTest, ::testing::ValuesIn(kCases),
                         golden_case_name);

// The dumps must be deterministic: optimizing twice from scratch yields
// byte-identical snapshots (no iteration-order or address leakage).
TEST(GoldenOptimizer, DumpsAreDeterministic) {
  for (const GoldenCase& c : kCases) {
    EXPECT_EQ(render(c), render(c)) << c.file;
  }
}

}  // namespace
}  // namespace csr
