// Crash recovery of a journaled sweep. Two layers:
//
//   * a deterministic variant driven by the cell budget — a "crash" is just
//     a run that stops after k cells, and resuming must execute exactly the
//     delta (and, once complete, exactly zero cells);
//   * a genuine kill — a forked child sweeps slice by slice until SIGKILLed
//     mid-run, and the parent resumes from whatever the journal captured
//     (including a possibly torn final record).
//
// In every case the final exports must be byte-identical to a clean,
// uncrashed, unjournaled sweep of the same grid.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "driver/config.hpp"
#include "driver/export.hpp"
#include "support/journal.hpp"

namespace csr {
namespace {

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {
    std::remove(path_.c_str());
  }
  ~ScopedFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

driver::SweepConfig recovery_config() {
  return driver::SweepConfig()
      .benchmarks({"IIR Filter", "All-pole Filter"})
      .trip_counts({23})
      .factors({2, 3});
}

TEST(CrashRecovery, BudgetedRunsResumeWithExactDeltas) {
  const driver::SweepConfig base = recovery_config();
  const std::size_t total = base.cells().size();
  ASSERT_GE(total, 6u);
  const ScopedFile journal(::testing::TempDir() + "csr_crash_budget.tsv");

  // Clean reference: no journal, no budget, no crash.
  const auto reference = driver::run_sweep(driver::SweepConfig(base).threads(2));
  const std::string ref_csv = driver::to_csv(reference.results);
  const std::string ref_json = driver::to_json(reference.results);

  const driver::SweepConfig journaled =
      driver::SweepConfig(base).threads(2).journal(journal.path());

  // Run 1 "crashes" after a third of the grid.
  const auto first =
      driver::run_sweep(driver::SweepConfig(journaled).cell_budget(total / 3));
  EXPECT_EQ(first.stats.executed, total / 3);
  EXPECT_EQ(first.stats.budget_expired, total - total / 3);
  EXPECT_EQ(first.stats.cache_hits, 0u);
  std::size_t unevaluated = 0;
  for (const auto& r : first.results) unevaluated += r.evaluated ? 0 : 1;
  EXPECT_EQ(unevaluated, first.stats.budget_expired);

  // Run 2 resumes: replays the journaled third, executes only the delta.
  const auto resumed = driver::run_sweep(journaled);
  EXPECT_EQ(resumed.stats.cache_hits, total / 3);
  EXPECT_EQ(resumed.stats.executed, total - total / 3);
  EXPECT_EQ(driver::to_csv(resumed.results), ref_csv);
  EXPECT_EQ(driver::to_json(resumed.results), ref_json);

  // Run 3: the journal is complete — zero cells re-execute.
  const auto replayed = driver::run_sweep(journaled);
  EXPECT_EQ(replayed.stats.executed, 0u);
  EXPECT_EQ(replayed.stats.cache_hits, total);
  EXPECT_EQ(driver::to_csv(replayed.results), ref_csv);
  EXPECT_EQ(driver::to_json(replayed.results), ref_json);
}

TEST(CrashRecovery, SigkilledSweepResumesFromTheJournal) {
  const driver::SweepConfig base = recovery_config();
  const std::size_t total = base.cells().size();
  const ScopedFile journal(::testing::TempDir() + "csr_crash_kill.tsv");

  const auto reference = driver::run_sweep(driver::SweepConfig(base).threads(2));
  const std::string ref_csv = driver::to_csv(reference.results);
  const std::string ref_json = driver::to_json(reference.results);

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: sweep one new cell at a time with a pause between slices, so
    // the parent's SIGKILL reliably lands mid-run. _exit, never exit — no
    // gtest teardown in the child.
    const driver::SweepConfig slice_config = driver::SweepConfig(base)
                                                  .threads(1)
                                                  .journal(journal.path())
                                                  .cell_budget(1);
    for (std::size_t slice = 0; slice < total; ++slice) {
      (void)driver::run_sweep(slice_config);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::_exit(0);
  }

  // Parent: give the child time to journal a few slices, then kill it cold.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The journal holds whatever the child finished — possibly with a torn
  // final record, which open() must drop silently.
  const driver::SweepConfig recover =
      driver::SweepConfig(base).threads(2).journal(journal.path());
  const auto resumed = driver::run_sweep(recover);
  EXPECT_GE(resumed.stats.cache_hits, 1u)
      << "child was killed before journaling anything — raise the delay";
  EXPECT_EQ(resumed.stats.cache_hits + resumed.stats.executed, total);
  EXPECT_LE(resumed.stats.journal_dropped, 1u);  // at most the torn tail
  EXPECT_EQ(driver::to_csv(resumed.results), ref_csv);
  EXPECT_EQ(driver::to_json(resumed.results), ref_json);

  // And once recovered, a further run re-executes nothing at all.
  const auto replayed = driver::run_sweep(recover);
  EXPECT_EQ(replayed.stats.executed, 0u);
  EXPECT_EQ(replayed.stats.cache_hits, total);
  EXPECT_EQ(driver::to_csv(replayed.results), ref_csv);
}

}  // namespace
}  // namespace csr
